"""Scalar reference implementation of a characterization run.

:func:`reference_scalar_run` is the pre-grid-engine body of
:meth:`CharacterizationExperiment.run`, built purely from the model's
scalar sampling API.  It exists so the equivalence tests and the
throughput benchmarks check the vectorized grid engine against an
*independent* implementation rather than against itself — the grid
engine must stay bit-identical to this function for the same seed and
repetition index.  Any change to the scalar run contract must update
this reference and the pinning suites (``tests/test_campaign_grid.py``,
``benchmarks/test_campaign_throughput.py``) together.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro import units
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.profiling.profile import WorkloadProfile

if TYPE_CHECKING:  # circular at runtime: experiment.py imports this module
    from repro.characterization.experiment import CharacterizationExperiment


def reference_scalar_run(
    experiment: "CharacterizationExperiment",
    workload: str,
    op: OperatingPoint,
    profile: Optional[WorkloadProfile] = None,
    repetition: int = 0,
    duration_s: float = units.CHARACTERIZATION_DURATION_S,
) -> Tuple[Dict[RankLocation, float], Optional[RankLocation]]:
    """One scalar characterization run; returns ``(rank_wer, ue_rank)``."""
    behavior = experiment._behavior(workload, profile)
    configured = experiment.server.configure(op)
    model = experiment.server.error_model
    rng = experiment._run_rng(workload, configured, repetition)
    rank_wer = {
        rank: model.sample_rank_wer(configured, behavior, rank, workload, rng=rng)
        for rank in experiment.server.geometry.iter_ranks()
    }
    maturity = 1.0 - float(np.exp(-duration_s / model.calibration.convergence_tau_s))
    rank_wer = {rank: wer * maturity for rank, wer in rank_wer.items()}
    ue_rank = model.sample_ue_event(configured, behavior, workload, rng=rng)
    return rank_wer, ue_rank
