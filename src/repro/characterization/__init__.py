"""Characterization framework: server model, experiments and campaigns."""

from repro.characterization.campaign import (
    CampaignConfig,
    CampaignResult,
    CharacterizationCampaign,
    run_default_campaign,
)
from repro.characterization.experiment import CharacterizationExperiment, ExperimentResult
from repro.characterization.metrics import (
    PueSummary,
    UeObservation,
    WerColumnStore,
    WerMeasurement,
    probability_of_uncorrectable,
    rank_ue_distribution,
    wer_from_error_log,
    word_error_rate,
)
from repro.characterization.server import SocDescription, XGene2Server
from repro.characterization.slimpro import Slimpro

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CharacterizationCampaign",
    "run_default_campaign",
    "CharacterizationExperiment",
    "ExperimentResult",
    "PueSummary",
    "UeObservation",
    "WerColumnStore",
    "WerMeasurement",
    "probability_of_uncorrectable",
    "rank_ue_distribution",
    "wer_from_error_log",
    "word_error_rate",
    "SocDescription",
    "XGene2Server",
    "Slimpro",
]
