"""DRAM error metrics: WER (Eq. 2) and PUE (Eq. 3).

Besides the scalar metric definitions and the flat per-run record types,
this module hosts :class:`WerColumnStore` — the columnar backing store a
:class:`~repro.characterization.campaign.CampaignResult` builds over its
``WerMeasurement`` list so the figure-level aggregations (per-workload,
per-rank, spreads) run as masked vector reductions instead of Python
list scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro import units
from repro.dram.ecc import ErrorClass
from repro.dram.geometry import RankLocation
from repro.dram.records import ErrorLog
from repro.errors import CharacterizationError, DataError


def word_error_rate(unique_ce_words: int, footprint_words: int) -> float:
    """WER = N_CE / MEMSIZE (Eq. 2): unique erroneous words per allocated word."""
    if footprint_words <= 0:
        raise DataError("footprint_words must be positive")
    if unique_ce_words < 0:
        raise DataError("unique_ce_words must be non-negative")
    if unique_ce_words > footprint_words:
        raise DataError("cannot have more erroneous words than allocated words")
    return unique_ce_words / footprint_words


def probability_of_uncorrectable(ue_runs: int, total_runs: int) -> float:
    """PUE = N_UE / N_EXP (Eq. 3): fraction of runs that triggered a UE."""
    if total_runs <= 0:
        raise DataError("total_runs must be positive")
    if not 0 <= ue_runs <= total_runs:
        raise DataError("ue_runs must lie in [0, total_runs]")
    return ue_runs / total_runs


def wer_from_error_log(
    log: ErrorLog, footprint_bytes: int, rank: Optional[RankLocation] = None
) -> float:
    """Compute WER from an ECC error log (whole memory or one rank).

    When ``rank`` is given, the footprint attributed to that rank is the
    interleaved share (footprint / number of ranks observed in the log's
    geometry is unknown here, so the caller passes the per-rank footprint
    directly via ``footprint_bytes``).
    """
    footprint_words = units.words_in(footprint_bytes)
    if rank is None:
        unique = len(log.unique_word_locations(ErrorClass.CORRECTED))
    else:
        unique = log.unique_words_by_rank(ErrorClass.CORRECTED).get(rank, 0)
    return word_error_rate(unique, footprint_words)


@dataclass
class WerMeasurement:
    """A per-rank WER measurement of one characterization run."""

    workload: str
    trefp_s: float
    vdd_v: float
    temperature_c: float
    rank: RankLocation
    wer: float

    def __post_init__(self) -> None:
        if self.wer < 0:
            raise DataError("WER cannot be negative")


@dataclass
class UeObservation:
    """Outcome of one run of the UE study: did the run crash, and where."""

    workload: str
    trefp_s: float
    temperature_c: float
    crashed: bool
    rank: Optional[RankLocation] = None

    def __post_init__(self) -> None:
        if self.crashed and self.rank is None:
            raise DataError("a crashed run must name the offending DIMM/rank")
        if not self.crashed and self.rank is not None:
            raise DataError("a clean run cannot name an offending DIMM/rank")


@dataclass
class PueSummary:
    """Aggregated UE statistics for one (workload, operating point)."""

    workload: str
    trefp_s: float
    temperature_c: float
    total_runs: int = 0
    crashed_runs: int = 0
    crashes_by_rank: Dict[RankLocation, int] = field(default_factory=dict)

    def add(self, observation: UeObservation) -> None:
        if (observation.workload, observation.trefp_s, observation.temperature_c) != (
            self.workload, self.trefp_s, self.temperature_c
        ):
            raise DataError("observation does not belong to this summary")
        self.total_runs += 1
        if observation.crashed:
            self.crashed_runs += 1
            self.crashes_by_rank[observation.rank] = (
                self.crashes_by_rank.get(observation.rank, 0) + 1
            )

    @property
    def pue(self) -> float:
        return probability_of_uncorrectable(self.crashed_runs, self.total_runs)


class WerColumnStore:
    """Columnar view of a sequence of :class:`WerMeasurement` records.

    Measurements are packed once into a structured numpy array (workload
    and rank dictionary-encoded as integer codes, operating point and WER
    as float64 columns); every aggregation is then a masked vector
    reduction.  Group means are taken with ``np.mean`` over the masked
    values in record order, so they match the old list-scan
    implementations bit for bit, and group keys are emitted in first-
    appearance order — the order the list scans produced.

    Besides wrapping an existing record list, a store can be built
    straight from the grid engine's sample arrays (:meth:`from_grid`) and
    merged block-wise (:meth:`concat`), so a campaign sweep never has to
    materialize per-record objects; :meth:`to_measurements` reconstructs
    the exact record list on demand.
    """

    DTYPE = np.dtype([
        ("workload", np.int32),
        ("trefp_s", np.float64),
        ("vdd_v", np.float64),
        ("temperature_c", np.float64),
        ("rank", np.int32),
        ("wer", np.float64),
    ])

    def __init__(self, measurements: Sequence[WerMeasurement]) -> None:
        self._workloads: List[str] = []
        self._ranks: List[RankLocation] = []
        workload_codes: Dict[str, int] = {}
        rank_codes: Dict[RankLocation, int] = {}
        rows = np.empty(len(measurements), dtype=self.DTYPE)
        for i, m in enumerate(measurements):
            wcode = workload_codes.get(m.workload)
            if wcode is None:
                wcode = workload_codes[m.workload] = len(self._workloads)
                self._workloads.append(m.workload)
            rcode = rank_codes.get(m.rank)
            if rcode is None:
                rcode = rank_codes[m.rank] = len(self._ranks)
                self._ranks.append(m.rank)
            rows[i] = (wcode, m.trefp_s, m.vdd_v, m.temperature_c, rcode, m.wer)
        self.rows = rows

    @classmethod
    def _from_parts(
        cls,
        workloads: Sequence[str],
        ranks: Sequence[RankLocation],
        rows: np.ndarray,
    ) -> "WerColumnStore":
        store = cls.__new__(cls)
        store._workloads = list(workloads)
        store._ranks = list(ranks)
        store.rows = rows
        return store

    @classmethod
    def from_grid(
        cls,
        workload: str,
        ops: Sequence,
        wer: np.ndarray,
        ranks: Sequence[RankLocation],
    ) -> "WerColumnStore":
        """Pack one workload's ``(points, repetitions, ranks)`` WER grid.

        Rows come out point-major, then repetition, then rank — the order
        the scalar sweep appended its per-run measurements — without
        constructing a single :class:`WerMeasurement`.  ``wer``'s rank
        axis must already follow ``ranks``.
        """
        if wer.ndim != 3 or wer.shape[2] != len(ranks) or wer.shape[0] != len(ops):
            raise DataError(
                f"wer grid of shape {wer.shape} does not match "
                f"{len(ops)} operating points x {len(ranks)} ranks"
            )
        points, repetitions, num_ranks = wer.shape
        per_point = repetitions * num_ranks
        rows = np.empty(points * per_point, dtype=cls.DTYPE)
        rows["workload"] = 0
        rows["trefp_s"] = np.repeat([op.trefp_s for op in ops], per_point)
        rows["vdd_v"] = np.repeat([op.vdd_v for op in ops], per_point)
        rows["temperature_c"] = np.repeat(
            [op.temperature_c for op in ops], per_point
        )
        rows["rank"] = np.tile(np.arange(num_ranks, dtype=np.int32),
                               points * repetitions)
        rows["wer"] = wer.reshape(-1)
        return cls._from_parts([workload], ranks, rows)

    @classmethod
    def concat(cls, stores: Sequence["WerColumnStore"]) -> "WerColumnStore":
        """Merge stores block-wise, remapping codes to first-appearance order."""
        stores = list(stores)
        if not stores:
            return cls([])
        workloads: List[str] = []
        ranks: List[RankLocation] = []
        workload_codes: Dict[str, int] = {}
        rank_codes: Dict[RankLocation, int] = {}
        pieces = []
        for store in stores:
            wmap = np.empty(max(len(store._workloads), 1), dtype=np.int32)
            for i, workload in enumerate(store._workloads):
                code = workload_codes.get(workload)
                if code is None:
                    code = workload_codes[workload] = len(workloads)
                    workloads.append(workload)
                wmap[i] = code
            rmap = np.empty(max(len(store._ranks), 1), dtype=np.int32)
            for i, rank in enumerate(store._ranks):
                code = rank_codes.get(rank)
                if code is None:
                    code = rank_codes[rank] = len(ranks)
                    ranks.append(rank)
                rmap[i] = code
            rows = store.rows.copy()
            if len(rows):
                rows["workload"] = wmap[store.rows["workload"]]
                rows["rank"] = rmap[store.rows["rank"]]
            pieces.append(rows)
        return cls._from_parts(workloads, ranks, np.concatenate(pieces))

    def to_measurements(self) -> List[WerMeasurement]:
        """Materialize the exact :class:`WerMeasurement` record list."""
        workloads = self._workloads
        ranks = self._ranks
        rows = self.rows
        return [
            WerMeasurement(
                workload=workloads[wcode], trefp_s=trefp, vdd_v=vdd,
                temperature_c=temperature, rank=ranks[rcode], wer=wer,
            )
            for wcode, trefp, vdd, temperature, rcode, wer in zip(
                rows["workload"].tolist(), rows["trefp_s"].tolist(),
                rows["vdd_v"].tolist(), rows["temperature_c"].tolist(),
                rows["rank"].tolist(), rows["wer"].tolist(),
            )
        ]

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def workloads(self) -> List[str]:
        """Workload names in first-appearance order (code -> name)."""
        return list(self._workloads)

    @property
    def ranks(self) -> List[RankLocation]:
        """Rank locations in first-appearance order (code -> location)."""
        return list(self._ranks)

    # ------------------------------------------------------------------
    def point_mask(
        self, trefp_s: float, temperature_c: float, tolerance: float = 1e-9
    ) -> np.ndarray:
        """Boolean row mask selecting one operating point of the sweep."""
        return (np.abs(self.rows["trefp_s"] - trefp_s) <= tolerance) & (
            np.abs(self.rows["temperature_c"] - temperature_c) <= tolerance
        )

    def _masked_point(self, trefp_s: float, temperature_c: float) -> np.ndarray:
        mask = self.point_mask(trefp_s, temperature_c)
        if not mask.any():
            raise CharacterizationError(
                f"no WER measurements at TREFP={trefp_s}s, T={temperature_c}C"
            )
        return self.rows[mask]

    @staticmethod
    def _first_appearance(codes: np.ndarray) -> np.ndarray:
        """Unique codes ordered by their first occurrence in ``codes``."""
        _, first = np.unique(codes, return_index=True)
        return codes[np.sort(first)]

    def mean_wer_by_workload(
        self, trefp_s: float, temperature_c: float
    ) -> Dict[str, float]:
        """Per-workload mean WER at one operating point."""
        selected = self._masked_point(trefp_s, temperature_c)
        codes = selected["workload"]
        wers = selected["wer"]
        return {
            self._workloads[code]: float(np.mean(wers[codes == code]))
            for code in self._first_appearance(codes)
        }

    def mean_wer_by_workload_rank(
        self, trefp_s: float, temperature_c: float
    ) -> Dict[str, Dict[RankLocation, float]]:
        """Per-workload, per-rank mean WER at one operating point."""
        selected = self._masked_point(trefp_s, temperature_c)
        codes = selected["workload"]
        table: Dict[str, Dict[RankLocation, float]] = {}
        for code in self._first_appearance(codes):
            of_workload = selected[codes == code]
            rank_codes = of_workload["rank"]
            table[self._workloads[code]] = {
                self._ranks[rank_code]: float(
                    np.mean(of_workload["wer"][rank_codes == rank_code])
                )
                for rank_code in self._first_appearance(rank_codes)
            }
        return table


def rank_ue_distribution(summaries: Iterable[PueSummary]) -> Dict[RankLocation, float]:
    """Probability that a UE lands on each DIMM/rank, given it occurred (Fig. 9b)."""
    totals: Dict[RankLocation, int] = {}
    crashes = 0
    for summary in summaries:
        for rank, count in summary.crashes_by_rank.items():
            totals[rank] = totals.get(rank, 0) + count
            crashes += count
    if crashes == 0:
        return {}
    return {rank: count / crashes for rank, count in totals.items()}
