"""DRAM error metrics: WER (Eq. 2) and PUE (Eq. 3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro import units
from repro.dram.ecc import ErrorClass
from repro.dram.geometry import RankLocation
from repro.dram.records import ErrorLog
from repro.errors import DataError


def word_error_rate(unique_ce_words: int, footprint_words: int) -> float:
    """WER = N_CE / MEMSIZE (Eq. 2): unique erroneous words per allocated word."""
    if footprint_words <= 0:
        raise DataError("footprint_words must be positive")
    if unique_ce_words < 0:
        raise DataError("unique_ce_words must be non-negative")
    if unique_ce_words > footprint_words:
        raise DataError("cannot have more erroneous words than allocated words")
    return unique_ce_words / footprint_words


def probability_of_uncorrectable(ue_runs: int, total_runs: int) -> float:
    """PUE = N_UE / N_EXP (Eq. 3): fraction of runs that triggered a UE."""
    if total_runs <= 0:
        raise DataError("total_runs must be positive")
    if not 0 <= ue_runs <= total_runs:
        raise DataError("ue_runs must lie in [0, total_runs]")
    return ue_runs / total_runs


def wer_from_error_log(
    log: ErrorLog, footprint_bytes: int, rank: Optional[RankLocation] = None
) -> float:
    """Compute WER from an ECC error log (whole memory or one rank).

    When ``rank`` is given, the footprint attributed to that rank is the
    interleaved share (footprint / number of ranks observed in the log's
    geometry is unknown here, so the caller passes the per-rank footprint
    directly via ``footprint_bytes``).
    """
    footprint_words = units.words_in(footprint_bytes)
    if rank is None:
        unique = len(log.unique_word_locations(ErrorClass.CORRECTED))
    else:
        unique = log.unique_words_by_rank(ErrorClass.CORRECTED).get(rank, 0)
    return word_error_rate(unique, footprint_words)


@dataclass
class WerMeasurement:
    """A per-rank WER measurement of one characterization run."""

    workload: str
    trefp_s: float
    vdd_v: float
    temperature_c: float
    rank: RankLocation
    wer: float

    def __post_init__(self) -> None:
        if self.wer < 0:
            raise DataError("WER cannot be negative")


@dataclass
class UeObservation:
    """Outcome of one run of the UE study: did the run crash, and where."""

    workload: str
    trefp_s: float
    temperature_c: float
    crashed: bool
    rank: Optional[RankLocation] = None

    def __post_init__(self) -> None:
        if self.crashed and self.rank is None:
            raise DataError("a crashed run must name the offending DIMM/rank")
        if not self.crashed and self.rank is not None:
            raise DataError("a clean run cannot name an offending DIMM/rank")


@dataclass
class PueSummary:
    """Aggregated UE statistics for one (workload, operating point)."""

    workload: str
    trefp_s: float
    temperature_c: float
    total_runs: int = 0
    crashed_runs: int = 0
    crashes_by_rank: Dict[RankLocation, int] = field(default_factory=dict)

    def add(self, observation: UeObservation) -> None:
        if (observation.workload, observation.trefp_s, observation.temperature_c) != (
            self.workload, self.trefp_s, self.temperature_c
        ):
            raise DataError("observation does not belong to this summary")
        self.total_runs += 1
        if observation.crashed:
            self.crashed_runs += 1
            self.crashes_by_rank[observation.rank] = (
                self.crashes_by_rank.get(observation.rank, 0) + 1
            )

    @property
    def pue(self) -> float:
        return probability_of_uncorrectable(self.crashed_runs, self.total_runs)


def rank_ue_distribution(summaries: Iterable[PueSummary]) -> Dict[RankLocation, float]:
    """Probability that a UE lands on each DIMM/rank, given it occurred (Fig. 9b)."""
    totals: Dict[RankLocation, int] = {}
    crashes = 0
    for summary in summaries:
        for rank, count in summary.crashes_by_rank.items():
            totals[rank] = totals.get(rank, 0) + count
            crashes += count
    if crashes == 0:
        return {}
    return {rank: count / crashes for rank, count in totals.items()}
