"""SLIMpro management-processor model.

On the X-Gene2, a separate lightweight management core (SLIMpro) is the
gateway for everything the characterization framework needs: it
configures the MCU parameters (``TREFP``, ``VDD``), exposes the on-board
temperature sensors and reports every ECC event (with DIMM/rank/bank/
row/column) to the kernel.  This class models that interface and
enforces the platform limits the paper reports.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import units
from repro.dram.ecc import ErrorClass
from repro.dram.geometry import CellLocation, DramGeometry, RankLocation
from repro.dram.operating import OperatingPoint
from repro.dram.records import ErrorLog, ErrorRecord
from repro.errors import ConfigurationError


class Slimpro:
    """Management core: parameter configuration, sensors and error reporting."""

    def __init__(self, geometry: Optional[DramGeometry] = None) -> None:
        self.geometry = geometry or DramGeometry()
        self._trefp_s = units.NOMINAL_TREFP_S
        self._vdd_v = units.NOMINAL_VDD_V
        self._dimm_temperatures: Dict[int, float] = {
            dimm: units.NOMINAL_TEMP_C for dimm in range(self.geometry.num_dimms)
        }
        self.error_log = ErrorLog()

    # -- MCU parameter configuration -----------------------------------------
    def set_refresh_period(self, trefp_s: float) -> None:
        """Configure TREFP; the X-Gene2 accepts 64 ms up to 2.283 s."""
        if not units.NOMINAL_TREFP_S <= trefp_s <= units.MAX_TREFP_S + 1e-9:
            raise ConfigurationError(
                f"TREFP={trefp_s} s outside the configurable range "
                f"[{units.NOMINAL_TREFP_S}, {units.MAX_TREFP_S}] s"
            )
        self._trefp_s = trefp_s

    def set_supply_voltage(self, vdd_v: float) -> None:
        """Configure VDD; below 1.428 V the DRAM circuitry stops working."""
        if not units.MIN_VDD_V - 1e-9 <= vdd_v <= units.NOMINAL_VDD_V + 1e-9:
            raise ConfigurationError(
                f"VDD={vdd_v} V outside the stable range "
                f"[{units.MIN_VDD_V}, {units.NOMINAL_VDD_V}] V"
            )
        self._vdd_v = vdd_v

    # -- sensors ----------------------------------------------------------
    def record_dimm_temperature(self, dimm: int, temperature_c: float) -> None:
        if dimm not in self._dimm_temperatures:
            raise ConfigurationError(f"unknown DIMM index {dimm}")
        self._dimm_temperatures[dimm] = temperature_c

    def read_dimm_temperature(self, dimm: int) -> float:
        if dimm not in self._dimm_temperatures:
            raise ConfigurationError(f"unknown DIMM index {dimm}")
        return self._dimm_temperatures[dimm]

    def mean_dram_temperature(self) -> float:
        return sum(self._dimm_temperatures.values()) / len(self._dimm_temperatures)

    # -- operating point -------------------------------------------------------
    @property
    def operating_point(self) -> OperatingPoint:
        """The currently configured circuit parameters plus mean temperature."""
        return OperatingPoint(
            trefp_s=self._trefp_s,
            vdd_v=self._vdd_v,
            temperature_c=self.mean_dram_temperature(),
        )

    def apply_operating_point(self, op: OperatingPoint) -> None:
        """Configure TREFP/VDD and record the target DIMM temperature."""
        self.set_refresh_period(op.trefp_s)
        self.set_supply_voltage(op.vdd_v)
        for dimm in range(self.geometry.num_dimms):
            self.record_dimm_temperature(dimm, op.temperature_c)

    # -- ECC event reporting ---------------------------------------------------
    def report_error(
        self,
        error_class: ErrorClass,
        location: CellLocation,
        timestamp_s: float,
        workload: str = "",
    ) -> ErrorRecord:
        """Log one ECC event exactly as the kernel EDAC driver would see it."""
        self.geometry.validate_cell(location)
        record = ErrorRecord(
            error_class=error_class,
            location=location,
            timestamp_s=timestamp_s,
            workload=workload,
        )
        self.error_log.append(record)
        return record

    def errors_for_rank(self, rank: RankLocation) -> int:
        """Number of logged events on one DIMM/rank."""
        return sum(1 for record in self.error_log if record.rank_location == rank)

    def clear_error_log(self) -> None:
        self.error_log.clear()
