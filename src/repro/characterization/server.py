"""The X-Gene2 server model: the experimental platform of the paper.

The server bundles the SoC description (8 ARMv8 cores, 4 MCUs), the four
DDR3 DIMMs with their per-rank reliability variation, the SLIMpro
management core and the thermal testbed.  The characterization
experiments drive everything through this class, mirroring how the
paper's framework drives the real machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import units
from repro.dram.calibration import DEFAULT_CALIBRATION, DramCalibration
from repro.dram.geometry import DramGeometry
from repro.dram.operating import OperatingPoint
from repro.dram.statistical import StatisticalErrorModel
from repro.dram.variation import VariationProfile
from repro.errors import ConfigurationError
from repro.characterization.slimpro import Slimpro
from repro.thermal.testbed import ThermalTestbed


@dataclass(frozen=True)
class SocDescription:
    """Static description of the X-Gene2 Server-on-a-Chip."""

    name: str = "X-Gene2"
    num_cores: int = units.NUM_CORES
    core_frequency_hz: float = units.CPU_FREQ_HZ
    num_mcus: int = units.NUM_MCUS
    dram_type: str = "DDR3-1866"

    def __post_init__(self) -> None:
        if self.num_cores <= 0 or self.num_mcus <= 0:
            raise ConfigurationError("core and MCU counts must be positive")


class XGene2Server:
    """Software model of the characterization platform."""

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        variation: Optional[VariationProfile] = None,
        calibration: Optional[DramCalibration] = None,
        soc: Optional[SocDescription] = None,
        seed: int = 2019,
    ) -> None:
        self.soc = soc or SocDescription()
        self.geometry = geometry or DramGeometry()
        self.variation = variation or VariationProfile.default(self.geometry)
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.slimpro = Slimpro(self.geometry)
        self.thermal = ThermalTestbed(num_dimms=self.geometry.num_dimms)
        self.error_model = StatisticalErrorModel(
            geometry=self.geometry,
            variation=self.variation,
            calibration=self.calibration,
            seed=seed,
        )
        self.seed = seed

    # ------------------------------------------------------------------
    @property
    def dimm_capacity_bytes(self) -> int:
        return units.DIMM_CAPACITY_BYTES

    @property
    def total_memory_bytes(self) -> int:
        return self.geometry.num_dimms * self.dimm_capacity_bytes

    def describe(self) -> Dict[str, object]:
        """Human-readable inventory of the platform (README / examples)."""
        return {
            "soc": self.soc.name,
            "cores": self.soc.num_cores,
            "frequency_ghz": self.soc.core_frequency_hz / 1e9,
            "mcus": self.soc.num_mcus,
            "dimms": self.geometry.num_dimms,
            "ranks_per_dimm": self.geometry.ranks_per_dimm,
            "dram_chips": self.geometry.num_dimms * units.RANKS_PER_DIMM *
            units.CHIPS_PER_RANK,
            "total_memory_gib": self.total_memory_bytes / units.GIB,
            "rank_wer_spread": round(self.variation.spread(), 1),
        }

    # ------------------------------------------------------------------
    def configure(self, op: OperatingPoint, settle_thermals: bool = False) -> OperatingPoint:
        """Apply an operating point: MCU parameters plus DIMM heater targets.

        With ``settle_thermals`` the PID loops are actually simulated until
        the DIMMs reach the target; otherwise the target temperature is
        recorded directly (the campaign always waits for thermal settling
        before starting a run, so both paths end in the same state).
        """
        self.slimpro.set_refresh_period(op.trefp_s)
        self.slimpro.set_supply_voltage(op.vdd_v)
        self.thermal.set_target(op.temperature_c)
        if settle_thermals:
            temperatures = self.thermal.settle()
            for dimm_index, (_name, temperature) in enumerate(sorted(temperatures.items())):
                self.slimpro.record_dimm_temperature(dimm_index, temperature)
        else:
            for dimm_index in range(self.geometry.num_dimms):
                self.slimpro.record_dimm_temperature(dimm_index, op.temperature_c)
        return self.slimpro.operating_point

    @property
    def operating_point(self) -> OperatingPoint:
        return self.slimpro.operating_point
