"""Characterization campaigns: the parameter sweeps of Section V.

A campaign runs every benchmark under a grid of refresh periods and
temperatures (always with the lowered VDD), collects per-rank WER
measurements and — for the 70 C points — repeats each run several times
to estimate PUE.  The result object offers the aggregations every figure
of the evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.characterization.experiment import CharacterizationExperiment, ExperimentResult
from repro.characterization.metrics import PueSummary, WerMeasurement, rank_ue_distribution
from repro.characterization.server import XGene2Server
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import CharacterizationError
from repro.profiling.profiler import profile_workload
from repro.workloads.registry import campaign_workload_names


@dataclass(frozen=True)
class CampaignConfig:
    """What to sweep and how often to repeat."""

    workloads: Tuple[str, ...] = ()
    trefp_values_s: Tuple[float, ...] = units.TREFP_SWEEP_S
    temperatures_c: Tuple[float, ...] = (50.0, 60.0)
    vdd_v: float = units.MIN_VDD_V
    repetitions: int = 1
    ue_trefp_values_s: Tuple[float, ...] = units.TREFP_UE_SWEEP_S
    ue_temperature_c: float = 70.0
    ue_repetitions: int = 10

    def resolved_workloads(self) -> Tuple[str, ...]:
        return self.workloads or tuple(campaign_workload_names())


@dataclass
class CampaignResult:
    """All measurements of one campaign, with the aggregations the figures use."""

    config: CampaignConfig
    wer_measurements: List[WerMeasurement] = field(default_factory=list)
    pue_summaries: List[PueSummary] = field(default_factory=list)

    # -- WER aggregations ------------------------------------------------------
    def wer_by_workload(self, trefp_s: float, temperature_c: float) -> Dict[str, float]:
        """Memory-wide WER per workload at one operating point (Fig. 7a-e bars)."""
        values: Dict[str, List[float]] = {}
        for measurement in self.wer_measurements:
            if _close(measurement.trefp_s, trefp_s) and _close(
                measurement.temperature_c, temperature_c
            ):
                values.setdefault(measurement.workload, []).append(measurement.wer)
        if not values:
            raise CharacterizationError(
                f"no WER measurements at TREFP={trefp_s}s, T={temperature_c}C"
            )
        return {workload: float(np.mean(v)) for workload, v in values.items()}

    def wer_by_rank(self, trefp_s: float, temperature_c: float) -> Dict[str, Dict[RankLocation, float]]:
        """Per-workload, per-rank WER (Fig. 8)."""
        table: Dict[str, Dict[RankLocation, List[float]]] = {}
        for measurement in self.wer_measurements:
            if _close(measurement.trefp_s, trefp_s) and _close(
                measurement.temperature_c, temperature_c
            ):
                table.setdefault(measurement.workload, {}).setdefault(
                    measurement.rank, []
                ).append(measurement.wer)
        return {
            workload: {rank: float(np.mean(v)) for rank, v in ranks.items()}
            for workload, ranks in table.items()
        }

    def mean_wer(self, trefp_s: float, temperature_c: float) -> float:
        """WER averaged over all benchmarks at one operating point (Fig. 7f)."""
        per_workload = self.wer_by_workload(trefp_s, temperature_c)
        return float(np.mean(list(per_workload.values())))

    def workload_spread(self, trefp_s: float, temperature_c: float) -> float:
        """Max/min WER ratio across workloads (the "8x" claim).

        Workloads that measured no errors at all (WER = 0, common at mild
        operating points) are excluded: the ratio against them is
        undefined, and the paper's spread compares measurable rates.
        """
        per_workload = self.wer_by_workload(trefp_s, temperature_c)
        positive = [v for v in per_workload.values() if v > 0]
        if len(positive) < 2:
            raise CharacterizationError(
                f"workload spread undefined at TREFP={trefp_s}s, "
                f"T={temperature_c}C: fewer than two workloads measured a "
                "positive WER"
            )
        return max(positive) / min(positive)

    def rank_spread(self, trefp_s: float, temperature_c: float) -> float:
        """Largest max/min WER ratio across DIMM/ranks for a single workload.

        This is the quantity behind the paper's "up to 188x" claim: the bc
        benchmark's WER differs by that factor between its strongest and
        weakest rank (Fig. 8).
        """
        per_rank = self.wer_by_rank(trefp_s, temperature_c)
        spreads = []
        for ranks in per_rank.values():
            positive = [v for v in ranks.values() if v > 0]
            if len(positive) >= 2:
                spreads.append(max(positive) / min(positive))
        if not spreads:
            raise CharacterizationError("no positive per-rank WER measurements")
        return max(spreads)

    # -- PUE aggregations ------------------------------------------------------
    def pue_by_workload(self, trefp_s: float) -> Dict[str, float]:
        """PUE per workload at one refresh period of the 70 C study (Fig. 9a)."""
        result = {}
        for summary in self.pue_summaries:
            if _close(summary.trefp_s, trefp_s):
                result[summary.workload] = summary.pue
        if not result:
            raise CharacterizationError(f"no UE observations at TREFP={trefp_s}s")
        return result

    def mean_pue(self, trefp_s: float) -> float:
        per_workload = self.pue_by_workload(trefp_s)
        return float(np.mean(list(per_workload.values())))

    def ue_rank_distribution(self) -> Dict[RankLocation, float]:
        """Fig. 9b: probability a UE lands on each DIMM/rank."""
        return rank_ue_distribution(self.pue_summaries)


def _close(a: float, b: float, tolerance: float = 1e-9) -> bool:
    return abs(a - b) <= tolerance


class CharacterizationCampaign:
    """Drives the full sweep of Section V on a server model."""

    def __init__(
        self,
        server: Optional[XGene2Server] = None,
        config: Optional[CampaignConfig] = None,
        seed: int = 7,
    ) -> None:
        self.server = server or XGene2Server()
        self.config = config or CampaignConfig()
        self.experiment = CharacterizationExperiment(self.server, seed=seed)

    # ------------------------------------------------------------------
    def run_wer_sweep(self, result: CampaignResult) -> None:
        """The CE study: workloads x TREFP x {50, 60} C (Fig. 7 / Fig. 8)."""
        for workload in self.config.resolved_workloads():
            profile = profile_workload(workload)
            for temperature in self.config.temperatures_c:
                for trefp in self.config.trefp_values_s:
                    op = OperatingPoint(
                        trefp_s=trefp, vdd_v=self.config.vdd_v, temperature_c=temperature
                    )
                    for repetition in range(self.config.repetitions):
                        run = self.experiment.run(
                            workload, op, profile=profile, repetition=repetition
                        )
                        result.wer_measurements.extend(run.wer_measurements())

    def run_ue_sweep(self, result: CampaignResult) -> None:
        """The UE study: workloads x TREFP x 70 C, repeated 10 times (Fig. 9)."""
        for workload in self.config.resolved_workloads():
            profile = profile_workload(workload)
            for trefp in self.config.ue_trefp_values_s:
                op = OperatingPoint(
                    trefp_s=trefp,
                    vdd_v=self.config.vdd_v,
                    temperature_c=self.config.ue_temperature_c,
                )
                summary = PueSummary(
                    workload=workload, trefp_s=trefp,
                    temperature_c=self.config.ue_temperature_c,
                )
                for repetition in range(self.config.ue_repetitions):
                    run = self.experiment.run(
                        workload, op, profile=profile, repetition=repetition
                    )
                    summary.add(run.ue_observation())
                    # WER data from the 70 C runs also feeds the dataset.
                    if repetition == 0:
                        result.wer_measurements.extend(run.wer_measurements())
                result.pue_summaries.append(summary)

    def run(self, include_ue_study: bool = True) -> CampaignResult:
        """Run the full campaign and return the collected measurements."""
        result = CampaignResult(config=self.config)
        self.run_wer_sweep(result)
        if include_ue_study:
            self.run_ue_sweep(result)
        if not result.wer_measurements:
            raise CharacterizationError("campaign produced no measurements")
        return result


def run_default_campaign(
    workloads: Optional[Sequence[str]] = None,
    include_ue_study: bool = True,
    seed: int = 7,
) -> CampaignResult:
    """Convenience helper: run the paper's campaign with default settings."""
    config = CampaignConfig(workloads=tuple(workloads) if workloads else ())
    campaign = CharacterizationCampaign(config=config, seed=seed)
    return campaign.run(include_ue_study=include_ue_study)
