"""Characterization campaigns: the parameter sweeps of Section V.

A campaign runs every benchmark under a grid of refresh periods and
temperatures (always with the lowered VDD), collects per-rank WER
measurements and — for the 70 C points — repeats each run several times
to estimate PUE.  The result object offers the aggregations every figure
of the evaluation needs.

Grid engine
-----------
Both sweeps hand each workload's whole operating-point grid to
:meth:`CharacterizationExperiment.run_grid_columns` in one call, so the
expected-WER surface, run-to-run noise, maturity scaling and UE sampling
are evaluated as array operations instead of per-run Python work, and
the sampled surfaces stream straight into columnar
:class:`~repro.characterization.metrics.WerColumnStore` blocks — no
``ExperimentResult`` / ``WerMeasurement`` objects are built during a
sweep.  The scalar-vs-batch contract: a grid cell is bit-identical to
the scalar ``experiment.run`` call with the same seed and repetition
index (the scalar path *is* a one-point grid), and
``tests/test_campaign_grid.py`` pins that equivalence plus
campaign-level determinism.  ``benchmarks/test_campaign_throughput.py``
pins the speedup floor of the batched sweep over the scalar loop.

Parallel execution
------------------
Each workload's sweep is independent, so ``run(parallel=n)`` fans the
per-workload grid calls across a ``concurrent.futures`` process pool:
workers receive picklable :class:`WorkloadSweepSpec` grid specs, return
columnar blocks, and the parent merges blocks in workload order — the
result is bit-identical to the sequential sweep for any worker count
(pinned by ``tests/test_campaign_parallel.py``).

:class:`CampaignResult` keeps the columnar store as its canonical record
after a sweep and materializes the flat ``WerMeasurement`` list lazily;
hand-built results (tests, tools) may still treat ``wer_measurements``
as an append-only list, and the columnar view tracks it with the same
length/identity heuristic as before.

Telemetry
---------
When the active :mod:`repro.telemetry` registry is enabled, campaigns
record a span tree (``campaign.run`` → ``campaign.wer_sweep`` /
``campaign.ue_sweep`` → ``workload:<name>`` → the experiment/model
spans) plus row counters.  Parallel workers capture their own registry
and ship a picklable snapshot home in the sweep outcome; the parent
merges snapshots in workload order, so the merged report has the same
per-workload span counts as a sequential run.  The default registry is
a no-op, and enabling telemetry never changes results
(``tests/test_telemetry_equivalence.py``).
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.characterization.experiment import CharacterizationExperiment, GridColumns
from repro.characterization.metrics import (
    PueSummary,
    UeObservation,
    WerColumnStore,
    WerMeasurement,
    rank_ue_distribution,
)
from repro.characterization.server import XGene2Server
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import CharacterizationError
from repro.profiling.profiler import profile_workload
from repro.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    get_telemetry,
    set_telemetry,
)
from repro.workloads.registry import campaign_workload_names

logger = logging.getLogger("repro.characterization.campaign")


@dataclass(frozen=True)
class CampaignConfig:
    """What to sweep and how often to repeat."""

    workloads: Tuple[str, ...] = ()
    trefp_values_s: Tuple[float, ...] = units.TREFP_SWEEP_S
    temperatures_c: Tuple[float, ...] = (50.0, 60.0)
    vdd_v: float = units.MIN_VDD_V
    repetitions: int = 1
    ue_trefp_values_s: Tuple[float, ...] = units.TREFP_UE_SWEEP_S
    ue_temperature_c: float = 70.0
    ue_repetitions: int = 10

    def resolved_workloads(self) -> Tuple[str, ...]:
        return self.workloads or tuple(campaign_workload_names())

    def wer_operating_points(self) -> List[OperatingPoint]:
        """The CE study's grid: temperature-major, TREFP-minor, lowered VDD.

        Single source of the sweep order — the campaign, the grid engine
        callers and the throughput benchmark must all iterate the same
        points in the same sequence.
        """
        return [
            OperatingPoint(
                trefp_s=trefp, vdd_v=self.vdd_v, temperature_c=temperature
            )
            for temperature in self.temperatures_c
            for trefp in self.trefp_values_s
        ]

    def ue_operating_points(self) -> List[OperatingPoint]:
        """The UE study's grid: the 70 C points, one per UE TREFP value."""
        return [
            OperatingPoint(
                trefp_s=trefp, vdd_v=self.vdd_v,
                temperature_c=self.ue_temperature_c,
            )
            for trefp in self.ue_trefp_values_s
        ]


class CampaignResult:
    """All measurements of one campaign, with the aggregations the figures use.

    The WER record has two interchangeable representations: the columnar
    :class:`WerColumnStore` (what a sweep produces, via
    :meth:`extend_wer_columns`) and the flat ``wer_measurements`` list.
    Whichever was touched last is canonical — a store-backed result
    materializes the record list only when ``wer_measurements`` is first
    read, and a hand-mutated list is re-packed into columns on the next
    aggregation.
    """

    def __init__(
        self,
        config: CampaignConfig,
        wer_measurements: Optional[List[WerMeasurement]] = None,
        pue_summaries: Optional[List[PueSummary]] = None,
    ) -> None:
        self.config = config
        self.pue_summaries: List[PueSummary] = (
            pue_summaries if pue_summaries is not None else []
        )
        self._wer_list: Optional[List[WerMeasurement]] = (
            wer_measurements if wer_measurements is not None else []
        )
        # True once a caller holds the list object (passed in, read via the
        # property, or assigned): block ingestion must then extend that
        # list in place rather than detach it for the columnar fast path.
        self._wer_list_shared = wer_measurements is not None
        self._wer_store: Optional[WerColumnStore] = None
        self._wer_store_source: Optional[List[WerMeasurement]] = None

    # -- the flat record list --------------------------------------------------
    @property
    def wer_measurements(self) -> List[WerMeasurement]:
        """The flat measurement record, materialized from columns on demand."""
        if self._wer_list is None:
            self._wer_list = (
                self._wer_store.to_measurements() if self._wer_store is not None else []
            )
            # The store already matches the list it just produced.
            self._wer_store_source = self._wer_list
        self._wer_list_shared = True
        return self._wer_list

    @wer_measurements.setter
    def wer_measurements(self, measurements: List[WerMeasurement]) -> None:
        self._wer_list = measurements
        self._wer_list_shared = True

    @property
    def num_wer_measurements(self) -> int:
        """Number of WER records, without materializing the record list."""
        if self._wer_list is not None:
            return len(self._wer_list)
        return len(self._wer_store) if self._wer_store is not None else 0

    # -- columnar backing store ------------------------------------------------
    def wer_columns(self) -> WerColumnStore:
        """Columnar view of the WER measurements backing the aggregations.

        When the record list is canonical (hand-built results), the view
        is built lazily and rebuilt whenever the (append-only) list has
        grown or been replaced wholesale since the last build, so callers
        may freely interleave appends and aggregation queries.  Any
        mutation that preserves both the list object and its length
        (replacing a record in place, pop followed by append, reordering)
        is invisible to this heuristic — call
        :meth:`invalidate_wer_columns` after such edits.
        """
        if self._wer_list is None:
            if self._wer_store is None:
                self._wer_store = WerColumnStore([])
            return self._wer_store
        if (
            self._wer_store is None
            or self._wer_store_source is not self._wer_list
            or len(self._wer_store) != len(self._wer_list)
        ):
            self._wer_store = WerColumnStore(self._wer_list)
            self._wer_store_source = self._wer_list
        return self._wer_store

    def extend_wer_columns(self, blocks: Sequence[WerColumnStore]) -> None:
        """Merge columnar measurement blocks into the WER record.

        The fast path concatenates the blocks onto the canonical store
        without materializing a single ``WerMeasurement``; when a record
        list a caller may hold already exists (hand-built or previously
        read results), the blocks are materialized and extended onto
        that same list instead, so held references keep seeing the data.
        """
        blocks = [block for block in blocks if len(block)]
        if not blocks:
            return
        if self._wer_list is not None and (self._wer_list or self._wer_list_shared):
            for block in blocks:
                self._wer_list.extend(block.to_measurements())
            return
        existing = (
            [self._wer_store]
            if self._wer_store is not None and len(self._wer_store)
            else []
        )
        self._wer_store = WerColumnStore.concat(existing + blocks)
        self._wer_list = None
        self._wer_list_shared = False
        self._wer_store_source = None

    def invalidate_wer_columns(self) -> None:
        """Force a rebuild of the columnar view on the next aggregation."""
        if self._wer_list is not None:
            self._wer_store = None
            self._wer_store_source = None

    # -- WER aggregations ------------------------------------------------------
    def wer_by_workload(self, trefp_s: float, temperature_c: float) -> Dict[str, float]:
        """Memory-wide WER per workload at one operating point (Fig. 7a-e bars).

        Raises :class:`CharacterizationError` when the operating point has
        no measurements.
        """
        return self.wer_columns().mean_wer_by_workload(trefp_s, temperature_c)

    def wer_by_rank(self, trefp_s: float, temperature_c: float) -> Dict[str, Dict[RankLocation, float]]:
        """Per-workload, per-rank WER (Fig. 8).

        Raises :class:`CharacterizationError` when the operating point has
        no measurements — the same contract as :meth:`wer_by_workload`
        (it used to return ``{}`` silently).
        """
        return self.wer_columns().mean_wer_by_workload_rank(trefp_s, temperature_c)

    def mean_wer(self, trefp_s: float, temperature_c: float) -> float:
        """WER averaged over all benchmarks at one operating point (Fig. 7f)."""
        per_workload = self.wer_by_workload(trefp_s, temperature_c)
        return float(np.mean(list(per_workload.values())))

    def workload_spread(self, trefp_s: float, temperature_c: float) -> float:
        """Max/min WER ratio across workloads (the "8x" claim).

        Workloads that measured no errors at all (WER = 0, common at mild
        operating points) are excluded: the ratio against them is
        undefined, and the paper's spread compares measurable rates.
        """
        per_workload = self.wer_by_workload(trefp_s, temperature_c)
        positive = [v for v in per_workload.values() if v > 0]
        if len(positive) < 2:
            raise CharacterizationError(
                f"workload spread undefined at TREFP={trefp_s}s, "
                f"T={temperature_c}C: fewer than two workloads measured a "
                "positive WER"
            )
        return max(positive) / min(positive)

    def rank_spread(self, trefp_s: float, temperature_c: float) -> float:
        """Largest max/min WER ratio across DIMM/ranks for a single workload.

        This is the quantity behind the paper's "up to 188x" claim: the bc
        benchmark's WER differs by that factor between its strongest and
        weakest rank (Fig. 8).
        """
        per_rank = self.wer_by_rank(trefp_s, temperature_c)
        spreads = []
        for ranks in per_rank.values():
            positive = [v for v in ranks.values() if v > 0]
            if len(positive) >= 2:
                spreads.append(max(positive) / min(positive))
        if not spreads:
            raise CharacterizationError("no positive per-rank WER measurements")
        return max(spreads)

    # -- PUE aggregations ------------------------------------------------------
    def pue_by_workload(self, trefp_s: float) -> Dict[str, float]:
        """PUE per workload at one refresh period of the 70 C study (Fig. 9a)."""
        result = {}
        for summary in self.pue_summaries:
            if _close(summary.trefp_s, trefp_s):
                result[summary.workload] = summary.pue
        if not result:
            raise CharacterizationError(f"no UE observations at TREFP={trefp_s}s")
        return result

    def mean_pue(self, trefp_s: float) -> float:
        per_workload = self.pue_by_workload(trefp_s)
        return float(np.mean(list(per_workload.values())))

    def ue_rank_distribution(self) -> Dict[RankLocation, float]:
        """Fig. 9b: probability a UE lands on each DIMM/rank."""
        return rank_ue_distribution(self.pue_summaries)


def _close(a: float, b: float, tolerance: float = 1e-9) -> bool:
    return abs(a - b) <= tolerance


def _grid_pue_summaries(grid: GridColumns) -> List[PueSummary]:
    """Reduce a UE-study grid to one :class:`PueSummary` per operating point."""
    summaries = []
    for op, events in zip(grid.ops, grid.ue_ranks):
        summary = PueSummary(
            workload=grid.workload, trefp_s=op.trefp_s,
            temperature_c=op.temperature_c,
        )
        for ue_rank in events:
            summary.add(UeObservation(
                workload=grid.workload, trefp_s=op.trefp_s,
                temperature_c=op.temperature_c,
                crashed=ue_rank is not None, rank=ue_rank,
            ))
        summaries.append(summary)
    return summaries


@dataclass(frozen=True, eq=False)
class WorkloadSweepSpec:
    """Picklable description of one workload's share of a campaign.

    This is the unit the process pool distributes: everything a worker
    needs to reproduce the sequential sweep for one workload — the
    server model (cheap to pickle), the experiment seed and the two
    operating-point grids.
    """

    workload: str
    seed: int
    server: XGene2Server
    wer_ops: Tuple[OperatingPoint, ...]
    wer_repetitions: int
    ue_ops: Tuple[OperatingPoint, ...]
    ue_repetitions: int
    #: capture telemetry in the worker and ship a snapshot back
    telemetry: bool = False


@dataclass
class WorkloadSweepOutcome:
    """Columnar blocks one worker sends back: CE rows, UE rows, summaries.

    ``telemetry`` carries the worker's picklable snapshot when the spec
    requested capture; the parent merges outcomes in workload order, so
    the merged span tree matches the sequential sweep's shape.
    """

    workload: str
    wer_block: Optional[WerColumnStore]
    ue_block: Optional[WerColumnStore]
    pue_summaries: List[PueSummary]
    telemetry: Optional[TelemetrySnapshot] = None


def _run_workload_sweep(spec: WorkloadSweepSpec) -> WorkloadSweepOutcome:
    """Process-pool worker: one workload's full sweep, returned columnar.

    Module-level so it pickles; builds a fresh experiment around the
    spec's server copy.  Workload sweeps consume independent keyed RNG
    streams, so a fresh experiment reproduces the sequential results
    bit for bit.  Spans are recorded under the same
    ``campaign.wer_sweep / campaign.ue_sweep -> workload:<name>`` names
    the sequential path uses, so merged parallel reports line up with
    sequential ones.
    """
    worker_telemetry = Telemetry(enabled=spec.telemetry)
    previous = set_telemetry(worker_telemetry)
    try:
        experiment = CharacterizationExperiment(server=spec.server, seed=spec.seed)
        profile = profile_workload(spec.workload)
        wer_block: Optional[WerColumnStore] = None
        ue_block: Optional[WerColumnStore] = None
        summaries: List[PueSummary] = []
        if spec.wer_ops:
            with worker_telemetry.span("campaign.wer_sweep"):
                with worker_telemetry.span(f"workload:{spec.workload}"):
                    wer_block = experiment.run_grid_columns(
                        spec.workload, spec.wer_ops,
                        repetitions=spec.wer_repetitions, profile=profile,
                    ).wer_block()
        if spec.ue_ops:
            with worker_telemetry.span("campaign.ue_sweep"):
                with worker_telemetry.span(f"workload:{spec.workload}"):
                    grid = experiment.run_grid_columns(
                        spec.workload, spec.ue_ops,
                        repetitions=spec.ue_repetitions, profile=profile,
                    )
                    # WER data from the first 70 C repetition also feeds the
                    # dataset.
                    ue_block = grid.wer_block(first_repetition_only=True)
                    summaries = _grid_pue_summaries(grid)
    finally:
        set_telemetry(previous)
    return WorkloadSweepOutcome(
        workload=spec.workload, wer_block=wer_block,
        ue_block=ue_block, pue_summaries=summaries,
        telemetry=worker_telemetry.snapshot() if spec.telemetry else None,
    )


class CharacterizationCampaign:
    """Drives the full sweep of Section V on a server model."""

    def __init__(
        self,
        server: Optional[XGene2Server] = None,
        config: Optional[CampaignConfig] = None,
        seed: int = 7,
    ) -> None:
        self.server = server or XGene2Server()
        self.config = config or CampaignConfig()
        self.experiment = CharacterizationExperiment(self.server, seed=seed)

    # ------------------------------------------------------------------
    def run_wer_sweep(self, result: CampaignResult) -> None:
        """The CE study: workloads x TREFP x {50, 60} C (Fig. 7 / Fig. 8).

        Each workload's whole (temperature x TREFP) grid goes through the
        batched ``run_grid_columns`` engine in one call and lands as one
        columnar block; rows sit in the same order the scalar nested loop
        produced them.
        """
        ops = self.config.wer_operating_points()
        if not ops:
            return
        telemetry = get_telemetry()
        workloads = self.config.resolved_workloads()
        logger.info(
            "WER sweep starting: %d workloads x %d operating points x %d reps",
            len(workloads), len(ops), self.config.repetitions,
        )
        start = time.perf_counter()
        blocks = []
        with telemetry.span("campaign.wer_sweep"):
            for workload in workloads:
                logger.debug("WER sweep: workload %s", workload)
                with telemetry.span(f"workload:{workload}"):
                    profile = profile_workload(workload)
                    grid = self.experiment.run_grid_columns(
                        workload, ops, repetitions=self.config.repetitions,
                        profile=profile,
                    )
                    blocks.append(grid.wer_block())
        result.extend_wer_columns(blocks)
        if telemetry.enabled:
            telemetry.incr("campaign.wer_rows", sum(len(b) for b in blocks))
        logger.info(
            "WER sweep finished: %d workloads in %.3fs",
            len(workloads), time.perf_counter() - start,
        )

    def run_ue_sweep(self, result: CampaignResult) -> None:
        """The UE study: workloads x TREFP x 70 C, repeated 10 times (Fig. 9)."""
        ops = self.config.ue_operating_points()
        if not ops:
            return
        telemetry = get_telemetry()
        workloads = self.config.resolved_workloads()
        logger.info(
            "UE sweep starting: %d workloads x %d operating points x %d reps",
            len(workloads), len(ops), self.config.ue_repetitions,
        )
        start = time.perf_counter()
        blocks = []
        with telemetry.span("campaign.ue_sweep"):
            for workload in workloads:
                logger.debug("UE sweep: workload %s", workload)
                with telemetry.span(f"workload:{workload}"):
                    profile = profile_workload(workload)
                    grid = self.experiment.run_grid_columns(
                        workload, ops, repetitions=self.config.ue_repetitions,
                        profile=profile,
                    )
                    # WER data from the first 70 C repetition also feeds the
                    # dataset.
                    blocks.append(grid.wer_block(first_repetition_only=True))
                    result.pue_summaries.extend(_grid_pue_summaries(grid))
        result.extend_wer_columns(blocks)
        if telemetry.enabled:
            telemetry.incr("campaign.ue_rows", sum(len(b) for b in blocks))
        logger.info(
            "UE sweep finished: %d workloads in %.3fs",
            len(workloads), time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _workload_specs(self, include_ue_study: bool) -> List[WorkloadSweepSpec]:
        wer_ops = tuple(self.config.wer_operating_points())
        ue_ops = tuple(self.config.ue_operating_points()) if include_ue_study else ()
        capture = get_telemetry().enabled
        return [
            WorkloadSweepSpec(
                workload=workload, seed=self.experiment.seed, server=self.server,
                wer_ops=wer_ops, wer_repetitions=self.config.repetitions,
                ue_ops=ue_ops, ue_repetitions=self.config.ue_repetitions,
                telemetry=capture,
            )
            for workload in self.config.resolved_workloads()
        ]

    def _run_parallel(
        self, result: CampaignResult, include_ue_study: bool, max_workers: int
    ) -> None:
        """Fan per-workload sweeps across a process pool, merge in order.

        Outcomes are merged in workload submission order — first every
        workload's CE block, then every workload's UE block and
        summaries — so the record is bit-identical to the sequential
        sweep regardless of worker count or completion order.
        """
        if isinstance(max_workers, bool) or not isinstance(max_workers, int):
            raise CharacterizationError("parallel must be an integer worker count")
        if max_workers < 1:
            raise CharacterizationError("parallel must be at least 1 worker")
        specs = self._workload_specs(include_ue_study)
        if not specs:
            return
        telemetry = get_telemetry()
        workers = min(max_workers, len(specs))
        if telemetry.enabled:
            telemetry.gauge("campaign.parallel_workers", workers)
        logger.info(
            "parallel sweep starting: %d workloads over %d workers",
            len(specs), workers,
        )
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_workload_sweep, specs))
        # Worker snapshots merge in workload (submission) order, mirroring
        # the deterministic block merge below — the combined span tree is
        # independent of worker count and completion order.
        for outcome in outcomes:
            telemetry.merge_snapshot(outcome.telemetry)
        wer_blocks = [o.wer_block for o in outcomes if o.wer_block is not None]
        result.extend_wer_columns(wer_blocks)
        if telemetry.enabled:
            telemetry.incr("campaign.wer_rows", sum(len(b) for b in wer_blocks))
        if include_ue_study:
            ue_blocks = [o.ue_block for o in outcomes if o.ue_block is not None]
            result.extend_wer_columns(ue_blocks)
            if telemetry.enabled:
                telemetry.incr("campaign.ue_rows", sum(len(b) for b in ue_blocks))
            for outcome in outcomes:
                result.pue_summaries.extend(outcome.pue_summaries)
        logger.info(
            "parallel sweep finished: %d workloads in %.3fs",
            len(specs), time.perf_counter() - start,
        )

    def run(
        self, include_ue_study: bool = True, parallel: Optional[int] = None
    ) -> CampaignResult:
        """Run the full campaign and return the collected measurements.

        ``parallel=None`` sweeps in-process; ``parallel=n`` distributes
        the per-workload sweeps over an ``n``-worker process pool.  Both
        paths produce bit-identical results.
        """
        result = CampaignResult(config=self.config)
        with get_telemetry().span("campaign.run"):
            if parallel is None:
                self.run_wer_sweep(result)
                if include_ue_study:
                    self.run_ue_sweep(result)
            else:
                self._run_parallel(result, include_ue_study, parallel)
        if result.num_wer_measurements == 0:
            raise CharacterizationError("campaign produced no measurements")
        return result


def run_default_campaign(
    workloads: Optional[Sequence[str]] = None,
    include_ue_study: bool = True,
    seed: int = 7,
    parallel: Optional[int] = None,
) -> CampaignResult:
    """Convenience helper: run the paper's campaign with default settings."""
    config = CampaignConfig(workloads=tuple(workloads) if workloads else ())
    campaign = CharacterizationCampaign(config=config, seed=seed)
    return campaign.run(include_ue_study=include_ue_study, parallel=parallel)
