"""Characterization campaigns: the parameter sweeps of Section V.

A campaign runs every benchmark under a grid of refresh periods and
temperatures (always with the lowered VDD), collects per-rank WER
measurements and — for the 70 C points — repeats each run several times
to estimate PUE.  The result object offers the aggregations every figure
of the evaluation needs.

Grid engine
-----------
Both sweeps hand each workload's whole operating-point grid to
:meth:`CharacterizationExperiment.run_grid` in one call, so the
expected-WER surface, run-to-run noise, maturity scaling and UE sampling
are evaluated as array operations instead of per-run Python work.  The
scalar-vs-batch contract: a grid cell is bit-identical to the scalar
``experiment.run`` call with the same seed and repetition index (the
scalar path *is* a one-point grid), and ``tests/test_campaign_grid.py``
pins that equivalence plus campaign-level determinism.
``benchmarks/test_campaign_throughput.py`` pins the speedup floor of the
batched sweep over the scalar loop.

:class:`CampaignResult` keeps the flat ``WerMeasurement`` list as its
canonical, append-only record of the sweep, but serves the figure-level
aggregations from a lazily (re)built columnar view
(:class:`~repro.characterization.metrics.WerColumnStore`): masked vector
reductions over structured numpy arrays that reproduce the old list-scan
results exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.characterization.experiment import CharacterizationExperiment, ExperimentResult
from repro.characterization.metrics import (
    PueSummary,
    WerColumnStore,
    WerMeasurement,
    rank_ue_distribution,
)
from repro.characterization.server import XGene2Server
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import CharacterizationError
from repro.profiling.profiler import profile_workload
from repro.workloads.registry import campaign_workload_names


@dataclass(frozen=True)
class CampaignConfig:
    """What to sweep and how often to repeat."""

    workloads: Tuple[str, ...] = ()
    trefp_values_s: Tuple[float, ...] = units.TREFP_SWEEP_S
    temperatures_c: Tuple[float, ...] = (50.0, 60.0)
    vdd_v: float = units.MIN_VDD_V
    repetitions: int = 1
    ue_trefp_values_s: Tuple[float, ...] = units.TREFP_UE_SWEEP_S
    ue_temperature_c: float = 70.0
    ue_repetitions: int = 10

    def resolved_workloads(self) -> Tuple[str, ...]:
        return self.workloads or tuple(campaign_workload_names())

    def wer_operating_points(self) -> List[OperatingPoint]:
        """The CE study's grid: temperature-major, TREFP-minor, lowered VDD.

        Single source of the sweep order — the campaign, the grid engine
        callers and the throughput benchmark must all iterate the same
        points in the same sequence.
        """
        return [
            OperatingPoint(
                trefp_s=trefp, vdd_v=self.vdd_v, temperature_c=temperature
            )
            for temperature in self.temperatures_c
            for trefp in self.trefp_values_s
        ]

    def ue_operating_points(self) -> List[OperatingPoint]:
        """The UE study's grid: the 70 C points, one per UE TREFP value."""
        return [
            OperatingPoint(
                trefp_s=trefp, vdd_v=self.vdd_v,
                temperature_c=self.ue_temperature_c,
            )
            for trefp in self.ue_trefp_values_s
        ]


@dataclass
class CampaignResult:
    """All measurements of one campaign, with the aggregations the figures use."""

    config: CampaignConfig
    wer_measurements: List[WerMeasurement] = field(default_factory=list)
    pue_summaries: List[PueSummary] = field(default_factory=list)
    _wer_store: Optional[WerColumnStore] = field(
        default=None, init=False, repr=False, compare=False
    )
    _wer_store_source: Optional[List[WerMeasurement]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- columnar backing store ------------------------------------------------
    def wer_columns(self) -> WerColumnStore:
        """Columnar view of ``wer_measurements`` backing the aggregations.

        The view is built lazily and rebuilt whenever the (append-only)
        measurement list has grown or been replaced wholesale since the
        last build, so callers may freely interleave appends and
        aggregation queries.  Any mutation that preserves both the list
        object and its length (replacing a record in place, pop followed
        by append, reordering) is invisible to this heuristic — call
        :meth:`invalidate_wer_columns` after such edits.
        """
        if (
            self._wer_store is None
            or self._wer_store_source is not self.wer_measurements
            or len(self._wer_store) != len(self.wer_measurements)
        ):
            self._wer_store = WerColumnStore(self.wer_measurements)
            self._wer_store_source = self.wer_measurements
        return self._wer_store

    def invalidate_wer_columns(self) -> None:
        """Force a rebuild of the columnar view on the next aggregation."""
        self._wer_store = None
        self._wer_store_source = None

    # -- WER aggregations ------------------------------------------------------
    def wer_by_workload(self, trefp_s: float, temperature_c: float) -> Dict[str, float]:
        """Memory-wide WER per workload at one operating point (Fig. 7a-e bars).

        Raises :class:`CharacterizationError` when the operating point has
        no measurements.
        """
        return self.wer_columns().mean_wer_by_workload(trefp_s, temperature_c)

    def wer_by_rank(self, trefp_s: float, temperature_c: float) -> Dict[str, Dict[RankLocation, float]]:
        """Per-workload, per-rank WER (Fig. 8).

        Raises :class:`CharacterizationError` when the operating point has
        no measurements — the same contract as :meth:`wer_by_workload`
        (it used to return ``{}`` silently).
        """
        return self.wer_columns().mean_wer_by_workload_rank(trefp_s, temperature_c)

    def mean_wer(self, trefp_s: float, temperature_c: float) -> float:
        """WER averaged over all benchmarks at one operating point (Fig. 7f)."""
        per_workload = self.wer_by_workload(trefp_s, temperature_c)
        return float(np.mean(list(per_workload.values())))

    def workload_spread(self, trefp_s: float, temperature_c: float) -> float:
        """Max/min WER ratio across workloads (the "8x" claim).

        Workloads that measured no errors at all (WER = 0, common at mild
        operating points) are excluded: the ratio against them is
        undefined, and the paper's spread compares measurable rates.
        """
        per_workload = self.wer_by_workload(trefp_s, temperature_c)
        positive = [v for v in per_workload.values() if v > 0]
        if len(positive) < 2:
            raise CharacterizationError(
                f"workload spread undefined at TREFP={trefp_s}s, "
                f"T={temperature_c}C: fewer than two workloads measured a "
                "positive WER"
            )
        return max(positive) / min(positive)

    def rank_spread(self, trefp_s: float, temperature_c: float) -> float:
        """Largest max/min WER ratio across DIMM/ranks for a single workload.

        This is the quantity behind the paper's "up to 188x" claim: the bc
        benchmark's WER differs by that factor between its strongest and
        weakest rank (Fig. 8).
        """
        per_rank = self.wer_by_rank(trefp_s, temperature_c)
        spreads = []
        for ranks in per_rank.values():
            positive = [v for v in ranks.values() if v > 0]
            if len(positive) >= 2:
                spreads.append(max(positive) / min(positive))
        if not spreads:
            raise CharacterizationError("no positive per-rank WER measurements")
        return max(spreads)

    # -- PUE aggregations ------------------------------------------------------
    def pue_by_workload(self, trefp_s: float) -> Dict[str, float]:
        """PUE per workload at one refresh period of the 70 C study (Fig. 9a)."""
        result = {}
        for summary in self.pue_summaries:
            if _close(summary.trefp_s, trefp_s):
                result[summary.workload] = summary.pue
        if not result:
            raise CharacterizationError(f"no UE observations at TREFP={trefp_s}s")
        return result

    def mean_pue(self, trefp_s: float) -> float:
        per_workload = self.pue_by_workload(trefp_s)
        return float(np.mean(list(per_workload.values())))

    def ue_rank_distribution(self) -> Dict[RankLocation, float]:
        """Fig. 9b: probability a UE lands on each DIMM/rank."""
        return rank_ue_distribution(self.pue_summaries)


def _close(a: float, b: float, tolerance: float = 1e-9) -> bool:
    return abs(a - b) <= tolerance


class CharacterizationCampaign:
    """Drives the full sweep of Section V on a server model."""

    def __init__(
        self,
        server: Optional[XGene2Server] = None,
        config: Optional[CampaignConfig] = None,
        seed: int = 7,
    ) -> None:
        self.server = server or XGene2Server()
        self.config = config or CampaignConfig()
        self.experiment = CharacterizationExperiment(self.server, seed=seed)

    # ------------------------------------------------------------------
    def run_wer_sweep(self, result: CampaignResult) -> None:
        """The CE study: workloads x TREFP x {50, 60} C (Fig. 7 / Fig. 8).

        Each workload's whole (temperature x TREFP) grid goes through the
        batched ``run_grid`` engine in one call; measurements land in the
        same order the scalar nested loop produced them.
        """
        ops = self.config.wer_operating_points()
        if not ops:
            return
        for workload in self.config.resolved_workloads():
            profile = profile_workload(workload)
            grid = self.experiment.run_grid(
                workload, ops, repetitions=self.config.repetitions, profile=profile
            )
            for point_runs in grid:
                for run in point_runs:
                    result.wer_measurements.extend(run.wer_measurements())

    def run_ue_sweep(self, result: CampaignResult) -> None:
        """The UE study: workloads x TREFP x 70 C, repeated 10 times (Fig. 9)."""
        ops = self.config.ue_operating_points()
        if not ops:
            return
        for workload in self.config.resolved_workloads():
            profile = profile_workload(workload)
            grid = self.experiment.run_grid(
                workload, ops, repetitions=self.config.ue_repetitions, profile=profile
            )
            for trefp, point_runs in zip(self.config.ue_trefp_values_s, grid):
                summary = PueSummary(
                    workload=workload, trefp_s=trefp,
                    temperature_c=self.config.ue_temperature_c,
                )
                for repetition, run in enumerate(point_runs):
                    summary.add(run.ue_observation())
                    # WER data from the 70 C runs also feeds the dataset.
                    if repetition == 0:
                        result.wer_measurements.extend(run.wer_measurements())
                result.pue_summaries.append(summary)

    def run(self, include_ue_study: bool = True) -> CampaignResult:
        """Run the full campaign and return the collected measurements."""
        result = CampaignResult(config=self.config)
        self.run_wer_sweep(result)
        if include_ue_study:
            self.run_ue_sweep(result)
        if not result.wer_measurements:
            raise CharacterizationError("campaign produced no measurements")
        return result


def run_default_campaign(
    workloads: Optional[Sequence[str]] = None,
    include_ue_study: bool = True,
    seed: int = 7,
) -> CampaignResult:
    """Convenience helper: run the paper's campaign with default settings."""
    config = CampaignConfig(workloads=tuple(workloads) if workloads else ())
    campaign = CharacterizationCampaign(config=config, seed=seed)
    return campaign.run(include_ue_study=include_ue_study)
