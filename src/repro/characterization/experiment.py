"""A single characterization experiment: one workload, one operating point.

This corresponds to one 2-hour run of the paper's campaign: the DIMMs
are held at the target temperature, TREFP/VDD are configured through
SLIMpro, the workload runs for two hours, and the ECC error log is
reduced to the per-rank WER plus (at 70 C) a possible UE crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import units
from repro.characterization.metrics import UeObservation, WerMeasurement
from repro.dram.calibration import DramCalibration, RetentionCalibration
from repro.dram.cells import CellArrayConfig, CellArraySimulator
from repro.dram.ecc import ErrorClass, bits_to_words
from repro.dram.geometry import RankLocation, small_geometry
from repro.dram.operating import OperatingPoint
from repro.dram.statistical import WorkloadBehavior
from repro.errors import CharacterizationError
from repro.characterization.server import XGene2Server
from repro.profiling.profile import WorkloadProfile
from repro.profiling.profiler import profile_workload


@dataclass
class ExperimentResult:
    """Everything one 2-hour characterization run produces."""

    workload: str
    operating_point: OperatingPoint
    duration_s: float
    rank_wer: Dict[RankLocation, float] = field(default_factory=dict)
    wer_time_series: Dict[float, float] = field(default_factory=dict)
    ue_rank: Optional[RankLocation] = None

    @property
    def memory_wer(self) -> float:
        """Memory-wide WER (Eq. 2) — the average across DIMM/ranks."""
        if not self.rank_wer:
            raise CharacterizationError("experiment produced no per-rank WER data")
        return float(np.mean(list(self.rank_wer.values())))

    @property
    def crashed(self) -> bool:
        """True when the run hit an uncorrectable error (which crashes the node)."""
        return self.ue_rank is not None

    def wer_measurements(self) -> List[WerMeasurement]:
        """Per-rank measurements in the flat record format the dataset uses."""
        op = self.operating_point
        return [
            WerMeasurement(
                workload=self.workload,
                trefp_s=op.trefp_s,
                vdd_v=op.vdd_v,
                temperature_c=op.temperature_c,
                rank=rank,
                wer=wer,
            )
            for rank, wer in sorted(self.rank_wer.items(), key=lambda kv: kv[0].label)
        ]

    def ue_observation(self) -> UeObservation:
        op = self.operating_point
        return UeObservation(
            workload=self.workload,
            trefp_s=op.trefp_s,
            temperature_c=op.temperature_c,
            crashed=self.crashed,
            rank=self.ue_rank,
        )


@dataclass(frozen=True)
class MechanismCheckResult:
    """Mechanism-level cross-check of one operating point.

    Produced by :meth:`CharacterizationExperiment.mechanism_check`: real
    SECDED decoding of real bit flips on a small cell array, reduced to
    the same WER metric the statistical model predicts.
    """

    operating_point: OperatingPoint
    words: int
    counts: Dict[ErrorClass, int]
    measured_wer: float


class CharacterizationExperiment:
    """Runs single characterization experiments on a server model."""

    def __init__(self, server: Optional[XGene2Server] = None, seed: int = 7) -> None:
        self.server = server or XGene2Server()
        self.seed = seed

    # ------------------------------------------------------------------
    def _behavior(self, workload: str, profile: Optional[WorkloadProfile]) -> WorkloadBehavior:
        active_profile = profile or profile_workload(workload)
        if active_profile.workload != workload:
            raise CharacterizationError(
                f"profile is for {active_profile.workload!r}, expected {workload!r}"
            )
        return active_profile.behavior()

    def _run_rng(self, workload: str, op: OperatingPoint, repetition: int) -> np.random.Generator:
        import zlib

        key = zlib.crc32(
            f"{workload}|{op.trefp_s:.6f}|{op.temperature_c:.3f}|{repetition}|{self.seed}"
            .encode("utf-8")
        )
        return np.random.default_rng(key)

    # ------------------------------------------------------------------
    def run(
        self,
        workload: str,
        op: OperatingPoint,
        duration_s: float = units.CHARACTERIZATION_DURATION_S,
        profile: Optional[WorkloadProfile] = None,
        repetition: int = 0,
        collect_time_series: bool = False,
    ) -> ExperimentResult:
        """Execute one 2-hour characterization run and collect its metrics."""
        if duration_s <= 0:
            raise CharacterizationError("duration_s must be positive")
        behavior = self._behavior(workload, profile)
        configured = self.server.configure(op)
        model = self.server.error_model
        rng = self._run_rng(workload, configured, repetition)

        rank_wer = {
            rank: model.sample_rank_wer(configured, behavior, rank, workload, rng=rng)
            for rank in self.server.geometry.iter_ranks()
        }
        # WER keeps accumulating until the run ends; a shorter run only sees
        # the fraction of error-prone locations discovered so far.
        maturity = 1.0 - float(np.exp(-duration_s / model.calibration.convergence_tau_s))
        rank_wer = {rank: wer * maturity for rank, wer in rank_wer.items()}

        ue_rank = model.sample_ue_event(configured, behavior, workload, rng=rng)

        time_series: Dict[float, float] = {}
        if collect_time_series:
            time_series = model.wer_time_series(
                configured, behavior, duration_s=duration_s, workload=workload
            )

        return ExperimentResult(
            workload=workload,
            operating_point=configured,
            duration_s=duration_s,
            rank_wer=rank_wer,
            wer_time_series=time_series,
            ue_rank=ue_rank,
        )

    # ------------------------------------------------------------------
    def mechanism_check(
        self,
        op: OperatingPoint,
        behavior: Optional[WorkloadBehavior] = None,
        num_words: int = 4096,
        idle_s: float = 600.0,
        calibration: Optional[DramCalibration] = None,
        seed: Optional[int] = None,
    ) -> MechanismCheckResult:
        """Cross-check an operating point against the explicit cell array.

        The campaign itself uses the closed-form statistical model; this
        runs the same operating point through the cell-array simulator's
        batch engine — write a data pattern whose charged-bit density
        follows the workload's entropy, let the array leak, read back
        through real SECDED decoding — so the model's trends can be
        validated mechanism-level.  The default calibration is a
        deliberately weak cell population: a tiny array must exhibit
        failures for the check to say anything.
        """
        simulator = CellArraySimulator(
            CellArrayConfig(
                geometry=small_geometry(),
                trefp_s=op.trefp_s,
                vdd_v=op.vdd_v,
                temperature_c=op.temperature_c,
                calibration=calibration
                or DramCalibration(
                    retention=RetentionCalibration(
                        log_median_retention_50c=3.0, log_sigma=1.3
                    )
                ),
                seed=self.seed if seed is None else seed,
            )
        )
        if not 0 < num_words <= simulator.geometry.total_words:
            raise CharacterizationError(
                f"num_words must be in 1..{simulator.geometry.total_words}, "
                f"got {num_words}"
            )
        if idle_s <= 0:
            raise CharacterizationError("idle_s must be positive")

        rng = np.random.default_rng(simulator.config.seed)
        density = 1.0
        if behavior is not None:
            density = min(max(behavior.data_entropy_bits / 32.0, 0.0), 1.0)
        bits = (rng.random((num_words, units.WORD_BITS)) < density).astype(np.uint8)
        locations = [
            simulator.geometry.cell_from_word_index(i) for i in range(num_words)
        ]
        simulator.write_batch(locations, bits_to_words(bits))
        simulator.idle(idle_s)
        sweep = simulator.read_batch(locations, workload="mechanism-check")
        return MechanismCheckResult(
            operating_point=op,
            words=num_words,
            counts=sweep.counts(),
            measured_wer=simulator.measured_wer(num_words),
        )
