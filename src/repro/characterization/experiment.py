"""Characterization experiments: one workload on one or many operating points.

A scalar :meth:`CharacterizationExperiment.run` corresponds to one
2-hour run of the paper's campaign: the DIMMs are held at the target
temperature, TREFP/VDD are configured through SLIMpro, the workload runs
for two hours, and the ECC error log is reduced to the per-rank WER plus
(at 70 C) a possible UE crash.

Grid engine
-----------
:meth:`CharacterizationExperiment.run_grid` executes a whole batch of
operating points x repetitions for one workload through the statistical
model's grid engine: the expected-WER surface is computed once per
operating point, run-to-run noise and maturity scaling are applied
array-wide, and UE outcomes are sampled per cell from the same keyed RNG
streams (``crc32(workload|trefp|temp|repetition|seed)``) the scalar path
uses.  The scalar-vs-batch contract: ``run`` is a one-point wrapper
around ``run_grid``, every grid cell is bit-identical to the scalar run
with the same key, and that equivalence is pinned by
``tests/test_campaign_grid.py`` — any change to one path must keep the
other (and the tests) in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import units
from repro.characterization.metrics import UeObservation, WerColumnStore, WerMeasurement
from repro.dram.calibration import DramCalibration, RetentionCalibration
from repro.dram.cells import CellArrayConfig, CellArraySimulator
from repro.dram.ecc import ErrorClass, bits_to_words
from repro.dram.geometry import RankLocation, small_geometry
from repro.dram.operating import OperatingPoint
from repro.dram.statistical import WorkloadBehavior
from repro.errors import CharacterizationError
from repro.characterization.server import XGene2Server
from repro.profiling.profile import WorkloadProfile
from repro.profiling.profiler import profile_workload
from repro.telemetry import get_telemetry


@dataclass
class ExperimentResult:
    """Everything one 2-hour characterization run produces."""

    workload: str
    operating_point: OperatingPoint
    duration_s: float
    rank_wer: Dict[RankLocation, float] = field(default_factory=dict)
    wer_time_series: Dict[float, float] = field(default_factory=dict)
    ue_rank: Optional[RankLocation] = None

    @property
    def memory_wer(self) -> float:
        """Memory-wide WER (Eq. 2) — the average across DIMM/ranks."""
        if not self.rank_wer:
            raise CharacterizationError("experiment produced no per-rank WER data")
        return float(np.mean(list(self.rank_wer.values())))

    @property
    def crashed(self) -> bool:
        """True when the run hit an uncorrectable error (which crashes the node)."""
        return self.ue_rank is not None

    def wer_measurements(self) -> List[WerMeasurement]:
        """Per-rank measurements in the flat record format the dataset uses."""
        op = self.operating_point
        return [
            WerMeasurement(
                workload=self.workload,
                trefp_s=op.trefp_s,
                vdd_v=op.vdd_v,
                temperature_c=op.temperature_c,
                rank=rank,
                wer=wer,
            )
            for rank, wer in sorted(self.rank_wer.items(), key=lambda kv: kv[0].label)
        ]

    def ue_observation(self) -> UeObservation:
        op = self.operating_point
        return UeObservation(
            workload=self.workload,
            trefp_s=op.trefp_s,
            temperature_c=op.temperature_c,
            crashed=self.crashed,
            rank=self.ue_rank,
        )


@dataclass
class GridColumns:
    """Columnar result of one workload x operating-point grid sweep.

    This is the zero-object sibling of the ``run_grid`` result: the
    sampled WER surface stays a ``(points, repetitions, ranks)`` array
    (rank axis in label order, the order the scalar sweep emitted its
    per-run measurements) and UE outcomes stay the per-cell rank grid.
    :meth:`wer_block` packs the surface into a
    :class:`~repro.characterization.metrics.WerColumnStore` block that a
    campaign merges without materializing ``WerMeasurement`` lists.
    """

    workload: str
    ops: List[OperatingPoint]
    ranks: List[RankLocation]
    wer: np.ndarray
    ue_ranks: List[List[Optional[RankLocation]]]

    def wer_block(self, first_repetition_only: bool = False) -> "WerColumnStore":
        """Columnar measurement block (optionally repetition 0 only).

        The UE study keeps only the first repetition's WER rows — the
        same slice the scalar sweep recorded.
        """
        wer = self.wer[:, :1, :] if first_repetition_only else self.wer
        return WerColumnStore.from_grid(self.workload, self.ops, wer, self.ranks)


@dataclass(frozen=True)
class MechanismCheckResult:
    """Mechanism-level cross-check of one operating point.

    Produced by :meth:`CharacterizationExperiment.mechanism_check`: real
    SECDED decoding of real bit flips on a small cell array, reduced to
    the same WER metric the statistical model predicts.
    """

    operating_point: OperatingPoint
    words: int
    counts: Dict[ErrorClass, int]
    measured_wer: float


class CharacterizationExperiment:
    """Runs single characterization experiments on a server model."""

    def __init__(self, server: Optional[XGene2Server] = None, seed: int = 7) -> None:
        self.server = server or XGene2Server()
        self.seed = seed

    # ------------------------------------------------------------------
    def _behavior(self, workload: str, profile: Optional[WorkloadProfile]) -> WorkloadBehavior:
        active_profile = profile or profile_workload(workload)
        if active_profile.workload != workload:
            raise CharacterizationError(
                f"profile is for {active_profile.workload!r}, expected {workload!r}"
            )
        return active_profile.behavior()

    def _run_rng(self, workload: str, op: OperatingPoint, repetition: int) -> np.random.Generator:
        import zlib

        key = zlib.crc32(
            f"{workload}|{op.trefp_s:.6f}|{op.temperature_c:.3f}|{repetition}|{self.seed}"
            .encode("utf-8")
        )
        # Stream-identical to np.random.default_rng(key) (an int seed goes
        # through SeedSequence either way) but skips default_rng's dispatch
        # overhead — this constructor runs once per grid cell.
        return np.random.Generator(np.random.PCG64(key))

    # ------------------------------------------------------------------
    def _grid_arrays(
        self,
        workload: str,
        ops: Sequence[OperatingPoint],
        repetitions: Union[int, Sequence[int]],
        duration_s: float,
        profile: Optional[WorkloadProfile],
    ):
        """Shared grid core: sampled WER surface + UE grid as arrays.

        Returns ``(configured_ops, behavior, wer_grid, ue_grid)`` where
        ``wer_grid`` is ``(points, repetitions, ranks)`` with maturity
        already applied (shape ``(points, 0, ranks)`` when no repetitions
        were requested) and ``ue_grid`` is the per-cell rank grid.
        """
        if duration_s <= 0:
            raise CharacterizationError("duration_s must be positive")
        if not ops:
            raise CharacterizationError("ops must contain at least one operating point")
        if isinstance(repetitions, int):
            if repetitions < 0:
                raise CharacterizationError("repetitions must be non-negative")
            repetition_indices = list(range(repetitions))
        else:
            repetition_indices = list(repetitions)
        telemetry = get_telemetry()
        with telemetry.span("experiment.grid"):
            behavior = self._behavior(workload, profile)
            configured = [self.server.configure(op) for op in ops]
            model = self.server.error_model
            if telemetry.enabled:
                telemetry.incr("experiment.grid_points", len(configured))
                telemetry.incr(
                    "experiment.grid_cells", len(configured) * len(repetition_indices)
                )
            if not repetition_indices:
                empty = np.zeros((len(configured), 0, self.server.geometry.num_ranks))
                return configured, behavior, empty, [[] for _ in configured]

            rngs = [
                [self._run_rng(workload, op, repetition) for repetition in repetition_indices]
                for op in configured
            ]
            # The CE and UE models share the per-point retention failure
            # probabilities — one batched CDF evaluation serves both grids.
            p_ret = model.retention_bit_failure_probability_grid(configured)
            # One batched draw per cell: (points, repetitions, ranks), noise and
            # maturity scaling applied array-wide.
            wer_grid = model.sample_rank_wer_grid(
                configured, behavior, workload=workload, rngs=rngs, p_ret=p_ret
            )
            # WER keeps accumulating until the run ends; a shorter run only sees
            # the fraction of error-prone locations discovered so far.
            maturity = 1.0 - float(np.exp(-duration_s / model.calibration.convergence_tau_s))
            wer_grid = wer_grid * maturity
            ue_grid = model.sample_ue_events_grid(
                configured, behavior, workload=workload, rngs=rngs, p_ret=p_ret
            )
            return configured, behavior, wer_grid, ue_grid

    def run_grid(
        self,
        workload: str,
        ops: Sequence[OperatingPoint],
        repetitions: Union[int, Sequence[int]] = 1,
        duration_s: float = units.CHARACTERIZATION_DURATION_S,
        profile: Optional[WorkloadProfile] = None,
        collect_time_series: bool = False,
    ) -> List[List[ExperimentResult]]:
        """Run one workload over a batch of operating points x repetitions.

        Returns results indexed ``[point][repetition]``.  ``repetitions``
        is either a count (runs repetition indices ``0..n-1``) or an
        explicit sequence of repetition indices (how the scalar ``run``
        wrapper requests a single arbitrary index).  Every cell draws
        from the same ``crc32``-keyed RNG stream the scalar path would
        use, so cell ``[p][k]`` is bit-identical to
        ``run(workload, ops[p], repetition=indices[k])``.
        """
        configured, behavior, wer_grid, ue_grid = self._grid_arrays(
            workload, ops, repetitions, duration_s, profile
        )
        model = self.server.error_model
        if wer_grid.shape[1] == 0:
            return [[] for _ in configured]

        ranks = list(self.server.geometry.iter_ranks())
        results: List[List[ExperimentResult]] = []
        for p, op in enumerate(configured):
            time_series: Dict[float, float] = {}
            if collect_time_series:
                time_series = model.wer_time_series(
                    op, behavior, duration_s=duration_s, workload=workload
                )
            point_results = []
            # .tolist() converts a whole repetition row to Python floats in
            # one C pass — the per-element float() indexing used to cost as
            # much as the draws themselves.
            point_wers = wer_grid[p].tolist()
            for k in range(wer_grid.shape[1]):
                point_results.append(
                    ExperimentResult(
                        workload=workload,
                        operating_point=op,
                        duration_s=duration_s,
                        rank_wer=dict(zip(ranks, point_wers[k])),
                        wer_time_series=dict(time_series) if time_series else {},
                        ue_rank=ue_grid[p][k],
                    )
                )
            results.append(point_results)
        return results

    def run_grid_columns(
        self,
        workload: str,
        ops: Sequence[OperatingPoint],
        repetitions: Union[int, Sequence[int]] = 1,
        duration_s: float = units.CHARACTERIZATION_DURATION_S,
        profile: Optional[WorkloadProfile] = None,
    ) -> GridColumns:
        """Run a grid and keep the results columnar (no per-run objects).

        Samples exactly the same RNG streams as :meth:`run_grid` — cell
        values are bit-identical — but returns the WER surface and UE
        grid as arrays, ready to stream into a campaign's
        ``WerColumnStore`` / the dataset builders.  The rank axis is
        reordered to label order, matching the order the scalar sweep's
        ``wer_measurements()`` emitted rows.
        """
        configured, _behavior, wer_grid, ue_grid = self._grid_arrays(
            workload, ops, repetitions, duration_s, profile
        )
        ranks = list(self.server.geometry.iter_ranks())
        order = sorted(range(len(ranks)), key=lambda i: ranks[i].label)
        return GridColumns(
            workload=workload,
            ops=list(configured),
            ranks=[ranks[i] for i in order],
            wer=np.ascontiguousarray(wer_grid[:, :, order]),
            ue_ranks=ue_grid,
        )

    def run(
        self,
        workload: str,
        op: OperatingPoint,
        duration_s: float = units.CHARACTERIZATION_DURATION_S,
        profile: Optional[WorkloadProfile] = None,
        repetition: int = 0,
        collect_time_series: bool = False,
    ) -> ExperimentResult:
        """Execute one 2-hour characterization run and collect its metrics.

        One-point wrapper over :meth:`run_grid`; the grid engine is the
        single implementation of the measurement core.
        """
        return self.run_grid(
            workload,
            [op],
            repetitions=(repetition,),
            duration_s=duration_s,
            profile=profile,
            collect_time_series=collect_time_series,
        )[0][0]

    # ------------------------------------------------------------------
    def mechanism_check(
        self,
        op: OperatingPoint,
        behavior: Optional[WorkloadBehavior] = None,
        num_words: int = 4096,
        idle_s: float = 600.0,
        calibration: Optional[DramCalibration] = None,
        seed: Optional[int] = None,
        block_words: int = 65536,
    ) -> MechanismCheckResult:
        """Cross-check an operating point against the explicit cell array.

        The campaign itself uses the closed-form statistical model; this
        runs the same operating point through the cell-array simulator's
        batch engine — write a data pattern whose charged-bit density
        follows the workload's entropy, let the array leak, read back
        through real SECDED decoding — so the model's trends can be
        validated mechanism-level.  The default calibration is a
        deliberately weak cell population: a tiny array must exhibit
        failures for the check to say anything.

        The sweep addresses the array by word index (the simulator's
        packed fast path) and streams in ``block_words`` slabs, so
        million-word checks never materialize per-location objects or
        all-cell temporaries.
        """
        simulator = CellArraySimulator(
            CellArrayConfig(
                geometry=small_geometry(),
                trefp_s=op.trefp_s,
                vdd_v=op.vdd_v,
                temperature_c=op.temperature_c,
                calibration=calibration
                or DramCalibration(
                    retention=RetentionCalibration(
                        log_median_retention_50c=3.0, log_sigma=1.3
                    )
                ),
                seed=self.seed if seed is None else seed,
                block_words=block_words,
            )
        )
        if not 0 < num_words <= simulator.geometry.total_words:
            raise CharacterizationError(
                f"num_words must be in 1..{simulator.geometry.total_words}, "
                f"got {num_words}"
            )
        if idle_s <= 0:
            raise CharacterizationError("idle_s must be positive")

        rng = np.random.default_rng(simulator.config.seed)
        density = 1.0
        if behavior is not None:
            density = min(max(behavior.data_entropy_bits / 32.0, 0.0), 1.0)
        bits = (rng.random((num_words, units.WORD_BITS)) < density).astype(np.uint8)
        words = np.arange(num_words, dtype=np.int64)
        with get_telemetry().span("experiment.mechanism_check"):
            simulator.write_batch(words, bits_to_words(bits))
            simulator.idle(idle_s)
            sweep = simulator.read_batch(words, workload="mechanism-check")
        return MechanismCheckResult(
            operating_point=op,
            words=num_words,
            counts=sweep.counts(),
            measured_wer=simulator.measured_wer(num_words),
        )
