"""Physical constants, unit helpers and platform defaults.

The values mirror the experimental platform used in the paper: an
X-Gene2 ARMv8 server with four Micron DDR3 DIMMs (8 GB each, two ranks
per DIMM, 1866 MT/s), characterised under relaxed refresh period
(``TREFP``), lowered supply voltage (``VDD``) and elevated DIMM
temperature.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
MS = 1e-3
US = 1e-6
NS = 1e-9
MINUTE = 60.0
HOUR = 3600.0

# --- capacity ---------------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

WORD_BYTES = 8          #: a 64-bit word, the ECC protection granularity
WORD_BITS = 64          #: data bits per protected word
ECC_BITS = 8            #: SECDED check bits per 64-bit word
CODEWORD_BITS = WORD_BITS + ECC_BITS

# --- platform defaults (X-Gene2 + Micron DDR3 DIMMs) ------------------------
NOMINAL_TREFP_S = 64 * MS       #: JEDEC nominal refresh period
MAX_TREFP_S = 2.283             #: maximum refresh period configurable on X-Gene2
NOMINAL_VDD_V = 1.5             #: DDR3 nominal supply voltage
MIN_VDD_V = 1.428               #: lowest stable VDD found in the paper
NOMINAL_TEMP_C = 45.0           #: ambient DIMM temperature without heaters
MAX_TEMP_C = 70.0               #: vendor-specified maximum operating temperature

CPU_FREQ_HZ = 2.4e9             #: X-Gene2 core frequency
NUM_CORES = 8
NUM_MCUS = 4
DIMMS_PER_MCU = 1
RANKS_PER_DIMM = 2
CHIPS_PER_RANK = 9              #: 8 data chips + 1 ECC chip (x8 devices)
DIMM_CAPACITY_BYTES = 8 * GIB
BENCHMARK_FOOTPRINT_BYTES = 8 * GIB   #: every benchmark allocates 8 GB in the paper

#: refresh periods (seconds) swept in the characterization campaign (Fig. 7)
TREFP_SWEEP_S = (0.618, 1.173, 1.727, 2.283)
#: refresh periods used for the UE study at 70C (Fig. 9)
TREFP_UE_SWEEP_S = (1.450, 1.727, 2.283)
#: DIMM temperatures used in the campaign
TEMPERATURE_SWEEP_C = (50.0, 60.0, 70.0)

CHARACTERIZATION_DURATION_S = 2 * HOUR   #: duration of one characterization run


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return temp_c + 273.15


def words_in(num_bytes: int) -> int:
    """Number of 64-bit words contained in ``num_bytes`` bytes."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return num_bytes // WORD_BYTES
