"""Kernel support-vector regression (SVR).

The paper evaluates Support Vector Machines as one of the three models
(Section III.B / VI.B).  scikit-learn is not available offline, so this
module implements epsilon-insensitive kernel SVR trained in the *primal*
using the representer theorem: the prediction function is expanded as

    f(x) = sum_i beta_i K(x_i, x) + b

and the coefficients ``beta`` are found by minimising the regularised
(smoothed) epsilon-insensitive loss with L-BFGS.  For the dataset sizes
used in this study (a few hundred samples) this is fast, deterministic
and numerically robust.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy.optimize import minimize

from repro.errors import ConfigurationError
from repro.ml.base import ArrayLike, Regressor, as_2d_array, validate_fit_args
from repro.ml.kernels import gamma_scale, resolve_kernel


def _smoothed_epsilon_insensitive(residual: np.ndarray, epsilon: float, delta: float) -> tuple:
    """Huber-smoothed epsilon-insensitive loss and its derivative.

    The plain epsilon-insensitive loss ``max(0, |r| - epsilon)`` is not
    differentiable at the hinge, which makes L-BFGS stall; a small
    quadratic smoothing region of width ``delta`` around the hinge keeps
    the optimiser stable without materially changing the solution.
    """
    excess = np.abs(residual) - epsilon
    loss = np.zeros_like(residual)
    grad = np.zeros_like(residual)

    in_quad = (excess > 0) & (excess <= delta)
    in_lin = excess > delta

    loss[in_quad] = 0.5 * excess[in_quad] ** 2 / delta
    grad[in_quad] = (excess[in_quad] / delta) * np.sign(residual[in_quad])

    loss[in_lin] = excess[in_lin] - 0.5 * delta
    grad[in_lin] = np.sign(residual[in_lin])

    return loss, grad


class SVR(Regressor):
    """Epsilon-insensitive kernel support-vector regression.

    Parameters mirror the conventional SVR interface: ``C`` trades the
    data-fit term against the RKHS-norm regulariser, ``epsilon`` is the
    width of the insensitive tube and ``gamma`` the RBF width
    (``"scale"`` uses the usual 1/(n_features * Var(X)) heuristic).
    """

    def __init__(
        self,
        kernel: str = "rbf",
        C: float = 10.0,
        epsilon: float = 0.01,
        gamma: Union[str, float] = "scale",
        degree: int = 3,
        coef0: float = 1.0,
        max_iter: int = 500,
        smoothing: float = 1e-3,
    ) -> None:
        if C <= 0:
            raise ConfigurationError("C must be positive")
        if epsilon < 0:
            raise ConfigurationError("epsilon must be non-negative")
        self.kernel = kernel
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.max_iter = max_iter
        self.smoothing = smoothing

    # ------------------------------------------------------------------
    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        func = resolve_kernel(self.kernel)
        return func(A, B, gamma=self.gamma_, degree=self.degree, coef0=self.coef0)

    def fit(self, X: ArrayLike, y: ArrayLike) -> "SVR":
        X_arr, y_arr = validate_fit_args(X, y)
        self.X_train_ = X_arr
        if self.gamma == "scale":
            self.gamma_ = gamma_scale(X_arr)
        else:
            self.gamma_ = float(self.gamma)

        K = self._kernel_matrix(X_arr, X_arr)
        n = X_arr.shape[0]
        jitter = 1e-10 * np.eye(n)
        K_reg = K + jitter
        delta = self.smoothing

        def objective(params: np.ndarray):
            beta = params[:n]
            bias = params[n]
            f = K_reg @ beta + bias
            residual = f - y_arr
            loss, dloss = _smoothed_epsilon_insensitive(residual, self.epsilon, delta)
            reg = 0.5 * beta @ (K_reg @ beta)
            value = self.C * loss.sum() + reg
            grad_beta = self.C * (K_reg @ dloss) + K_reg @ beta
            grad_bias = self.C * dloss.sum()
            return value, np.concatenate([grad_beta, [grad_bias]])

        x0 = np.zeros(n + 1)
        x0[n] = float(np.mean(y_arr))
        result = minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.beta_ = result.x[:n]
        self.intercept_ = float(result.x[n])
        self.n_iter_ = int(result.nit)
        # Support vectors: samples whose coefficient is non-negligible.
        self.support_ = np.flatnonzero(np.abs(self.beta_) > 1e-8)
        return self

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("beta_")
        X_arr = as_2d_array(X)
        K = self._kernel_matrix(X_arr, self.X_train_)
        return K @ self.beta_ + self.intercept_
