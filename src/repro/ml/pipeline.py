"""A minimal transformer + regressor pipeline.

Every model in the accuracy evaluation is trained on standardised
features and a log-transformed target, so bundling the scaler with the
estimator keeps the leave-one-workload-out protocol honest: the scaler
statistics are re-fitted on every training fold.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import ArrayLike, Regressor
from repro.telemetry import get_telemetry


class Pipeline(Regressor):
    """Chain of named (transformer..., regressor) steps.

    All steps except the last must implement ``fit``/``transform``; the
    last must implement ``fit``/``predict``.
    """

    def __init__(self, steps: Sequence[Tuple[str, object]]) -> None:
        if not steps:
            raise ConfigurationError("Pipeline requires at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ConfigurationError("Pipeline step names must be unique")
        for name, step in steps[:-1]:
            if not hasattr(step, "transform"):
                raise ConfigurationError(f"Step {name!r} does not implement transform()")
        last_name, last = steps[-1]
        if not hasattr(last, "predict"):
            raise ConfigurationError(f"Final step {last_name!r} does not implement predict()")
        self.steps = list(steps)

    # The pipeline deep-copies its (unfitted) steps when cloned.
    def clone(self) -> "Pipeline":
        cloned_steps = []
        for name, step in self.steps:
            if hasattr(step, "clone"):
                cloned_steps.append((name, step.clone()))
            else:   # pragma: no cover - steps are always repro.ml estimators
                cloned_steps.append((name, step))
        return Pipeline(cloned_steps)

    @property
    def named_steps(self) -> dict:
        return dict(self.steps)

    def _transform(self, X: ArrayLike) -> np.ndarray:
        data = X
        for _name, step in self.steps[:-1]:
            data = step.transform(data)
        return np.asarray(data, dtype=float)

    def fit(self, X: ArrayLike, y: ArrayLike) -> "Pipeline":
        telemetry = get_telemetry()
        with telemetry.span("ml.fit"):
            data = X
            for _name, step in self.steps[:-1]:
                data = step.fit(data, y).transform(data)
            self.steps[-1][1].fit(data, y)
            if telemetry.enabled:
                telemetry.incr("ml.fit_rows", int(np.shape(data)[0]))
            self.fitted_ = True
            return self

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("fitted_")
        telemetry = get_telemetry()
        with telemetry.span("ml.predict"):
            predictions = self.steps[-1][1].predict(self._transform(X))
            if telemetry.enabled:
                telemetry.incr("ml.predict_rows", int(np.shape(predictions)[0]))
            return predictions


def make_model_pipeline(model: Regressor, scaler: Optional[object] = None) -> Pipeline:
    """Convenience constructor: ``StandardScaler`` + model."""
    from repro.ml.scaling import StandardScaler

    steps: List[Tuple[str, object]] = [("scaler", scaler or StandardScaler())]
    steps.append(("model", model))
    return Pipeline(steps)
