"""Kernel functions for the support-vector regression model."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.distances import euclidean_distances


def linear_kernel(A: np.ndarray, B: np.ndarray, **_: float) -> np.ndarray:
    """Linear kernel ``K(a, b) = a . b``."""
    return np.asarray(A, dtype=float) @ np.asarray(B, dtype=float).T


def polynomial_kernel(
    A: np.ndarray, B: np.ndarray, degree: int = 3, coef0: float = 1.0, gamma: float = 1.0, **_: float
) -> np.ndarray:
    """Polynomial kernel ``K(a, b) = (gamma a.b + coef0)^degree``."""
    return (gamma * linear_kernel(A, B) + coef0) ** degree


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float = 1.0, **_: float) -> np.ndarray:
    """Gaussian radial-basis-function kernel ``K(a, b) = exp(-gamma |a-b|^2)``."""
    sq = euclidean_distances(A, B) ** 2
    return np.exp(-gamma * sq)


_KERNELS: Dict[str, Callable[..., np.ndarray]] = {
    "linear": linear_kernel,
    "poly": polynomial_kernel,
    "rbf": rbf_kernel,
}


def resolve_kernel(name: str) -> Callable[..., np.ndarray]:
    """Look up a kernel function by name."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown kernel {name!r}; choose from {sorted(_KERNELS)}"
        ) from None


def gamma_scale(X: np.ndarray) -> float:
    """The 'scale' heuristic for gamma: ``1 / (n_features * Var(X))``."""
    X = np.asarray(X, dtype=float)
    variance = X.var()
    if variance <= 0.0:
        variance = 1.0
    return 1.0 / (X.shape[1] * variance)
