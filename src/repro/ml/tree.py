"""CART regression trees.

The trees are the building block of the Random Decision Forest model
(RDF in the paper).  Splitting criterion is variance reduction (MSE);
the implementation supports feature sub-sampling at every split so the
forest can decorrelate its members.

Fitted trees are stored twice: as the linked :class:`_Node` structure
the recursive builder produces (kept as the per-row prediction oracle,
see :mod:`repro.ml.reference`) and as a **flattened columnar layout** —
parallel ``feature_``/``threshold_``/``children_left_``/
``children_right_``/``value_`` arrays indexed by node id, root at 0,
children appended in breadth-first order, ``feature_ == -1`` marking
leaves.  ``predict`` traverses the flat arrays level-synchronously: all
query rows step one tree level per numpy operation instead of one
Python node-walk per row, and :class:`~repro.ml.forest.
RandomForestRegressor` concatenates the per-tree arrays (child indices
shifted by node offsets) to batch the whole ensemble the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import ArrayLike, Regressor, as_2d_array, validate_fit_args


@dataclass
class _Node:
    """A single node of a regression tree."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _flatten_tree(root: _Node) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Breadth-first columnar layout of a fitted tree.

    Returns ``(feature, threshold, left, right, value)`` arrays indexed
    by node id; the root is node 0 and ``feature == -1`` marks leaves
    (their ``left``/``right`` entries are ``-1`` and never dereferenced).
    """
    nodes = [root]
    feature = []
    threshold = []
    left = []
    right = []
    value = []
    cursor = 0
    while cursor < len(nodes):
        node = nodes[cursor]
        cursor += 1
        value.append(node.prediction)
        if node.is_leaf:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
        else:
            feature.append(node.feature)
            threshold.append(node.threshold)
            left.append(len(nodes))
            nodes.append(node.left)
            right.append(len(nodes))
            nodes.append(node.right)
    return (
        np.asarray(feature, dtype=np.int64),
        np.asarray(threshold, dtype=np.float64),
        np.asarray(left, dtype=np.int64),
        np.asarray(right, dtype=np.int64),
        np.asarray(value, dtype=np.float64),
    )


def flat_tree_predict(
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    value: np.ndarray,
    X: np.ndarray,
    node_ids: Optional[np.ndarray] = None,
    row_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Level-synchronous traversal of one (or many concatenated) flat trees.

    ``node_ids``/``row_ids`` generalize the traversal to a forest: entry
    ``i`` starts at node ``node_ids[i]`` and reads feature values from
    ``X[row_ids[i]]``.  When omitted, every row of ``X`` starts at the
    root of a single tree (node 0).  Each loop iteration advances every
    still-internal entry by exactly one level, so the number of numpy
    passes is the tree depth, not the row count.
    """
    if node_ids is None:
        state = np.zeros(X.shape[0], dtype=np.int64)
    else:
        state = np.array(node_ids, dtype=np.int64)
    rows = np.arange(state.shape[0]) if row_ids is None else np.asarray(row_ids)

    active = np.nonzero(feature[state] >= 0)[0]
    while active.size:
        node = state[active]
        split_feature = feature[node]
        go_left = X[rows[active], split_feature] <= threshold[node]
        state[active] = np.where(go_left, left[node], right[node])
        active = active[feature[state[active]] >= 0]
    return value[state]


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Find the (feature, threshold) split minimising weighted child variance.

    Returns ``(feature, threshold, gain)`` or ``None`` when no valid split
    exists.  Uses cumulative-sum statistics over the sorted column so each
    feature is scanned in O(n log n).
    """
    n = y.shape[0]
    total_sum = y.sum()
    total_sq = (y ** 2).sum()
    parent_impurity = total_sq / n - (total_sum / n) ** 2

    best = None
    best_gain = 1e-12   # require strictly positive gain
    for feature in feature_indices:
        column = X[:, feature]
        order = np.argsort(column, kind="mergesort")
        col_sorted = column[order]
        y_sorted = y[order]

        cum_sum = np.cumsum(y_sorted)
        cum_sq = np.cumsum(y_sorted ** 2)

        # candidate split after position i (left = [0..i], right = [i+1..n-1])
        left_counts = np.arange(1, n)
        right_counts = n - left_counts

        valid = (
            (left_counts >= min_samples_leaf)
            & (right_counts >= min_samples_leaf)
            & (col_sorted[:-1] < col_sorted[1:])   # only between distinct values
        )
        if not np.any(valid):
            continue

        left_sum = cum_sum[:-1]
        left_sq = cum_sq[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq

        left_var = left_sq / left_counts - (left_sum / left_counts) ** 2
        right_var = right_sq / right_counts - (right_sum / right_counts) ** 2
        weighted = (left_counts * left_var + right_counts * right_var) / n
        gain = parent_impurity - weighted
        gain[~valid] = -np.inf

        idx = int(np.argmax(gain))
        if gain[idx] > best_gain:
            best_gain = float(gain[idx])
            threshold = 0.5 * (col_sorted[idx] + col_sorted[idx + 1])
            best = (int(feature), float(threshold), best_gain)

    return best


class DecisionTreeRegressor(Regressor):
    """CART regression tree with MSE splitting."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ConfigurationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if isinstance(self.max_features, str):
            if self.max_features == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if self.max_features == "log2":
                return max(1, int(np.log2(n_features)))
            raise ConfigurationError(f"Unknown max_features {self.max_features!r}")
        if isinstance(self.max_features, float):
            return max(1, int(self.max_features * n_features))
        return max(1, min(int(self.max_features), n_features))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> _Node:
        node = _Node(prediction=float(np.mean(y)))
        n_samples, n_features = X.shape

        if (
            n_samples < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node

        n_split_features = self._n_split_features(n_features)
        if n_split_features < n_features:
            feature_indices = rng.choice(n_features, size=n_split_features, replace=False)
        else:
            feature_indices = np.arange(n_features)

        split = _best_split(X, y, feature_indices, self.min_samples_leaf)
        if split is None:
            return node

        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def fit(self, X: ArrayLike, y: ArrayLike) -> "DecisionTreeRegressor":
        X_arr, y_arr = validate_fit_args(X, y)
        rng = np.random.default_rng(self.random_state)
        self.n_features_ = X_arr.shape[1]
        self.root_ = self._build(X_arr, y_arr, depth=0, rng=rng)
        (
            self.feature_,
            self.threshold_,
            self.children_left_,
            self.children_right_,
            self.value_,
        ) = _flatten_tree(self.root_)
        return self

    def predict(self, X: ArrayLike) -> np.ndarray:
        # Prediction needs only the flat arrays, so a tree restored from
        # the serving model registry (which persists the columnar layout
        # but not the linked _Node structure) predicts identically.
        self._check_fitted("feature_")
        X_arr = as_2d_array(X, allow_empty=True)
        if X_arr.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X_arr.shape[1]} features, tree was fitted with {self.n_features_}"
            )
        return flat_tree_predict(
            self.feature_, self.threshold_, self.children_left_,
            self.children_right_, self.value_, X_arr,
        )

    def depth(self) -> int:
        """Maximum depth of the fitted tree (0 for a single leaf)."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def node_count(self) -> int:
        """Total number of nodes (internal + leaves) in the fitted tree."""
        self._check_fitted("root_")
        return int(self.feature_.shape[0])
