"""CART regression trees.

The trees are the building block of the Random Decision Forest model
(RDF in the paper).  Splitting criterion is variance reduction (MSE);
the implementation supports feature sub-sampling at every split so the
forest can decorrelate its members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import ArrayLike, Regressor, as_2d_array, validate_fit_args


@dataclass
class _Node:
    """A single node of a regression tree."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Find the (feature, threshold) split minimising weighted child variance.

    Returns ``(feature, threshold, gain)`` or ``None`` when no valid split
    exists.  Uses cumulative-sum statistics over the sorted column so each
    feature is scanned in O(n log n).
    """
    n = y.shape[0]
    total_sum = y.sum()
    total_sq = (y ** 2).sum()
    parent_impurity = total_sq / n - (total_sum / n) ** 2

    best = None
    best_gain = 1e-12   # require strictly positive gain
    for feature in feature_indices:
        column = X[:, feature]
        order = np.argsort(column, kind="mergesort")
        col_sorted = column[order]
        y_sorted = y[order]

        cum_sum = np.cumsum(y_sorted)
        cum_sq = np.cumsum(y_sorted ** 2)

        # candidate split after position i (left = [0..i], right = [i+1..n-1])
        left_counts = np.arange(1, n)
        right_counts = n - left_counts

        valid = (
            (left_counts >= min_samples_leaf)
            & (right_counts >= min_samples_leaf)
            & (col_sorted[:-1] < col_sorted[1:])   # only between distinct values
        )
        if not np.any(valid):
            continue

        left_sum = cum_sum[:-1]
        left_sq = cum_sq[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq

        left_var = left_sq / left_counts - (left_sum / left_counts) ** 2
        right_var = right_sq / right_counts - (right_sum / right_counts) ** 2
        weighted = (left_counts * left_var + right_counts * right_var) / n
        gain = parent_impurity - weighted
        gain[~valid] = -np.inf

        idx = int(np.argmax(gain))
        if gain[idx] > best_gain:
            best_gain = float(gain[idx])
            threshold = 0.5 * (col_sorted[idx] + col_sorted[idx + 1])
            best = (int(feature), float(threshold), best_gain)

    return best


class DecisionTreeRegressor(Regressor):
    """CART regression tree with MSE splitting."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ConfigurationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if isinstance(self.max_features, str):
            if self.max_features == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if self.max_features == "log2":
                return max(1, int(np.log2(n_features)))
            raise ConfigurationError(f"Unknown max_features {self.max_features!r}")
        if isinstance(self.max_features, float):
            return max(1, int(self.max_features * n_features))
        return max(1, min(int(self.max_features), n_features))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> _Node:
        node = _Node(prediction=float(np.mean(y)))
        n_samples, n_features = X.shape

        if (
            n_samples < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node

        n_split_features = self._n_split_features(n_features)
        if n_split_features < n_features:
            feature_indices = rng.choice(n_features, size=n_split_features, replace=False)
        else:
            feature_indices = np.arange(n_features)

        split = _best_split(X, y, feature_indices, self.min_samples_leaf)
        if split is None:
            return node

        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def fit(self, X: ArrayLike, y: ArrayLike) -> "DecisionTreeRegressor":
        X_arr, y_arr = validate_fit_args(X, y)
        rng = np.random.default_rng(self.random_state)
        self.n_features_ = X_arr.shape[1]
        self.root_ = self._build(X_arr, y_arr, depth=0, rng=rng)
        return self

    def _predict_one(self, x: np.ndarray) -> float:
        node = self.root_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("root_")
        X_arr = as_2d_array(X)
        if X_arr.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X_arr.shape[1]} features, tree was fitted with {self.n_features_}"
            )
        return np.array([self._predict_one(row) for row in X_arr])

    def depth(self) -> int:
        """Maximum depth of the fitted tree (0 for a single leaf)."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def node_count(self) -> int:
        """Total number of nodes (internal + leaves) in the fitted tree."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + walk(node.left) + walk(node.right)

        return walk(self.root_)
