"""Estimator protocol shared by all models in :mod:`repro.ml`.

The interface intentionally mirrors the small subset of the scikit-learn
API that the paper relies on (``fit`` / ``predict`` / ``get_params``),
so the higher-level code in :mod:`repro.core` reads like the original
experiments even though every estimator here is implemented from
scratch on top of numpy.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.errors import DataError, NotFittedError

ArrayLike = Any


def as_2d_array(X: ArrayLike, name: str = "X", allow_empty: bool = False) -> np.ndarray:
    """Validate and convert ``X`` to a 2-D float array of samples x features.

    ``allow_empty`` admits a well-formed ``(0, d)`` batch — prediction
    paths accept empty query sets and return empty results, while ``fit``
    keeps rejecting them.  A zero-feature shape is always an error.
    """
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DataError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if (arr.shape[0] == 0 and not allow_empty) or arr.shape[1] == 0:
        raise DataError(f"{name} must not be empty, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return arr


def as_1d_array(y: ArrayLike, name: str = "y") -> np.ndarray:
    """Validate and convert ``y`` to a 1-D float array."""
    arr = np.asarray(y, dtype=float)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.shape[0] == 0:
        raise DataError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return arr


def check_consistent_length(X: np.ndarray, y: np.ndarray) -> None:
    """Raise :class:`DataError` when ``X`` and ``y`` disagree on sample count."""
    if X.shape[0] != y.shape[0]:
        raise DataError(
            f"X and y have inconsistent sample counts: {X.shape[0]} != {y.shape[0]}"
        )


class Estimator:
    """Base class providing parameter introspection and cloning."""

    def get_params(self) -> Dict[str, Any]:
        """Return the constructor parameters of this estimator."""
        params = {}
        for key, value in vars(self).items():
            if not key.endswith("_") and not key.startswith("_"):
                params[key] = value
        return params

    def set_params(self, **params: Any) -> "Estimator":
        """Set constructor parameters; unknown names raise ``ValueError``."""
        valid = self.get_params()
        for key, value in params.items():
            if key not in valid:
                raise ValueError(f"Unknown parameter {key!r} for {type(self).__name__}")
            setattr(self, key, value)
        return self

    def clone(self) -> "Estimator":
        """Return an unfitted copy with identical constructor parameters."""
        new = type(self)(**copy.deepcopy(self.get_params()))
        return new

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class Regressor(Estimator):
    """Base class for regressors: defines the fit/predict contract."""

    def fit(self, X: ArrayLike, y: ArrayLike) -> "Regressor":
        raise NotImplementedError

    def predict(self, X: ArrayLike) -> np.ndarray:
        raise NotImplementedError

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling predict()"
            )

    def score(self, X: ArrayLike, y: ArrayLike) -> float:
        """Coefficient of determination R^2 on the given data."""
        y_true = as_1d_array(y)
        y_pred = self.predict(X)
        ss_res = float(np.sum((y_true - y_pred) ** 2))
        ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
        # A sum of squares is non-negative, so the ordered guard catches
        # exactly the degenerate constant-target case without float ==.
        if ss_tot <= 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot


class Transformer(Estimator):
    """Base class for transformers (scalers, selectors)."""

    def fit(self, X: ArrayLike, y: Optional[ArrayLike] = None) -> "Transformer":
        raise NotImplementedError

    def transform(self, X: ArrayLike) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, X: ArrayLike, y: Optional[ArrayLike] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


def validate_fit_args(X: ArrayLike, y: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Common validation used by every regressor's ``fit``."""
    X_arr = as_2d_array(X)
    y_arr = as_1d_array(y)
    check_consistent_length(X_arr, y_arr)
    return X_arr, y_arr
