"""Accuracy metrics used throughout the accuracy evaluation (Section VI).

The paper reports the *mean percentage error* (MPE) of WER / PUE
estimates; this module provides it together with standard regression
metrics and the Spearman rank correlation used for feature selection.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats

from repro.errors import DataError
from repro.ml.base import ArrayLike


def _validate_pair(y_true: ArrayLike, y_pred: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(y_true, dtype=float).ravel()
    b = np.asarray(y_pred, dtype=float).ravel()
    if a.shape[0] != b.shape[0]:
        raise DataError("y_true and y_pred have different lengths")
    if a.shape[0] == 0:
        raise DataError("empty arrays passed to a metric")
    return a, b


def mean_absolute_error(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Plain MAE."""
    a, b = _validate_pair(y_true, y_pred)
    return float(np.mean(np.abs(a - b)))


def root_mean_squared_error(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """RMSE."""
    a, b = _validate_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def mean_percentage_error(y_true: ArrayLike, y_pred: ArrayLike, floor: float = 0.0) -> float:
    """Mean absolute percentage error, in percent.

    This is the metric Fig. 11 and Fig. 12 report ("Error of WER est., %").
    ``floor`` is added to the denominator so that zero targets (e.g. a
    benchmark with PUE = 0) do not produce an undefined percentage; when the
    target is zero and the prediction is also zero, the error contribution
    is zero.
    """
    a, b = _validate_pair(y_true, y_pred)
    denom = np.abs(a) + floor
    result = np.zeros_like(a)
    nonzero = denom > 0
    result[nonzero] = np.abs(a[nonzero] - b[nonzero]) / denom[nonzero]
    zero_target = ~nonzero
    # Target and floor are zero: count a non-zero prediction as 100 % error.
    result[zero_target] = np.where(np.abs(b[zero_target]) > 0, 1.0, 0.0)
    return float(np.mean(result) * 100.0)


def prediction_ratio(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Mean multiplicative over/under-estimation factor (always >= 1).

    Used to express the conventional-model error as "2.9x" (Fig. 13):
    for each sample the larger of pred/true and true/pred is taken and the
    results are averaged.
    """
    a, b = _validate_pair(y_true, y_pred)
    if np.any(a <= 0) or np.any(b <= 0):
        raise DataError("prediction_ratio requires strictly positive values")
    ratio = np.maximum(a / b, b / a)
    return float(np.mean(ratio))


def r2_score(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Coefficient of determination."""
    a, b = _validate_pair(y_true, y_pred)
    ss_res = float(np.sum((a - b) ** 2))
    ss_tot = float(np.sum((a - np.mean(a)) ** 2))
    # A sum of squares is non-negative, so the ordered guard catches
    # exactly the degenerate constant-target case without float ==.
    if ss_tot <= 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def spearman_correlation(x: ArrayLike, y: ArrayLike) -> float:
    """Spearman's rank correlation coefficient ``rs``.

    Detects both linear and non-linear monotonic relationships, which is
    why the paper uses it for feature selection (Section VI.A).

    **Zero-variance contract:** a constant ``x`` or constant ``y`` carries
    no ranking information, so the coefficient is defined as exactly
    ``0.0`` — never NaN (scipy's ``spearmanr`` would return NaN, which
    silently poisons any downstream mean, e.g. the per-operating-point
    averaging in ``run_correlation_study``).  The vectorized study path
    (``repro.core.correlation``) implements the same contract.
    """
    a, b = _validate_pair(x, y)
    if np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0
    rs, _pvalue = stats.spearmanr(a, b)
    if np.isnan(rs):
        return 0.0
    return float(rs)


def pearson_correlation(x: ArrayLike, y: ArrayLike) -> float:
    """Pearson's linear correlation coefficient."""
    a, b = _validate_pair(x, y)
    if np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0
    r, _pvalue = stats.pearsonr(a, b)
    if np.isnan(r):
        return 0.0
    return float(r)
