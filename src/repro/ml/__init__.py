"""From-scratch machine-learning substrate used by the error model.

This package provides the three model families the paper evaluates
(KNN, SVM, Random Decision Forest) plus the scalers, cross-validation
splitters and metrics needed for the accuracy evaluation, implemented
on top of numpy/scipy because scikit-learn is not available offline.
"""

from repro.ml.base import Estimator, Regressor, Transformer
from repro.ml.cross_validation import (
    KFold,
    LeaveOneGroupOut,
    cross_val_predict_groups,
    group_scores,
)
from repro.ml.distances import pairwise_distances
from repro.ml.forest import RandomForestRegressor
from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel
from repro.ml.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.metrics import (
    mean_absolute_error,
    mean_percentage_error,
    pearson_correlation,
    prediction_ratio,
    r2_score,
    root_mean_squared_error,
    spearman_correlation,
)
from repro.ml.pipeline import Pipeline, make_model_pipeline
from repro.ml.scaling import LogTransformer, MinMaxScaler, StandardScaler
from repro.ml.selection import FeatureCorrelation, SpearmanFeatureRanker, select_top_features
from repro.ml.svm import SVR
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "Estimator",
    "Regressor",
    "Transformer",
    "KFold",
    "LeaveOneGroupOut",
    "cross_val_predict_groups",
    "group_scores",
    "pairwise_distances",
    "RandomForestRegressor",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "mean_absolute_error",
    "mean_percentage_error",
    "pearson_correlation",
    "prediction_ratio",
    "r2_score",
    "root_mean_squared_error",
    "spearman_correlation",
    "Pipeline",
    "make_model_pipeline",
    "LogTransformer",
    "MinMaxScaler",
    "StandardScaler",
    "FeatureCorrelation",
    "SpearmanFeatureRanker",
    "select_top_features",
    "SVR",
    "DecisionTreeRegressor",
]
