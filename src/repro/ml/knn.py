"""K-nearest-neighbours regression and classification.

KNN is the model that achieves the best accuracy in the paper
(Section VI.B): ~10 % mean percentage error for WER with input set 1
and ~4 % for PUE with input set 2.

Neighbour search is fully deterministic: the k nearest training rows
are the k smallest under the lexicographic ``(distance, training
index)`` order, so equidistant neighbours always resolve to the
lowest-index rows regardless of platform or numpy version.  The hot
path uses ``np.argpartition`` (O(n) selection) plus a stable in-
candidate sort; rows whose k-th distance ties with excluded training
rows — the one case where the partition's pick is arbitrary — fall
back to a full per-row stable sort.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.ml.base import ArrayLike, Regressor, as_2d_array, validate_fit_args
from repro.ml.distances import pairwise_distances


def stable_kneighbors(dist: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """k smallest entries per row of a distance matrix, ties broken by index.

    Returns ``(distances, indices)``, each of shape ``(n_rows, k)``,
    ordered by ``(distance, column index)`` within every row — the unique
    deterministic neighbour ordering.  Selection is ``argpartition``-based;
    a row falls back to a full stable sort only when its k-th distance
    also occurs beyond the candidate set (boundary tie), where the
    partition's choice between tied columns is otherwise arbitrary.
    """
    n_rows, n_train = dist.shape
    if k >= n_train or n_rows == 0:
        # Stable argsort already breaks distance ties by column index.
        idx = np.argsort(dist, axis=1, kind="stable")[:, :k]
        return np.take_along_axis(dist, idx, axis=1), idx

    candidates = np.argpartition(dist, k - 1, axis=1)[:, :k]
    cand_dist = np.take_along_axis(dist, candidates, axis=1)
    order = np.lexsort((candidates, cand_dist), axis=1)
    idx = np.take_along_axis(candidates, order, axis=1)
    nearest = np.take_along_axis(cand_dist, order, axis=1)

    # Boundary ties: the partition guarantees the k smallest *values*, but
    # when the k-th value also occurs outside the candidate set the choice
    # of which tied columns were kept is arbitrary.  Re-select those rows
    # with a full (distance, index) sort.  Exact float comparison is the
    # point here: only bit-equal distances are ambiguous.
    kth = nearest[:, -1][:, None]
    ties_total = (dist == kth).sum(axis=1)  # repro-lint: disable=REP004
    ties_kept = (nearest == kth).sum(axis=1)  # repro-lint: disable=REP004
    train_index = np.arange(n_train)
    for row in np.nonzero(ties_total > ties_kept)[0]:
        full = np.lexsort((train_index, dist[row]))[:k]
        idx[row] = full
        nearest[row] = dist[row, full]
    return nearest, idx


def _neighbor_weights(distances: np.ndarray, weights: str) -> np.ndarray:
    """Per-neighbour weights for a (n_queries, k) distance matrix."""
    if weights == "uniform":
        return np.ones_like(distances)
    if weights == "distance":
        # Inverse-distance weighting; exact matches dominate entirely.
        with np.errstate(divide="ignore"):
            inv = 1.0 / distances
        exact = ~np.isfinite(inv)
        if np.any(exact):
            inv[exact.any(axis=1)] = 0.0
            inv[exact] = 1.0
        return inv
    raise ConfigurationError(f"Unknown weighting scheme {weights!r}")


class KNeighborsRegressor(Regressor):
    """Brute-force KNN regressor with uniform or inverse-distance weights."""

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "distance",
        metric: str = "euclidean",
    ) -> None:
        if n_neighbors < 1:
            raise ConfigurationError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.metric = metric

    def fit(self, X: ArrayLike, y: ArrayLike) -> "KNeighborsRegressor":
        X_arr, y_arr = validate_fit_args(X, y)
        if X_arr.shape[0] < 1:
            raise DataError("KNN requires at least one training sample")
        self.X_train_ = X_arr
        self.y_train_ = y_arr
        return self

    def kneighbors(
        self, X: ArrayLike, n_neighbors: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the nearest training samples.

        An empty ``(0, d)`` query batch yields ``(0, k)`` results.
        """
        self._check_fitted("X_train_")
        k = n_neighbors if n_neighbors is not None else self.n_neighbors
        k = min(k, self.X_train_.shape[0])
        X_arr = as_2d_array(X, allow_empty=True)
        dist = pairwise_distances(X_arr, self.X_train_, metric=self.metric)
        return stable_kneighbors(dist, k)

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("X_train_")
        dist, idx = self.kneighbors(X)
        w = _neighbor_weights(dist, self.weights)
        neighbor_targets = self.y_train_[idx]
        weight_sums = w.sum(axis=1)
        # All-zero weight rows only occur with "distance" weights when every
        # neighbour is at infinite distance, which cannot happen with finite
        # inputs; guard anyway to avoid division warnings.
        weight_sums[weight_sums == 0.0] = 1.0  # repro-lint: disable=REP004
        return (w * neighbor_targets).sum(axis=1) / weight_sums


class KNeighborsClassifier(Regressor):
    """Brute-force KNN classifier (majority / weighted vote)."""

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        metric: str = "euclidean",
    ) -> None:
        if n_neighbors < 1:
            raise ConfigurationError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.metric = metric

    def fit(self, X: ArrayLike, y: ArrayLike) -> "KNeighborsClassifier":
        X_arr = as_2d_array(X)
        y_arr = np.asarray(y)
        if X_arr.shape[0] != y_arr.shape[0]:
            raise DataError("X and y have inconsistent sample counts")
        self.classes_, encoded = np.unique(y_arr, return_inverse=True)
        self.X_train_ = X_arr
        self.y_train_ = encoded
        return self

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("X_train_")
        X_arr = as_2d_array(X, allow_empty=True)
        k = min(self.n_neighbors, self.X_train_.shape[0])
        dist = pairwise_distances(X_arr, self.X_train_, metric=self.metric)
        nearest, idx = stable_kneighbors(dist, k)
        w = _neighbor_weights(nearest, self.weights)
        votes = np.zeros((X_arr.shape[0], self.classes_.shape[0]))
        rows = np.repeat(np.arange(X_arr.shape[0]), k)
        np.add.at(votes, (rows, self.y_train_[idx].ravel()), w.ravel())
        # argmax resolves vote ties to the smallest class index — the
        # classes_ table is sorted, so ties go to the smallest label.
        return self.classes_[np.argmax(votes, axis=1)]
