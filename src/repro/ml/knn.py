"""K-nearest-neighbours regression and classification.

KNN is the model that achieves the best accuracy in the paper
(Section VI.B): ~10 % mean percentage error for WER with input set 1
and ~4 % for PUE with input set 2.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.ml.base import ArrayLike, Regressor, as_2d_array, validate_fit_args
from repro.ml.distances import pairwise_distances


def _neighbor_weights(distances: np.ndarray, weights: str) -> np.ndarray:
    """Per-neighbour weights for a (n_queries, k) distance matrix."""
    if weights == "uniform":
        return np.ones_like(distances)
    if weights == "distance":
        # Inverse-distance weighting; exact matches dominate entirely.
        with np.errstate(divide="ignore"):
            inv = 1.0 / distances
        exact = ~np.isfinite(inv)
        if np.any(exact):
            inv[exact.any(axis=1)] = 0.0
            inv[exact] = 1.0
        return inv
    raise ConfigurationError(f"Unknown weighting scheme {weights!r}")


class KNeighborsRegressor(Regressor):
    """Brute-force KNN regressor with uniform or inverse-distance weights."""

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "distance",
        metric: str = "euclidean",
    ) -> None:
        if n_neighbors < 1:
            raise ConfigurationError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.metric = metric

    def fit(self, X: ArrayLike, y: ArrayLike) -> "KNeighborsRegressor":
        X_arr, y_arr = validate_fit_args(X, y)
        if X_arr.shape[0] < 1:
            raise DataError("KNN requires at least one training sample")
        self.X_train_ = X_arr
        self.y_train_ = y_arr
        return self

    def kneighbors(
        self, X: ArrayLike, n_neighbors: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the nearest training samples."""
        self._check_fitted("X_train_")
        k = n_neighbors if n_neighbors is not None else self.n_neighbors
        k = min(k, self.X_train_.shape[0])
        X_arr = as_2d_array(X)
        dist = pairwise_distances(X_arr, self.X_train_, metric=self.metric)
        idx = np.argsort(dist, axis=1)[:, :k]
        rows = np.arange(dist.shape[0])[:, None]
        return dist[rows, idx], idx

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("X_train_")
        dist, idx = self.kneighbors(X)
        w = _neighbor_weights(dist, self.weights)
        neighbor_targets = self.y_train_[idx]
        weight_sums = w.sum(axis=1)
        # All-zero weight rows only occur with "distance" weights when every
        # neighbour is at infinite distance, which cannot happen with finite
        # inputs; guard anyway to avoid division warnings.
        weight_sums[weight_sums == 0.0] = 1.0  # repro-lint: disable=REP004
        return (w * neighbor_targets).sum(axis=1) / weight_sums


class KNeighborsClassifier(Regressor):
    """Brute-force KNN classifier (majority / weighted vote)."""

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        metric: str = "euclidean",
    ) -> None:
        if n_neighbors < 1:
            raise ConfigurationError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.metric = metric

    def fit(self, X: ArrayLike, y: ArrayLike) -> "KNeighborsClassifier":
        X_arr = as_2d_array(X)
        y_arr = np.asarray(y)
        if X_arr.shape[0] != y_arr.shape[0]:
            raise DataError("X and y have inconsistent sample counts")
        self.classes_, encoded = np.unique(y_arr, return_inverse=True)
        self.X_train_ = X_arr
        self.y_train_ = encoded
        return self

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("X_train_")
        X_arr = as_2d_array(X)
        k = min(self.n_neighbors, self.X_train_.shape[0])
        dist = pairwise_distances(X_arr, self.X_train_, metric=self.metric)
        idx = np.argsort(dist, axis=1)[:, :k]
        rows = np.arange(dist.shape[0])[:, None]
        w = _neighbor_weights(dist[rows, idx], self.weights)
        votes = np.zeros((X_arr.shape[0], self.classes_.shape[0]))
        for class_index in range(self.classes_.shape[0]):
            votes[:, class_index] = np.where(
                self.y_train_[idx] == class_index, w, 0.0
            ).sum(axis=1)
        return self.classes_[np.argmax(votes, axis=1)]
