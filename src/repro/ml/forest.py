"""Random Decision Forest regression (RDF in the paper)."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import ArrayLike, Regressor, as_2d_array, validate_fit_args
from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor(Regressor):
    """Bagged ensemble of CART trees with per-split feature sub-sampling.

    Each tree is trained on a bootstrap resample of the data and restricted
    to a random subset of features at every split, which is what lets the
    forest cope with the paper's third input set (all 249 features, most of
    which are irrelevant) better than SVM or KNN.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, float, None] = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X: ArrayLike, y: ArrayLike) -> "RandomForestRegressor":
        X_arr, y_arr = validate_fit_args(X, y)
        rng = np.random.default_rng(self.random_state)
        n_samples = X_arr.shape[0]
        self.estimators_ = []
        self.n_features_ = X_arr.shape[1]

        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2 ** 31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X_arr[indices], y_arr[indices])
            self.estimators_.append(tree)
        return self

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("estimators_")
        X_arr = as_2d_array(X)
        predictions = np.stack([tree.predict(X_arr) for tree in self.estimators_])
        return predictions.mean(axis=0)
