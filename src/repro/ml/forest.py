"""Random Decision Forest regression (RDF in the paper).

``fit`` still grows one CART tree per bootstrap resample, but the fitted
ensemble is additionally stored as one set of concatenated flat-tree
columns (per-tree node arrays from :mod:`repro.ml.tree` with child
indices shifted by each tree's node offset), so ``predict`` traverses
every (tree, row) pair level-synchronously in a single numpy state
vector instead of looping trees in Python.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import ArrayLike, Regressor, as_2d_array, validate_fit_args
from repro.ml.tree import DecisionTreeRegressor, flat_tree_predict


class RandomForestRegressor(Regressor):
    """Bagged ensemble of CART trees with per-split feature sub-sampling.

    Each tree is trained on a bootstrap resample of the data and restricted
    to a random subset of features at every split, which is what lets the
    forest cope with the paper's third input set (all 249 features, most of
    which are irrelevant) better than SVM or KNN.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, float, None] = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X: ArrayLike, y: ArrayLike) -> "RandomForestRegressor":
        X_arr, y_arr = validate_fit_args(X, y)
        rng = np.random.default_rng(self.random_state)
        n_samples = X_arr.shape[0]
        self.estimators_ = []
        self.n_features_ = X_arr.shape[1]

        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2 ** 31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X_arr[indices], y_arr[indices])
            self.estimators_.append(tree)
        self._flatten_ensemble()
        return self

    def _flatten_ensemble(self) -> None:
        """Concatenate per-tree flat arrays; child ids become absolute."""
        node_counts = np.array([t.feature_.shape[0] for t in self.estimators_])
        self._roots_ = np.concatenate(([0], np.cumsum(node_counts)[:-1]))
        offsets = np.repeat(self._roots_, node_counts)
        self._feature_ = np.concatenate([t.feature_ for t in self.estimators_])
        self._threshold_ = np.concatenate([t.threshold_ for t in self.estimators_])
        self._value_ = np.concatenate([t.value_ for t in self.estimators_])
        left = np.concatenate([t.children_left_ for t in self.estimators_])
        right = np.concatenate([t.children_right_ for t in self.estimators_])
        # Leaves keep their -1 sentinel children (never dereferenced).
        internal = self._feature_ >= 0
        self._left_ = np.where(internal, left + offsets, -1)
        self._right_ = np.where(internal, right + offsets, -1)

    def predict(self, X: ArrayLike) -> np.ndarray:
        # Prediction needs only the concatenated flat arrays, so a forest
        # restored from the serving model registry (which persists the
        # flat ensemble but not the per-tree _Node structures) predicts
        # identically.
        self._check_fitted("_roots_")
        X_arr = as_2d_array(X, allow_empty=True)
        n_rows = X_arr.shape[0]
        n_trees = self._roots_.shape[0]
        # One flat traversal state per (tree, row) pair: entry t*n_rows + i
        # walks tree t for query row i, all advancing one level per pass.
        node_ids = np.repeat(self._roots_, n_rows)
        row_ids = np.tile(np.arange(n_rows), n_trees)
        leaf_values = flat_tree_predict(
            self._feature_, self._threshold_, self._left_, self._right_,
            self._value_, X_arr, node_ids=node_ids, row_ids=row_ids,
        )
        return leaf_values.reshape(n_trees, n_rows).mean(axis=0)
