"""Feature scaling transformers.

Distance-based models (KNN, kernel SVR) are sensitive to feature scale,
and the paper's 249 program features span many orders of magnitude
(rates per cycle vs. raw counter values), so every pipeline in
:mod:`repro.core` standardises features before fitting.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import NotFittedError
from repro.ml.base import ArrayLike, Transformer, as_2d_array


class StandardScaler(Transformer):
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but not divided,
    which keeps them from producing NaNs; they carry no information for
    any downstream model either way.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X: ArrayLike, y: Optional[ArrayLike] = None) -> "StandardScaler":
        X_arr = as_2d_array(X)
        mean = X_arr.mean(axis=0)
        self.mean_ = mean if self.with_mean else np.zeros(X_arr.shape[1])
        if self.with_std:
            std = X_arr.std(axis=0)
            # A constant column of non-representable values (e.g. 0.1) leaves
            # a roundoff-sized std (~eps * |mean|); dividing the matching
            # roundoff residual by it would turn "constant" into +/-1.  Treat
            # any std at summation-noise scale as zero variance.  numpy's
            # pairwise summation error grows ~log2(n) * eps relative to the
            # mean; the factor of 8 is safety margin, and keeping the bound
            # logarithmic (not linear) in n avoids clamping genuinely varying
            # columns in large samples.
            n = X_arr.shape[0]
            noise_floor = (
                8.0
                * (1.0 + np.log2(n))
                * np.finfo(X_arr.dtype).eps
                * np.maximum(np.abs(mean), 1.0)
            )
            std[std <= noise_floor] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X_arr.shape[1])
        return self

    def transform(self, X: ArrayLike) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise NotFittedError("StandardScaler is not fitted")
        X_arr = as_2d_array(X)
        if X_arr.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X_arr.shape[1]} features, scaler was fitted with "
                f"{self.mean_.shape[0]}"
            )
        return (X_arr - self.mean_) / self.scale_

    def inverse_transform(self, X: ArrayLike) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise NotFittedError("StandardScaler is not fitted")
        X_arr = as_2d_array(X)
        return X_arr * self.scale_ + self.mean_


class MinMaxScaler(Transformer):
    """Scale features to the ``[0, 1]`` range (constant features map to 0)."""

    def __init__(self) -> None:
        pass

    def fit(self, X: ArrayLike, y: Optional[ArrayLike] = None) -> "MinMaxScaler":
        X_arr = as_2d_array(X)
        self.min_ = X_arr.min(axis=0)
        data_range = X_arr.max(axis=0) - self.min_
        # Unlike StandardScaler's std, min/max select stored values without
        # arithmetic, so a constant column yields an exactly zero range and
        # the exact guard is sufficient.  A roundoff-scale *positive* range
        # is a real (tiny) spread and still maps cleanly into [0, 1] because
        # the numerator is bounded by the same range.
        data_range[data_range == 0.0] = 1.0  # repro-lint: disable=REP004
        self.range_ = data_range
        return self

    def transform(self, X: ArrayLike) -> np.ndarray:
        if not hasattr(self, "min_"):
            raise NotFittedError("MinMaxScaler is not fitted")
        X_arr = as_2d_array(X)
        if X_arr.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"X has {X_arr.shape[1]} features, scaler was fitted with "
                f"{self.min_.shape[0]}"
            )
        return (X_arr - self.min_) / self.range_


class ColumnLogTransformer(Transformer):
    """Apply ``log10(x + offset)`` to selected columns only.

    Rate- and time-valued program features (accesses per cycle, reuse
    time) span several orders of magnitude across workloads; feeding the
    raw values into distance-based models lets a single outlier workload
    dominate the feature space.  Log-scaling the skewed columns keeps
    every feature comparable after standardisation.
    """

    def __init__(self, columns: Iterable[int], offset: float = 1e-12) -> None:
        self.columns = list(columns)
        if offset <= 0:
            raise ValueError("offset must be positive")
        self.offset = offset

    def fit(self, X: ArrayLike, y: Optional[ArrayLike] = None) -> "ColumnLogTransformer":
        X_arr = as_2d_array(X)
        bad = [c for c in self.columns if not 0 <= c < X_arr.shape[1]]
        if bad:
            raise ValueError(f"column indices out of range: {bad}")
        return self

    def transform(self, X: ArrayLike) -> np.ndarray:
        X_arr = as_2d_array(X).copy()
        for column in self.columns:
            X_arr[:, column] = np.log10(np.maximum(X_arr[:, column], 0.0) + self.offset)
        return X_arr


class ColumnWeightTransformer(Transformer):
    """Multiply each column by a fixed weight (applied after standardisation).

    Used to emphasise the DRAM operating parameters (TREFP, VDD,
    temperature) relative to the program features, so that distance-based
    models always interpolate between samples taken at the same operating
    point — which is how the paper's leave-one-workload-out protocol is
    meant to work.
    """

    def __init__(self, weights: ArrayLike) -> None:
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.ndim != 1 or np.any(self.weights <= 0):
            raise ValueError("weights must be a 1-D array of positive values")

    def fit(self, X: ArrayLike, y: Optional[ArrayLike] = None) -> "ColumnWeightTransformer":
        X_arr = as_2d_array(X)
        if X_arr.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"X has {X_arr.shape[1]} columns but {self.weights.shape[0]} weights given"
            )
        return self

    def transform(self, X: ArrayLike) -> np.ndarray:
        X_arr = as_2d_array(X)
        if X_arr.shape[1] != self.weights.shape[0]:
            raise ValueError("column count mismatch with fitted weights")
        return X_arr * self.weights


class LogTransformer(Transformer):
    """Apply ``log10`` to strictly positive targets/features.

    DRAM error rates span five orders of magnitude across the TREFP and
    temperature sweep (Fig. 7), so models are trained on ``log10(WER)``
    and predictions are transformed back.
    """

    def __init__(self, epsilon: float = 1e-300) -> None:
        self.epsilon = epsilon

    def fit(self, X: ArrayLike, y: Optional[ArrayLike] = None) -> "LogTransformer":
        return self

    def transform(self, X: ArrayLike) -> np.ndarray:
        arr = np.asarray(X, dtype=float)
        return np.log10(np.maximum(arr, self.epsilon))

    def inverse_transform(self, X: ArrayLike) -> np.ndarray:
        arr = np.asarray(X, dtype=float)
        return np.power(10.0, arr)
