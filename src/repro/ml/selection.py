"""Feature ranking by Spearman correlation (Section VI.A, Fig. 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import DataError
from repro.ml.metrics import spearman_correlation


@dataclass(frozen=True)
class FeatureCorrelation:
    """Correlation of one feature with one target metric."""

    feature: str
    coefficient: float

    @property
    def strength(self) -> float:
        """Absolute correlation, used for ranking."""
        return abs(self.coefficient)


class SpearmanFeatureRanker:
    """Rank features by the Spearman correlation with a target metric."""

    def rank(
        self, X: np.ndarray, y: Sequence[float], feature_names: Sequence[str]
    ) -> List[FeatureCorrelation]:
        X_arr = np.asarray(X, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        if X_arr.ndim != 2:
            raise DataError("X must be a 2-D samples x features matrix")
        if X_arr.shape[1] != len(feature_names):
            raise DataError("feature_names length must match the number of columns of X")
        if X_arr.shape[0] != y_arr.shape[0]:
            raise DataError("X and y disagree on the number of samples")
        correlations = [
            FeatureCorrelation(name, spearman_correlation(X_arr[:, j], y_arr))
            for j, name in enumerate(feature_names)
        ]
        return sorted(correlations, key=lambda c: c.strength, reverse=True)

    def correlation_map(
        self, X: np.ndarray, y: Sequence[float], feature_names: Sequence[str]
    ) -> Dict[str, float]:
        """Feature name -> correlation coefficient (unsorted)."""
        return {c.feature: c.coefficient for c in self.rank(X, y, feature_names)}


def select_top_features(
    correlations: Sequence[FeatureCorrelation], count: int
) -> List[str]:
    """The names of the ``count`` most strongly correlated features."""
    if count < 1:
        raise DataError("count must be >= 1")
    ranked = sorted(correlations, key=lambda c: c.strength, reverse=True)
    return [c.feature for c in ranked[:count]]
