"""Distance functions used by the KNN models."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def euclidean_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``A`` and rows of ``B``.

    Uses the expanded ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b`` form so the whole
    matrix is computed with one matrix multiply.
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    a_sq = np.sum(A * A, axis=1)[:, None]
    b_sq = np.sum(B * B, axis=1)[None, :]
    sq = a_sq + b_sq - 2.0 * (A @ B.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def manhattan_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise L1 distances between rows of ``A`` and rows of ``B``."""
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    return np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)


def chebyshev_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise L-infinity distances between rows of ``A`` and rows of ``B``."""
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    return np.abs(A[:, None, :] - B[None, :, :]).max(axis=2)


_METRICS = {
    "euclidean": euclidean_distances,
    "manhattan": manhattan_distances,
    "chebyshev": chebyshev_distances,
}


def pairwise_distances(A: np.ndarray, B: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dispatch to one of the supported distance metrics by name."""
    try:
        func = _METRICS[metric]
    except KeyError:
        raise ConfigurationError(
            f"Unknown distance metric {metric!r}; choose from {sorted(_METRICS)}"
        ) from None
    return func(A, B)
