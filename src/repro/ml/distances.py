"""Distance functions used by the KNN models.

All metrics bound their temporary memory: the Euclidean path is a
single ``(n, m)`` matrix-multiply, and the L1/L-infinity paths stream
the ``(n, m, d)`` difference broadcast in row blocks of at most
:data:`BLOCK_ELEMENTS` floats, writing into a preallocated ``(n, m)``
output — block size only changes peak memory, never the result.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

#: Peak temporary elements per block of the broadcast metrics
#: (2**24 float64 = 128 MiB for the (block, m, d) difference tensor).
BLOCK_ELEMENTS = 2 ** 24

#: Relative floor (on squared distances) below which the expanded
#: Euclidean form is indistinguishable from cancellation noise.  float64
#: accumulation over up to a few hundred feature dimensions leaves
#: errors of order ``1e-13 * (|a|^2 + |b|^2)``; any entry at or under
#: this threshold is recomputed with the direct ``|a-b|^2`` form.
_CANCELLATION_RTOL = 1e-12


def euclidean_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``A`` and rows of ``B``.

    Uses the expanded ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b`` form so the whole
    matrix is computed with one matrix multiply.  The expansion is subject
    to catastrophic cancellation — an exact match ``a == b`` can come out
    as a tiny *nonzero* squared distance (defeating the exact-match branch
    of inverse-distance weighting), and a genuinely close pair can come
    out as zero.  Every entry at or below ``_CANCELLATION_RTOL *
    (|a|^2 + |b|^2)`` is therefore recomputed with the direct difference
    form, in bounded-memory blocks: exact matches become exactly ``0.0``
    and near-matches keep their true (sub-noise) distance.
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    a_sq = np.einsum("ij,ij->i", A, A)[:, None]
    b_sq = np.einsum("ij,ij->i", B, B)[None, :]
    norm = a_sq + b_sq
    sq = A @ B.T
    sq *= -2.0
    sq += norm
    # Any negative entry is pure cancellation noise, which puts it below
    # the suspect threshold — the rescue pass recomputes it exactly, so
    # no clip-to-zero pass over the full matrix is needed.
    norm *= _CANCELLATION_RTOL
    suspect = sq <= norm
    if suspect.any():
        rows, cols = np.nonzero(suspect)
        step = max(1, BLOCK_ELEMENTS // max(1, A.shape[1]))
        for start in range(0, rows.size, step):
            r = rows[start:start + step]
            c = cols[start:start + step]
            diff = A[r] - B[c]
            sq[r, c] = np.einsum("ij,ij->i", diff, diff)
    np.sqrt(sq, out=sq)
    return sq


def _blocked_difference_reduce(
    A: np.ndarray, B: np.ndarray, reduce: Callable[..., np.ndarray]
) -> np.ndarray:
    """Apply ``reduce`` over ``|A[i] - B[j]|`` in bounded-memory row blocks."""
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    n, d = A.shape
    m = B.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    block = max(1, BLOCK_ELEMENTS // max(1, m * d))
    for start in range(0, n, block):
        stop = min(n, start + block)
        diff = np.abs(A[start:stop, None, :] - B[None, :, :])
        reduce(diff, axis=2, out=out[start:stop])
    return out


def manhattan_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise L1 distances between rows of ``A`` and rows of ``B``."""
    return _blocked_difference_reduce(A, B, np.sum)


def chebyshev_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise L-infinity distances between rows of ``A`` and rows of ``B``."""
    return _blocked_difference_reduce(A, B, np.max)


_METRICS = {
    "euclidean": euclidean_distances,
    "manhattan": manhattan_distances,
    "chebyshev": chebyshev_distances,
}


def pairwise_distances(A: np.ndarray, B: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dispatch to one of the supported distance metrics by name."""
    try:
        func = _METRICS[metric]
    except KeyError:
        raise ConfigurationError(
            f"Unknown distance metric {metric!r}; choose from {sorted(_METRICS)}"
        ) from None
    return func(A, B)
