"""Per-row reference implementations of the vectorized ML hot paths.

Mirroring ``repro.core.reference`` and ``repro.characterization.
reference``, this module keeps the pre-vectorized bodies of the
estimator prediction paths alive as *independent oracles*: the
equivalence suites (``tests/test_ml_vectorized.py``) and the CV
throughput benchmark (``benchmarks/test_ml_throughput.py``) check the
flat-array tree/forest traversals and the ``argpartition`` neighbour
search against these one-row-at-a-time implementations rather than
against themselves.

Contracts pinned by the suites:

* tree and forest predictions are **bit-identical** to walking the
  fitted ``_Node`` structures row by row (same float comparisons, same
  stored leaf means, same ``mean(axis=0)`` ensemble reduction);
* ``kneighbors`` / KNN predictions are **bit-identical** to a full
  per-row stable ``(distance, training index)`` sort over the same
  distance matrix (the oracle shares the distance kernel on purpose —
  it isolates selection/tie-break correctness; the kernel itself is
  pinned separately in the distance tests).

The oracle estimators (:class:`ReferenceKNeighborsRegressor`,
:class:`ReferenceRandomForestRegressor`) are drop-in subclasses whose
``predict`` uses the loopy path, so ``cross_val_predict_groups`` can
run the paper's leave-one-workload-out protocol through either path.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ArrayLike, as_2d_array
from repro.ml.distances import pairwise_distances
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor, _neighbor_weights
from repro.ml.tree import DecisionTreeRegressor, _Node


def reference_tree_predict(tree: DecisionTreeRegressor, X: ArrayLike) -> np.ndarray:
    """Walk the fitted node structure one query row at a time."""
    X_arr = as_2d_array(X, allow_empty=True)

    def predict_one(x: np.ndarray) -> float:
        node: _Node = tree.root_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.prediction

    return np.array([predict_one(row) for row in X_arr])


def reference_forest_predict(forest: RandomForestRegressor, X: ArrayLike) -> np.ndarray:
    """Average per-tree per-row node walks over the fitted ensemble."""
    X_arr = as_2d_array(X, allow_empty=True)
    per_tree = np.stack(
        [reference_tree_predict(tree, X_arr) for tree in forest.estimators_]
    )
    return per_tree.mean(axis=0)


def reference_kneighbors(
    model: KNeighborsRegressor, X: ArrayLike, n_neighbors: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Full stable per-row sort by ``(distance, training index)``."""
    k = n_neighbors if n_neighbors is not None else model.n_neighbors
    k = min(k, model.X_train_.shape[0])
    X_arr = as_2d_array(X, allow_empty=True)
    dist = pairwise_distances(X_arr, model.X_train_, metric=model.metric)
    train_index = np.arange(model.X_train_.shape[0])
    indices = np.empty((X_arr.shape[0], k), dtype=np.int64)
    nearest = np.empty((X_arr.shape[0], k), dtype=np.float64)
    for row in range(X_arr.shape[0]):
        order = np.lexsort((train_index, dist[row]))[:k]
        indices[row] = order
        nearest[row] = dist[row, order]
    return nearest, indices


def reference_knn_predict(model: KNeighborsRegressor, X: ArrayLike) -> np.ndarray:
    """Weighted neighbour average, one query row at a time."""
    nearest, indices = reference_kneighbors(model, X)
    predictions = np.empty(nearest.shape[0], dtype=np.float64)
    for row in range(nearest.shape[0]):
        w = _neighbor_weights(nearest[row][None, :], model.weights)[0]
        targets = model.y_train_[indices[row]]
        total = w.sum()
        if total == 0.0:  # repro-lint: disable=REP004
            total = 1.0
        predictions[row] = (w * targets).sum() / total
    return predictions


class ReferenceKNeighborsRegressor(KNeighborsRegressor):
    """Oracle KNN: identical fit, per-row full-sort predict."""

    def kneighbors(
        self, X: ArrayLike, n_neighbors: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        self._check_fitted("X_train_")
        return reference_kneighbors(self, X, n_neighbors)

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("X_train_")
        return reference_knn_predict(self, X)


class ReferenceRandomForestRegressor(RandomForestRegressor):
    """Oracle forest: identical fit, per-row node-walk predict."""

    def predict(self, X: ArrayLike) -> np.ndarray:
        self._check_fitted("estimators_")
        return reference_forest_predict(self, X)
