"""Cross-validation splitters.

The paper evaluates model accuracy with leave-one-*workload*-out
cross-validation (Fig. 3, "Validation process"): for every benchmark, the
test set is the samples of that benchmark and the training set is every
other sample.  That corresponds to a leave-one-group-out splitter where
the group label is the workload name.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.ml.base import ArrayLike, Regressor
from repro.telemetry import get_telemetry


class LeaveOneGroupOut:
    """Yield (train_indices, test_indices) pairs, one per distinct group."""

    def split(
        self, X: Sequence, groups: Sequence
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        groups_arr = np.asarray(groups)
        n_samples = len(X)
        if groups_arr.shape[0] != n_samples:
            raise DataError("groups must have one entry per sample")
        # Factorize once: fold masks are integer-code comparisons instead of
        # one full string-array comparison per group (groups are typically
        # workload names, or already integer group codes from a columnar
        # dataset).  Folds come out in sorted-group order, as before.
        unique_groups, codes = np.unique(groups_arr, return_inverse=True)
        if unique_groups.shape[0] < 2:
            raise DataError("LeaveOneGroupOut requires at least 2 distinct groups")
        indices = np.arange(n_samples)
        for code in range(unique_groups.shape[0]):
            test_mask = codes == code
            yield indices[~test_mask], indices[test_mask]

    def get_n_splits(self, groups: Sequence) -> int:
        return int(np.unique(np.asarray(groups)).shape[0])


class KFold:
    """Standard K-fold splitter with optional shuffling."""

    def __init__(
        self, n_splits: int = 5, shuffle: bool = False,
        random_state: Optional[int] = None,
    ) -> None:
        if n_splits < 2:
            raise ConfigurationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X: Sequence) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n_samples = len(X)
        if n_samples < self.n_splits:
            raise DataError(
                f"Cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size

    def get_n_splits(self) -> int:
        return self.n_splits


def cross_val_predict_groups(
    estimator: Regressor, X: ArrayLike, y: ArrayLike, groups: Sequence
) -> np.ndarray:
    """Out-of-fold predictions under leave-one-group-out CV.

    Every sample is predicted by a model that never saw any sample from the
    same group, exactly reproducing the paper's validation protocol.
    """
    telemetry = get_telemetry()
    with telemetry.span("ml.cross_validation"):
        X_arr = np.asarray(X, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        predictions = np.empty_like(y_arr)
        splitter = LeaveOneGroupOut()
        for train_idx, test_idx in splitter.split(X_arr, groups):
            with telemetry.span("ml.cv_fold"):
                model = estimator.clone()
                model.fit(X_arr[train_idx], y_arr[train_idx])
                predictions[test_idx] = model.predict(X_arr[test_idx])
                if telemetry.enabled:
                    telemetry.incr("ml.cv_folds")
        return predictions


def group_scores(
    y_true: ArrayLike,
    y_pred: ArrayLike,
    groups: Sequence,
    metric: Callable[[np.ndarray, np.ndarray], float],
) -> List[Tuple[str, float]]:
    """Apply ``metric`` per group and return ``[(group, score), ...]``."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    groups_arr = np.asarray(groups)
    results = []
    for group in np.unique(groups_arr):
        mask = groups_arr == group
        results.append((str(group), float(metric(y_true[mask], y_pred[mask]))))
    return results
