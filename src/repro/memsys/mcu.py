"""Memory Controller Unit (MCU) model.

The X-Gene2 has four MCUs, each driving one DIMM.  The MCU model counts
issued read/write commands per controller and per DIMM/rank — these
counts are the source of the "issued memory read and write commands per
cycle in different MCUs" feature group that Fig. 10 finds highly
correlated with WER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.dram.address_map import AddressMapper
from repro.dram.geometry import CellLocation, DramGeometry, RankLocation
from repro.errors import ConfigurationError


@dataclass
class McuStats:
    """Command counters of one MCU."""

    read_commands: int = 0
    write_commands: int = 0

    @property
    def total_commands(self) -> int:
        return self.read_commands + self.write_commands


class MemoryControllerUnit:
    """One memory channel: command accounting for the attached DIMM."""

    def __init__(self, index: int) -> None:
        if index < 0:
            raise ConfigurationError("MCU index must be non-negative")
        self.index = index
        self.stats = McuStats()

    def issue(self, is_write: bool) -> None:
        if is_write:
            self.stats.write_commands += 1
        else:
            self.stats.read_commands += 1

    def reset(self) -> None:
        self.stats = McuStats()


class MemoryChannelSystem:
    """All MCUs plus the address mapping onto DIMMs/ranks.

    Every DRAM access (an L2 miss or a writeback) is routed to the MCU
    owning the target DIMM and accounted per DIMM/rank, which later feeds
    both the per-MCU features and the per-rank access-rate input of the
    interference model.
    """

    def __init__(
        self,
        geometry: DramGeometry = None,
        num_mcus: int = units.NUM_MCUS,
    ) -> None:
        if num_mcus <= 0:
            raise ConfigurationError("num_mcus must be positive")
        self.geometry = geometry or DramGeometry()
        if self.geometry.num_dimms % num_mcus != 0:
            raise ConfigurationError("num_dimms must be divisible by num_mcus")
        self.num_mcus = num_mcus
        self.mcus = [MemoryControllerUnit(i) for i in range(num_mcus)]
        self.mapper = AddressMapper(self.geometry)
        self.rank_accesses: Dict[RankLocation, int] = {
            rank: 0 for rank in self.geometry.iter_ranks()
        }

    def mcu_for_dimm(self, dimm: int) -> MemoryControllerUnit:
        return self.mcus[dimm % self.num_mcus]

    def access(self, address: int, is_write: bool) -> CellLocation:
        """Route one DRAM access; returns the DRAM coordinates it hit."""
        location = self.mapper.map_address(address)
        self.mcu_for_dimm(location.dimm).issue(is_write)
        self.rank_accesses[location.rank_location] += 1
        return location

    def total_commands(self) -> int:
        return sum(mcu.stats.total_commands for mcu in self.mcus)

    def per_mcu_commands(self) -> Dict[int, McuStats]:
        return {mcu.index: mcu.stats for mcu in self.mcus}

    def reset(self) -> None:
        for mcu in self.mcus:
            mcu.reset()
        for rank in self.rank_accesses:
            self.rank_accesses[rank] = 0
