"""Memory access records emitted by instrumented workloads."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError


class AccessType(Enum):
    """Kind of memory operation."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryAccess:
    """One dynamic memory access of a workload.

    ``instruction_index`` is the position of the access in the dynamic
    instruction stream — the quantity DynamoRIO gives the paper for the
    reuse-distance computation (Eq. 4).  ``value`` is the 64-bit data
    written (for writes), used for the data-entropy estimate (Eq. 5).
    """

    address: int
    access_type: AccessType
    instruction_index: int
    value: int = 0
    thread_id: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError("address must be non-negative")
        if self.instruction_index < 0:
            raise ConfigurationError("instruction_index must be non-negative")
        if self.thread_id < 0:
            raise ConfigurationError("thread_id must be non-negative")

    @property
    def is_write(self) -> bool:
        return self.access_type is AccessType.WRITE

    @property
    def is_read(self) -> bool:
        return self.access_type is AccessType.READ

    @property
    def word_address(self) -> int:
        """Address rounded down to the 64-bit word the access touches."""
        return self.address & ~0x7
