"""Memory-hierarchy substrate: caches, memory controllers, trace simulation."""

from repro.memsys.access import AccessType, MemoryAccess
from repro.memsys.cache import (
    CacheConfig,
    CacheStats,
    SetAssociativeCache,
    xgene2_l1_config,
    xgene2_l2_config,
)
from repro.memsys.hierarchy import HierarchyStats, MemoryHierarchy
from repro.memsys.mcu import MemoryChannelSystem, MemoryControllerUnit, McuStats

__all__ = [
    "AccessType",
    "MemoryAccess",
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "xgene2_l1_config",
    "xgene2_l2_config",
    "HierarchyStats",
    "MemoryHierarchy",
    "MemoryChannelSystem",
    "MemoryControllerUnit",
    "McuStats",
]
