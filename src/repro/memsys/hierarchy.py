"""Cache hierarchy + memory channel simulation of an access trace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.dram.geometry import DramGeometry, RankLocation
from repro.errors import ConfigurationError
from repro.memsys.access import MemoryAccess
from repro.memsys.cache import (
    CacheConfig,
    SetAssociativeCache,
    xgene2_l1_config,
    xgene2_l2_config,
)
from repro.memsys.mcu import MemoryChannelSystem


@dataclass
class HierarchyStats:
    """Aggregate statistics of simulating one workload trace."""

    total_accesses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0
    l1_accesses: int = 0
    l1_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    writebacks: int = 0
    per_mcu_reads: Dict[int, int] = field(default_factory=dict)
    per_mcu_writes: Dict[int, int] = field(default_factory=dict)
    per_rank_accesses: Dict[RankLocation, int] = field(default_factory=dict)

    @property
    def dram_accesses(self) -> int:
        return self.dram_reads + self.dram_writes

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def dram_access_fraction(self) -> float:
        """Fraction of program memory accesses that reach DRAM."""
        return self.dram_accesses / self.total_accesses if self.total_accesses else 0.0


class MemoryHierarchy:
    """Two-level cache hierarchy in front of the MCUs.

    Every workload access is filtered through a private L1 (per thread)
    and a shared L2; L2 misses and dirty writebacks become DRAM commands
    routed through :class:`MemoryChannelSystem`.
    """

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        l1_config: Optional[CacheConfig] = None,
        l2_config: Optional[CacheConfig] = None,
        num_threads: int = 1,
    ) -> None:
        if num_threads <= 0:
            raise ConfigurationError("num_threads must be positive")
        self.geometry = geometry or DramGeometry()
        self.num_threads = num_threads
        self._l1_config = l1_config or xgene2_l1_config()
        self._l2_config = l2_config or xgene2_l2_config()
        self.l1_caches = [
            SetAssociativeCache(self._l1_config, name=f"L1-{t}") for t in range(num_threads)
        ]
        self.l2_cache = SetAssociativeCache(self._l2_config, name="L2")
        self.channels = MemoryChannelSystem(self.geometry)

    def simulate(self, trace: Iterable[MemoryAccess]) -> HierarchyStats:
        """Run the whole trace through the hierarchy and collect statistics."""
        stats = HierarchyStats()
        for access in trace:
            stats.total_accesses += 1
            if access.is_write:
                stats.write_accesses += 1
            else:
                stats.read_accesses += 1

            l1 = self.l1_caches[access.thread_id % self.num_threads]
            stats.l1_accesses += 1
            if l1.access(access.address, access.is_write):
                continue
            stats.l1_misses += 1

            stats.l2_accesses += 1
            writebacks_before = self.l2_cache.stats.writebacks
            if self.l2_cache.access(access.address, access.is_write):
                continue
            stats.l2_misses += 1

            # L2 miss: fetch the line from DRAM (a read command), and account
            # a write command for the dirty line this miss may have evicted.
            self.channels.access(access.address, is_write=False)
            stats.dram_reads += 1
            new_writebacks = self.l2_cache.stats.writebacks - writebacks_before
            if new_writebacks > 0 or (access.is_write and not self._l2_config.write_back):
                self.channels.access(access.address, is_write=True)
                stats.dram_writes += 1
                stats.writebacks += new_writebacks

        for index, mcu_stats in self.channels.per_mcu_commands().items():
            stats.per_mcu_reads[index] = mcu_stats.read_commands
            stats.per_mcu_writes[index] = mcu_stats.write_commands
        stats.per_rank_accesses = dict(self.channels.rank_accesses)
        return stats
