"""Set-associative cache model with LRU replacement.

Used to derive the cache-related program features (L1/L2 accesses and
misses per cycle) and to decide which accesses actually reach DRAM.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass
class CacheStats:
    """Hit/miss counters of one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    write_back: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache geometry values must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ConfigurationError(
                "size_bytes must be a multiple of associativity * line_bytes"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


class SetAssociativeCache:
    """A single cache level with true-LRU replacement.

    ``access`` returns True on a hit.  Dirty evictions are counted as
    writebacks (they become DRAM write traffic in the hierarchy model).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # One LRU-ordered dict per set: line_tag -> dirty flag.
        self._sets: Dict[int, OrderedDict] = {}

    def _locate(self, address: int):
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def access(self, address: int, is_write: bool = False) -> bool:
        """Perform one access; returns True on hit, False on miss."""
        if address < 0:
            raise ConfigurationError("address must be non-negative")
        set_index, tag = self._locate(address)
        cache_set = self._sets.setdefault(set_index, OrderedDict())
        self.stats.accesses += 1

        if tag in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            if is_write and self.config.write_back:
                cache_set[tag] = True
            return True

        self.stats.misses += 1
        if len(cache_set) >= self.config.associativity:
            _victim_tag, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
        cache_set[tag] = bool(is_write and self.config.write_back)
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> int:
        """Drop every line; returns the number of dirty lines written back."""
        dirty = sum(1 for s in self._sets.values() for d in s.values() if d)
        self.stats.writebacks += dirty
        self._sets.clear()
        return dirty


def xgene2_l1_config() -> CacheConfig:
    """32 KB, 8-way L1 data cache (per core) of the X-Gene2."""
    return CacheConfig(size_bytes=32 * 1024, associativity=8)


def xgene2_l2_config() -> CacheConfig:
    """256 KB, 8-way shared L2 slice of the X-Gene2."""
    return CacheConfig(size_bytes=256 * 1024, associativity=8)
