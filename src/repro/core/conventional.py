"""Conventional workload-unaware error model (the Fig. 13 baseline).

Prior work models DRAM errors with a *constant* rate measured by running
a data-pattern micro-benchmark (typically a random pattern) on the
device at each operating point.  The model ignores what the workload
does, so its estimate for a real application is off by whatever factor
separates the application's WER from the micro-benchmark's — the paper
measures a 2.9x average error versus < 10.5 % for the workload-aware
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import ErrorDataset
from repro.dram.operating import OperatingPoint
from repro.errors import DataError, NotFittedError
from repro.ml.metrics import mean_percentage_error, prediction_ratio


def _op_key(op: OperatingPoint) -> Tuple[float, float, float]:
    return (round(op.trefp_s, 6), round(op.vdd_v, 4), round(op.temperature_c, 2))


@dataclass
class ConventionalErrorModel:
    """Constant-rate model calibrated with a data-pattern micro-benchmark."""

    reference_workload: str = "data-pattern-random"
    _rates: Dict[Tuple[float, float, float], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def fit(self, dataset: ErrorDataset) -> "ConventionalErrorModel":
        """Learn the per-operating-point constant rate from the micro-benchmark."""
        grouped: Dict[Tuple[float, float, float], list] = {}
        for sample in dataset:
            if sample.workload != self.reference_workload:
                continue
            grouped.setdefault(_op_key(sample.operating_point), []).append(sample.target)
        if not grouped:
            raise DataError(
                "dataset has no samples of the reference micro-benchmark "
                f"{self.reference_workload!r}"
            )
        self._rates = {key: float(np.mean(values)) for key, values in grouped.items()}
        return self

    # ------------------------------------------------------------------
    def predict(self, op: OperatingPoint, workload: str = "") -> float:
        """The constant rate for an operating point — the workload is ignored."""
        if not self._rates:
            raise NotFittedError("ConventionalErrorModel must be fitted first")
        key = _op_key(op)
        if key in self._rates:
            return self._rates[key]
        # Fall back to the closest characterized operating point.
        closest = min(
            self._rates,
            key=lambda k: abs(k[0] - key[0]) + abs(k[2] - key[2]) * 0.01,
        )
        return self._rates[closest]

    # ------------------------------------------------------------------
    def evaluate(self, dataset: ErrorDataset) -> Dict[str, float]:
        """Score the constant-rate model against real-workload measurements.

        Returns the mean percentage error and the multiplicative estimation
        factor (the "2.9x" of Fig. 13) over every sample that does not
        belong to the reference micro-benchmark.
        """
        targets = []
        predictions = []
        for sample in dataset:
            if sample.workload == self.reference_workload:
                continue
            targets.append(sample.target)
            predictions.append(self.predict(sample.operating_point, sample.workload))
        if not targets:
            raise DataError("dataset has no real-workload samples to evaluate against")
        targets_arr = np.asarray(targets)
        predictions_arr = np.asarray(predictions)
        positive = targets_arr > 0
        ratio = (
            prediction_ratio(targets_arr[positive], predictions_arr[positive])
            if np.any(positive)
            else float("nan")
        )
        return {
            "mean_percentage_error": mean_percentage_error(targets_arr, predictions_arr),
            "estimation_factor": ratio,
            "num_samples": float(targets_arr.shape[0]),
        }
