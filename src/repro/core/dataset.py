"""Dataset assembly: campaign measurements + profiles -> model training data.

This is the "Build data set" step of Fig. 3: every characterization
measurement is joined with the program features of the workload that
produced it.  Two dataset flavours exist:

* :func:`build_wer_dataset` — one row per (workload, operating point,
  rank), target = the per-rank WER;
* :func:`build_pue_dataset` — one row per (workload, refresh period) of
  the 70 C study, target = the measured PUE.

Both builders are columnar: the campaign's
:class:`~repro.characterization.metrics.WerColumnStore` columns stream
straight into a :class:`ColumnarDataset` (operating-point matrix, target
vector and dictionary-encoded group/rank codes) and the program-feature
join is one fancy-indexing pass over a per-workload feature table — no
per-row :class:`Sample` objects are built unless a caller iterates the
dataset.  The original per-sample implementation survives in
``repro.core.reference`` as the independent equivalence reference; the
columnar path must produce bit-identical ``(X, y, groups)`` matrices
(pinned by ``tests/test_columnar_dataset.py`` and
``benchmarks/test_dataset_throughput.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.characterization.campaign import CampaignResult
from repro.core.features import FeatureSet
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import DataError
from repro.profiling.profile import WorkloadProfile
from repro.profiling.profiler import profile_workload
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class Sample:
    """One labelled training sample."""

    workload: str
    operating_point: OperatingPoint
    target: float
    program_features: Dict[str, float]
    rank: Optional[RankLocation] = None

    def input_row(self, feature_set: FeatureSet) -> np.ndarray:
        return feature_set.build_row(self.operating_point, self.program_features)


class ColumnarDataset:
    """Columnar training data: feature columns, target vector, group codes.

    Rows live in parallel numpy columns — workloads and ranks are
    dictionary-encoded against small code tables, the operating point is
    a ``(n, 3)`` float matrix and the target a float vector.
    :meth:`matrices` assembles ``(X, y, groups)`` with one vectorized
    profile-feature join instead of one Python row per sample.
    """

    def __init__(
        self,
        workloads: Sequence[str],
        workload_codes: np.ndarray,
        operating_columns: np.ndarray,
        targets: np.ndarray,
        features_by_workload: Mapping[str, Mapping[str, float]],
        ranks: Sequence[RankLocation] = (),
        rank_codes: Optional[np.ndarray] = None,
    ) -> None:
        self.workloads = list(workloads)
        self.workload_codes = np.asarray(workload_codes, dtype=np.int64)
        self.operating_columns = np.asarray(operating_columns, dtype=np.float64)
        self.targets = np.asarray(targets, dtype=np.float64)
        self.features_by_workload = dict(features_by_workload)
        self.ranks = list(ranks)
        self.rank_codes = (
            np.asarray(rank_codes, dtype=np.int64)
            if rank_codes is not None
            else np.full(len(self.targets), -1, dtype=np.int64)
        )
        n = len(self.targets)
        if (
            len(self.workload_codes) != n
            or len(self.rank_codes) != n
            or self.operating_columns.shape != (n, 3)
        ):
            raise DataError("columnar dataset columns must have one entry per row")

    def __len__(self) -> int:
        return len(self.targets)

    # ------------------------------------------------------------------
    def matrices(self, feature_set: FeatureSet) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(X, y, groups)`` via one fancy-indexed profile join."""
        if not len(self):
            raise DataError("dataset is empty")
        program = feature_set.program_matrix(self.workloads, self.features_by_workload)
        X = np.concatenate(
            [self.operating_columns, program[self.workload_codes]], axis=1
        )
        y = self.targets.copy()
        groups = np.asarray(self.workloads)[self.workload_codes]
        return X, y, groups

    def subset(self, mask: np.ndarray) -> "ColumnarDataset":
        """Row subset sharing the code tables (no per-row objects)."""
        return ColumnarDataset(
            workloads=self.workloads,
            workload_codes=self.workload_codes[mask],
            operating_columns=self.operating_columns[mask],
            targets=self.targets[mask],
            features_by_workload=self.features_by_workload,
            ranks=self.ranks,
            rank_codes=self.rank_codes[mask],
        )

    # ------------------------------------------------------------------
    def workloads_present(self) -> List[str]:
        return sorted(
            self.workloads[code] for code in np.unique(self.workload_codes).tolist()
        )

    def ranks_present(self) -> List[RankLocation]:
        codes = np.unique(self.rank_codes)
        return sorted(self.ranks[code] for code in codes[codes >= 0].tolist())

    def targets_by_workload(self) -> Dict[str, List[float]]:
        """Targets grouped by workload, keys in first-appearance order."""
        codes = self.workload_codes
        _, first = np.unique(codes, return_index=True)
        return {
            self.workloads[code]: self.targets[codes == code].tolist()
            for code in codes[np.sort(first)].tolist()
        }

    def materialize_samples(self) -> List[Sample]:
        """Build the per-row :class:`Sample` view (only when iterated)."""
        names = self.workloads
        ranks = self.ranks
        features = self.features_by_workload
        return [
            Sample(
                workload=names[wcode],
                operating_point=OperatingPoint(
                    trefp_s=trefp, vdd_v=vdd, temperature_c=temperature
                ),
                target=target,
                program_features=features[names[wcode]],
                rank=ranks[rcode] if rcode >= 0 else None,
            )
            for wcode, (trefp, vdd, temperature), target, rcode in zip(
                self.workload_codes.tolist(), self.operating_columns.tolist(),
                self.targets.tolist(), self.rank_codes.tolist(),
            )
        ]


class ErrorDataset:
    """A set of labelled samples with matrix/group accessors.

    Two interchangeable backings: a plain :class:`Sample` list (hand-built
    datasets, and the reference path for the equivalence pins) or a
    :class:`ColumnarDataset` (what the campaign builders produce —
    matrices, rank filters and group reductions run as vector operations
    and ``Sample`` objects are materialized lazily only if a caller
    iterates).  Mutating via :meth:`add` drops the columnar backing;
    appending directly to a materialized ``samples`` list is detected by
    the same length heuristic ``CampaignResult`` uses.
    """

    def __init__(
        self,
        samples: Optional[List[Sample]] = None,
        columns: Optional[ColumnarDataset] = None,
    ) -> None:
        if samples is not None and columns is not None:
            raise DataError("pass either samples or columns, not both")
        self._columns = columns
        self._samples: Optional[List[Sample]] = (
            samples if samples is not None else (None if columns is not None else [])
        )

    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[Sample]:
        if self._samples is None:
            self._samples = self._columns.materialize_samples()
        return self._samples

    def _active_columns(self) -> Optional[ColumnarDataset]:
        """The columnar backing, unless sample-list mutation outdated it."""
        if self._columns is None:
            return None
        if self._samples is not None and len(self._samples) != len(self._columns):
            return None
        return self._columns

    def columns(self) -> Optional[ColumnarDataset]:
        """Columnar backing for callers that want raw columns (may be None)."""
        return self._active_columns()

    def __len__(self) -> int:
        if self._samples is not None:
            return len(self._samples)
        return len(self._columns)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples)

    def add(self, sample: Sample) -> None:
        self.samples.append(sample)
        self._columns = None

    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        columns = self._active_columns()
        if columns is not None:
            return columns.workloads_present()
        return sorted({sample.workload for sample in self.samples})

    def ranks(self) -> List[RankLocation]:
        """Distinct rank locations, sorted.

        Raises :class:`DataError` when no sample carries a rank — a
        PUE-only (or empty) dataset has no per-rank structure, and
        silently returning ``[]`` used to make per-rank training loops
        vanish without a trace.
        """
        columns = self._active_columns()
        if columns is not None:
            found = columns.ranks_present()
        else:
            found = sorted({s.rank for s in self.samples if s.rank is not None})
        if not found:
            raise DataError(
                "dataset contains no rank-annotated samples "
                "(PUE datasets are rank-less)"
            )
        return found

    def filter_rank(self, rank: RankLocation) -> "ErrorDataset":
        """Samples belonging to one DIMM/rank (per-module models)."""
        columns = self._active_columns()
        if columns is not None:
            if rank in columns.ranks:
                mask = columns.rank_codes == columns.ranks.index(rank)
            else:
                mask = np.zeros(len(columns), dtype=bool)
            if not mask.any():
                raise DataError(f"no samples for rank {rank.label}")
            return ErrorDataset(columns=columns.subset(mask))
        subset = [s for s in self.samples if s.rank == rank]
        if not subset:
            raise DataError(f"no samples for rank {rank.label}")
        return ErrorDataset(samples=subset)

    def matrices(self, feature_set: FeatureSet) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (X, y, groups) where groups are workload names."""
        columns = self._active_columns()
        if columns is not None:
            return columns.matrices(feature_set)
        if not self.samples:
            raise DataError("dataset is empty")
        X = np.stack([sample.input_row(feature_set) for sample in self.samples])
        y = np.array([sample.target for sample in self.samples], dtype=float)
        groups = np.array([sample.workload for sample in self.samples])
        return X, y, groups

    def targets_by_workload(self) -> Dict[str, List[float]]:
        columns = self._active_columns()
        if columns is not None:
            return columns.targets_by_workload()
        result: Dict[str, List[float]] = {}
        for sample in self.samples:
            result.setdefault(sample.workload, []).append(sample.target)
        return result


def _profiles_for(
    workloads: Sequence[str], profiles: Optional[Dict[str, WorkloadProfile]]
) -> Dict[str, WorkloadProfile]:
    if profiles is not None:
        missing = [w for w in workloads if w not in profiles]
        if missing:
            raise DataError(f"profiles missing for workloads: {missing}")
        return profiles
    return {workload: profile_workload(workload) for workload in workloads}


def build_wer_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
) -> ErrorDataset:
    """Join per-rank WER measurements with program features (columnar).

    The campaign's ``WerColumnStore`` columns become the dataset columns
    directly — codes, operating points and targets are shared or copied
    array-wise, and no ``WerMeasurement``/``Sample`` objects are built.
    """
    telemetry = get_telemetry()
    with telemetry.span("dataset.build_wer"):
        store = campaign.wer_columns()
        if not len(store):
            raise DataError("campaign contains no WER measurements")
        names = store.workloads
        resolved = _profiles_for(sorted(names), profiles)
        rows = store.rows
        columns = ColumnarDataset(
            workloads=names,
            workload_codes=rows["workload"],
            operating_columns=np.column_stack(
                (rows["trefp_s"], rows["vdd_v"], rows["temperature_c"])
            ),
            targets=np.array(rows["wer"]),
            features_by_workload={name: resolved[name].features for name in names},
            ranks=store.ranks,
            rank_codes=rows["rank"],
        )
        if telemetry.enabled:
            telemetry.incr("dataset.wer_rows", len(columns))
            telemetry.observe_array("dataset.wer_targets", columns.targets)
        return ErrorDataset(columns=columns)


def build_pue_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
    vdd_v: float = 1.428,
) -> ErrorDataset:
    """Join the 70 C UE study with program features (target = PUE)."""
    telemetry = get_telemetry()
    with telemetry.span("dataset.build_pue"):
        summaries = campaign.pue_summaries
        if not summaries:
            raise DataError("campaign contains no UE observations")
        names: List[str] = []
        codes_by_name: Dict[str, int] = {}
        workload_codes = np.empty(len(summaries), dtype=np.int64)
        operating = np.empty((len(summaries), 3), dtype=np.float64)
        targets = np.empty(len(summaries), dtype=np.float64)
        for i, summary in enumerate(summaries):
            code = codes_by_name.get(summary.workload)
            if code is None:
                code = codes_by_name[summary.workload] = len(names)
                names.append(summary.workload)
            workload_codes[i] = code
            operating[i] = (summary.trefp_s, vdd_v, summary.temperature_c)
            targets[i] = summary.pue
        resolved = _profiles_for(sorted(names), profiles)
        columns = ColumnarDataset(
            workloads=names,
            workload_codes=workload_codes,
            operating_columns=operating,
            targets=targets,
            features_by_workload={name: resolved[name].features for name in names},
        )
        if telemetry.enabled:
            telemetry.incr("dataset.pue_rows", len(columns))
            telemetry.observe_array("dataset.pue_targets", columns.targets)
        return ErrorDataset(columns=columns)
