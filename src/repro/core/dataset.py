"""Dataset assembly: campaign measurements + profiles -> model training data.

This is the "Build data set" step of Fig. 3: every characterization
measurement is joined with the program features of the workload that
produced it.  Two dataset flavours exist:

* :class:`WerDataset` — one sample per (workload, operating point, rank),
  target = the per-rank WER;
* :class:`PueDataset` — one sample per (workload, refresh period) of the
  70 C study, target = the measured PUE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.characterization.campaign import CampaignResult
from repro.core.features import FeatureSet
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import DataError
from repro.profiling.profile import WorkloadProfile
from repro.profiling.profiler import profile_workload


@dataclass(frozen=True)
class Sample:
    """One labelled training sample."""

    workload: str
    operating_point: OperatingPoint
    target: float
    program_features: Dict[str, float]
    rank: Optional[RankLocation] = None

    def input_row(self, feature_set: FeatureSet) -> np.ndarray:
        return feature_set.build_row(self.operating_point, self.program_features)


@dataclass
class ErrorDataset:
    """A set of labelled samples with matrix/group accessors."""

    samples: List[Sample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def add(self, sample: Sample) -> None:
        self.samples.append(sample)

    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        return sorted({sample.workload for sample in self.samples})

    def ranks(self) -> List[RankLocation]:
        return sorted({s.rank for s in self.samples if s.rank is not None})

    def filter_rank(self, rank: RankLocation) -> "ErrorDataset":
        """Samples belonging to one DIMM/rank (per-module models)."""
        subset = [s for s in self.samples if s.rank == rank]
        if not subset:
            raise DataError(f"no samples for rank {rank.label}")
        return ErrorDataset(samples=subset)

    def matrices(self, feature_set: FeatureSet) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (X, y, groups) where groups are workload names."""
        if not self.samples:
            raise DataError("dataset is empty")
        X = np.stack([sample.input_row(feature_set) for sample in self.samples])
        y = np.array([sample.target for sample in self.samples], dtype=float)
        groups = np.array([sample.workload for sample in self.samples])
        return X, y, groups

    def targets_by_workload(self) -> Dict[str, List[float]]:
        result: Dict[str, List[float]] = {}
        for sample in self.samples:
            result.setdefault(sample.workload, []).append(sample.target)
        return result


def _profiles_for(
    workloads: Sequence[str], profiles: Optional[Dict[str, WorkloadProfile]]
) -> Dict[str, WorkloadProfile]:
    if profiles is not None:
        missing = [w for w in workloads if w not in profiles]
        if missing:
            raise DataError(f"profiles missing for workloads: {missing}")
        return profiles
    return {workload: profile_workload(workload) for workload in workloads}


def build_wer_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
) -> ErrorDataset:
    """Join per-rank WER measurements with program features."""
    workloads = sorted({m.workload for m in campaign.wer_measurements})
    resolved = _profiles_for(workloads, profiles)
    dataset = ErrorDataset()
    for measurement in campaign.wer_measurements:
        profile = resolved[measurement.workload]
        op = OperatingPoint(
            trefp_s=measurement.trefp_s,
            vdd_v=measurement.vdd_v,
            temperature_c=measurement.temperature_c,
        )
        dataset.add(
            Sample(
                workload=measurement.workload,
                operating_point=op,
                target=measurement.wer,
                program_features=profile.features,
                rank=measurement.rank,
            )
        )
    if not dataset.samples:
        raise DataError("campaign contains no WER measurements")
    return dataset


def build_pue_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
    vdd_v: float = 1.428,
) -> ErrorDataset:
    """Join the 70 C UE study with program features (target = PUE)."""
    workloads = sorted({s.workload for s in campaign.pue_summaries})
    resolved = _profiles_for(workloads, profiles)
    dataset = ErrorDataset()
    for summary in campaign.pue_summaries:
        profile = resolved[summary.workload]
        op = OperatingPoint(
            trefp_s=summary.trefp_s, vdd_v=vdd_v, temperature_c=summary.temperature_c
        )
        dataset.add(
            Sample(
                workload=summary.workload,
                operating_point=op,
                target=summary.pue,
                program_features=profile.features,
                rank=None,
            )
        )
    if not dataset.samples:
        raise DataError("campaign contains no UE observations")
    return dataset
