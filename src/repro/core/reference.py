"""Per-sample reference implementations of the dataset builders.

:func:`reference_build_wer_dataset` / :func:`reference_build_pue_dataset`
are the pre-columnar bodies of ``build_wer_dataset`` /
``build_pue_dataset``: one :class:`~repro.core.dataset.Sample` per
measurement, matrices assembled row by row.  They exist — mirroring
``repro.characterization.reference`` for the grid engine — so the
equivalence tests and the throughput benchmark check the columnar
builders against an *independent* implementation rather than against
themselves: the columnar path must stay bit-identical to these
functions' ``(X, y, groups)`` output for the same campaign.  Any change
to the dataset contract must update this reference and the pinning
suites (``tests/test_columnar_dataset.py``,
``benchmarks/test_dataset_throughput.py``) together.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.characterization.campaign import CampaignResult
from repro.core.dataset import ErrorDataset, Sample, _profiles_for
from repro.dram.operating import OperatingPoint
from repro.errors import DataError
from repro.profiling.profile import WorkloadProfile


def reference_build_wer_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
) -> ErrorDataset:
    """Join per-rank WER measurements with program features, sample by sample."""
    workloads = sorted({m.workload for m in campaign.wer_measurements})
    resolved = _profiles_for(workloads, profiles)
    dataset = ErrorDataset()
    for measurement in campaign.wer_measurements:
        profile = resolved[measurement.workload]
        op = OperatingPoint(
            trefp_s=measurement.trefp_s,
            vdd_v=measurement.vdd_v,
            temperature_c=measurement.temperature_c,
        )
        dataset.add(
            Sample(
                workload=measurement.workload,
                operating_point=op,
                target=measurement.wer,
                program_features=profile.features,
                rank=measurement.rank,
            )
        )
    if not dataset.samples:
        raise DataError("campaign contains no WER measurements")
    return dataset


def reference_build_pue_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
    vdd_v: float = 1.428,
) -> ErrorDataset:
    """Join the 70 C UE study with program features, sample by sample."""
    workloads = sorted({s.workload for s in campaign.pue_summaries})
    resolved = _profiles_for(workloads, profiles)
    dataset = ErrorDataset()
    for summary in campaign.pue_summaries:
        profile = resolved[summary.workload]
        op = OperatingPoint(
            trefp_s=summary.trefp_s, vdd_v=vdd_v, temperature_c=summary.temperature_c
        )
        dataset.add(
            Sample(
                workload=summary.workload,
                operating_point=op,
                target=summary.pue,
                program_features=profile.features,
                rank=None,
            )
        )
    if not dataset.samples:
        raise DataError("campaign contains no UE observations")
    return dataset
