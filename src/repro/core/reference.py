"""Per-sample reference implementations of the dataset builders.

:func:`reference_build_wer_dataset` / :func:`reference_build_pue_dataset`
are the pre-columnar bodies of ``build_wer_dataset`` /
``build_pue_dataset``: one :class:`~repro.core.dataset.Sample` per
measurement, matrices assembled row by row.  They exist — mirroring
``repro.characterization.reference`` for the grid engine — so the
equivalence tests and the throughput benchmark check the columnar
builders against an *independent* implementation rather than against
themselves: the columnar path must stay bit-identical to these
functions' ``(X, y, groups)`` output for the same campaign.  Any change
to the dataset contract must update this reference and the pinning
suites (``tests/test_columnar_dataset.py``,
``benchmarks/test_dataset_throughput.py``) together.

:func:`reference_run_correlation_study` follows the same convention for
the Fig. 10 feature-selection study: it is the pre-vectorized body of
``run_correlation_study`` — one pass over the ``Sample`` objects per
dataset and one :func:`~repro.ml.metrics.spearman_correlation` call per
(feature, operating-point group) — pinned against the group-code path
by ``tests/test_core.py`` to a documented 1e-9 tolerance (reduction
order differs, so agreement is tolerance- rather than bit-exact).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # runtime import would be circular; see the lazy import below
    from repro.core.correlation import CorrelationStudy
    from repro.core.predictor import WorkloadAwarePredictor

from repro.characterization.campaign import CampaignResult
from repro.core.dataset import ErrorDataset, Sample, _profiles_for
from repro.dram.operating import OperatingPoint
from repro.errors import DataError
from repro.ml.metrics import spearman_correlation
from repro.profiling.profile import WorkloadProfile


def reference_build_wer_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
) -> ErrorDataset:
    """Join per-rank WER measurements with program features, sample by sample."""
    workloads = sorted({m.workload for m in campaign.wer_measurements})
    resolved = _profiles_for(workloads, profiles)
    dataset = ErrorDataset()
    for measurement in campaign.wer_measurements:
        profile = resolved[measurement.workload]
        op = OperatingPoint(
            trefp_s=measurement.trefp_s,
            vdd_v=measurement.vdd_v,
            temperature_c=measurement.temperature_c,
        )
        dataset.add(
            Sample(
                workload=measurement.workload,
                operating_point=op,
                target=measurement.wer,
                program_features=profile.features,
                rank=measurement.rank,
            )
        )
    if not dataset.samples:
        raise DataError("campaign contains no WER measurements")
    return dataset


def reference_build_pue_dataset(
    campaign: CampaignResult,
    profiles: Optional[Dict[str, WorkloadProfile]] = None,
    vdd_v: float = 1.428,
) -> ErrorDataset:
    """Join the 70 C UE study with program features, sample by sample."""
    workloads = sorted({s.workload for s in campaign.pue_summaries})
    resolved = _profiles_for(workloads, profiles)
    dataset = ErrorDataset()
    for summary in campaign.pue_summaries:
        profile = resolved[summary.workload]
        op = OperatingPoint(
            trefp_s=summary.trefp_s, vdd_v=vdd_v, temperature_c=summary.temperature_c
        )
        dataset.add(
            Sample(
                workload=summary.workload,
                operating_point=op,
                target=summary.pue,
                program_features=profile.features,
                rank=None,
            )
        )
    if not dataset.samples:
        raise DataError("campaign contains no UE observations")
    return dataset


def reference_grouped_samples(
    dataset: ErrorDataset, feature_names: Sequence[str]
) -> Dict[Tuple[float, float], Dict[str, Tuple[List[float], List[float]]]]:
    """Group samples by operating point; average targets per workload.

    Returns ``{(trefp, temp): {workload: (feature_row, [targets])}}``.
    Grouping by operating point isolates the *workload-dependent* component
    of the error rate: WER varies by orders of magnitude with TREFP and
    temperature, which would otherwise swamp the feature correlation.
    """
    groups: Dict[Tuple[float, float], Dict[str, Tuple[List[float], List[float]]]] = {}
    for sample in dataset:
        op_key = (round(sample.operating_point.trefp_s, 6),
                  round(sample.operating_point.temperature_c, 2))
        per_workload = groups.setdefault(op_key, {})
        if sample.workload not in per_workload:
            row = [sample.program_features[name] for name in feature_names]
            per_workload[sample.workload] = (row, [])
        per_workload[sample.workload][1].append(sample.target)
    return groups


def reference_grouped_spearman(
    groups: Dict[Tuple[float, float], Dict[str, Tuple[List[float], List[float]]]],
    column: int,
) -> float:
    """Spearman coefficient of one feature, averaged over operating-point groups."""
    coefficients = []
    for per_workload in groups.values():
        if len(per_workload) < 3:
            continue
        x = [row[column] for row, _targets in per_workload.values()]
        y = [float(np.mean(targets)) for _row, targets in per_workload.values()]
        coefficients.append(spearman_correlation(x, y))
    if not coefficients:
        raise DataError("not enough samples per operating point for a correlation study")
    return float(np.mean(coefficients))


def reference_run_correlation_study(
    wer_dataset: ErrorDataset,
    pue_dataset: ErrorDataset,
    feature_names: Optional[Sequence[str]] = None,
) -> "CorrelationStudy":
    """Per-sample body of ``run_correlation_study`` (one scipy call per pair)."""
    from repro.core.correlation import CorrelationStudy, FeatureCorrelationPoint
    from repro.profiling.counters import all_feature_names

    names = list(feature_names) if feature_names is not None else all_feature_names()
    wer_groups = reference_grouped_samples(wer_dataset, names)
    pue_groups = reference_grouped_samples(pue_dataset, names)

    points = []
    for column, name in enumerate(names):
        rs_wer = reference_grouped_spearman(wer_groups, column)
        rs_pue = reference_grouped_spearman(pue_groups, column)
        points.append(FeatureCorrelationPoint(feature=name, rs_wer=rs_wer, rs_pue=rs_pue))
    return CorrelationStudy(points=points)


def reference_predict_grid(
    predictor: "WorkloadAwarePredictor",
    workloads: Sequence[str],
    trefps: Sequence[float],
    temperatures: Sequence[float],
    vdds: Sequence[float],
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-point reference of ``WorkloadAwarePredictor.predict_grid``.

    One ``feature_set.build_row`` + one single-row model call per grid
    cell — the pre-batched prediction path.  Returns ``(wer, pue)``
    shaped like the grid's arrays: ``wer`` is ``(n_ranks, n_workloads,
    n_trefp, n_temperature, n_vdd)`` and ``pue`` matches the surface
    shape (or is ``None`` when the predictor has no PUE model).  The
    batched path is pinned against this function to 1e-9 relative
    tolerance (BLAS batching may differ in the last ulps).
    """
    from repro.profiling.profiler import profile_workload

    profiles = [
        w if isinstance(w, WorkloadProfile) else profile_workload(w)
        for w in workloads
    ]
    ranks = tuple(predictor._wer_models)
    shape = (len(workloads), len(trefps), len(temperatures), len(vdds))
    wer = np.empty((len(ranks),) + shape, dtype=np.float64)
    pue: Optional[np.ndarray] = (
        np.empty(shape, dtype=np.float64) if predictor._pue_model is not None else None
    )
    for i, profile in enumerate(profiles):
        for j, trefp in enumerate(trefps):
            for k, temperature in enumerate(temperatures):
                for m, vdd in enumerate(vdds):
                    op = OperatingPoint(
                        trefp_s=float(trefp), vdd_v=float(vdd),
                        temperature_c=float(temperature),
                    )
                    for r, rank in enumerate(ranks):
                        wer[r, i, j, k, m] = predictor._wer_models[rank].predict(
                            op, profile.features
                        )
                    if pue is not None:
                        value = predictor._pue_model.predict(op, profile.features)
                        pue[i, j, k, m] = min(max(value, 0.0), 1.0)
    return wer, pue
