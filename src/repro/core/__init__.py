"""The paper's contribution: the workload-aware DRAM error model."""

from repro.core.conventional import ConventionalErrorModel
from repro.core.correlation import (
    CorrelationStudy,
    FeatureCorrelationPoint,
    run_correlation_study,
)
from repro.core.dataset import (
    ColumnarDataset,
    ErrorDataset,
    Sample,
    build_pue_dataset,
    build_wer_dataset,
)
from repro.core.evaluation import (
    AccuracyEvaluator,
    PueAccuracyReport,
    WerAccuracyReport,
    best_configuration,
    leave_one_workload_out_predictions,
)
from repro.core.features import (
    INPUT_SET_1,
    INPUT_SET_2,
    INPUT_SET_3,
    INPUT_SETS,
    OPERATING_FEATURES,
    FeatureSet,
    feature_set_table,
    get_feature_set,
)
from repro.core.model import MODEL_FAMILIES, DramErrorModel, ModelConfig
from repro.core.predictor import (
    PredictionBatch,
    PredictionGrid,
    PredictionResult,
    PredictorConfig,
    WorkloadAwarePredictor,
)

__all__ = [
    "ConventionalErrorModel",
    "CorrelationStudy",
    "FeatureCorrelationPoint",
    "run_correlation_study",
    "ColumnarDataset",
    "ErrorDataset",
    "Sample",
    "build_pue_dataset",
    "build_wer_dataset",
    "AccuracyEvaluator",
    "PueAccuracyReport",
    "WerAccuracyReport",
    "best_configuration",
    "leave_one_workload_out_predictions",
    "INPUT_SET_1",
    "INPUT_SET_2",
    "INPUT_SET_3",
    "INPUT_SETS",
    "OPERATING_FEATURES",
    "FeatureSet",
    "feature_set_table",
    "get_feature_set",
    "MODEL_FAMILIES",
    "DramErrorModel",
    "ModelConfig",
    "PredictionBatch",
    "PredictionGrid",
    "PredictionResult",
    "PredictorConfig",
    "WorkloadAwarePredictor",
]
