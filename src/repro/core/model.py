"""The workload-aware DRAM error model (Eq. 1).

``M_err = M(Ftrs, Dev, TREFP, VDD, TEMP_DRAM)``: given a workload's
program features and the DRAM operating parameters, predict a DRAM error
metric (WER or PUE) for a specific device.  Three supervised-learning
back-ends are supported, matching the paper: Support Vector Machines
(SVM), K-nearest neighbours (KNN) and Random Decision Forests (RDF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.dataset import ErrorDataset
from repro.core.features import FeatureSet, get_feature_set
from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError, NotFittedError
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.scaling import ColumnLogTransformer, ColumnWeightTransformer, StandardScaler
from repro.ml.svm import SVR

#: Model families evaluated in the paper.
MODEL_FAMILIES = ("svm", "knn", "rdf")

#: Relative weight given to the operating parameters (TREFP, VDD, TEMP) over
#: the program features in distance-based models.
OPERATING_FEATURE_WEIGHT = 3.0


def _is_skewed_feature(name: str) -> bool:
    """Program features that span orders of magnitude and get log-scaled."""
    return (
        name == "treuse"
        or name.endswith("_per_cycle")
        or name in ("reuse_distance_instructions", "unique_words_touched",
                    "accesses_per_word")
        or name.startswith("perf_")
    )


def _build_estimator(family: str, random_state: int, num_inputs: int = 10):
    """Instantiate the underlying regressor for one model family."""
    if family == "knn":
        return KNeighborsRegressor(n_neighbors=3, weights="distance")
    if family == "svm":
        return SVR(kernel="rbf", C=20.0, epsilon=0.02, gamma="scale")
    if family == "rdf":
        # With a handful of inputs every split should see the operating
        # parameters; with hundreds of inputs per-split sub-sampling keeps
        # the trees decorrelated (and the fit tractable) while still giving
        # each split a reasonable chance of picking TREFP / temperature.
        large = num_inputs > 30
        return RandomForestRegressor(
            n_estimators=20 if large else 30,
            max_depth=10,
            min_samples_leaf=3,
            max_features=0.35 if large else 0.8,
            random_state=random_state,
        )
    raise ConfigurationError(
        f"unknown model family {family!r}; choose from {MODEL_FAMILIES}"
    )


@dataclass(frozen=True)
class ModelConfig:
    """Which model family and input set to use, and how to treat the target."""

    family: str = "knn"
    feature_set: str = "set1"
    #: train on log10 of the target (appropriate for WER, which spans decades)
    log_target: bool = True
    #: floor applied before the log transform and to predictions
    target_floor: float = 1e-12
    random_state: int = 2019

    def __post_init__(self) -> None:
        if self.family not in MODEL_FAMILIES:
            raise ConfigurationError(
                f"unknown model family {self.family!r}; choose from {MODEL_FAMILIES}"
            )
        if self.target_floor <= 0:
            raise ConfigurationError("target_floor must be positive")


class DramErrorModel:
    """A trainable predictor of one DRAM error metric (WER or PUE)."""

    def __init__(self, config: Optional[ModelConfig] = None) -> None:
        self.config = config or ModelConfig()
        self.feature_set: FeatureSet = get_feature_set(self.config.feature_set)
        input_names = self.feature_set.input_names
        skewed_columns = [
            index for index, name in enumerate(input_names) if _is_skewed_feature(name)
        ]
        weights = np.array([
            OPERATING_FEATURE_WEIGHT if name in ("trefp_s", "vdd_v", "temperature_c")
            else 1.0
            for name in input_names
        ])
        self._pipeline = Pipeline([
            ("log", ColumnLogTransformer(skewed_columns)),
            ("scaler", StandardScaler()),
            ("weights", ColumnWeightTransformer(weights)),
            ("model", _build_estimator(
                self.config.family, self.config.random_state, len(input_names)
            )),
        ])

    # ------------------------------------------------------------------
    def clone(self) -> "DramErrorModel":
        return DramErrorModel(self.config)

    def _encode_target(self, y: np.ndarray) -> np.ndarray:
        if not self.config.log_target:
            return y
        return np.log10(np.maximum(y, self.config.target_floor))

    def _decode_target(self, y: np.ndarray) -> np.ndarray:
        if not self.config.log_target:
            return y
        return np.power(10.0, y)

    # ------------------------------------------------------------------
    def fit_matrices(self, X: np.ndarray, y: np.ndarray) -> "DramErrorModel":
        """Fit from a pre-built input matrix (used by the evaluation loop)."""
        self._pipeline.fit(X, self._encode_target(np.asarray(y, dtype=float)))
        self.fitted_ = True
        return self

    def fit(self, dataset: ErrorDataset) -> "DramErrorModel":
        """Fit from a labelled dataset."""
        X, y, _groups = dataset.matrices(self.feature_set)
        return self.fit_matrices(X, y)

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "fitted_"):
            raise NotFittedError("DramErrorModel must be fitted before predicting")
        return self._decode_target(self._pipeline.predict(X))

    def predict_dataset(self, dataset: ErrorDataset) -> np.ndarray:
        X, _y, _groups = dataset.matrices(self.feature_set)
        return self.predict_matrix(X)

    def predict(self, op: OperatingPoint, program_features: Dict[str, float]) -> float:
        """Predict the error metric for one workload at one operating point."""
        row = self.feature_set.build_row(op, program_features)
        return float(self.predict_matrix(row.reshape(1, -1))[0])

    # ------------------------------------------------------------------
    @property
    def family(self) -> str:
        return self.config.family

    def __repr__(self) -> str:
        return (
            f"DramErrorModel(family={self.config.family!r}, "
            f"feature_set={self.config.feature_set!r}, "
            f"log_target={self.config.log_target})"
        )
