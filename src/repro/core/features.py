"""Model input features and the three input sets of Table III.

A model input row is the concatenation of the DRAM operating parameters
(``TREFP``, ``VDD``, ``TEMPDRAM``) with a subset of the 249 program
features.  The paper evaluates three such subsets:

* **Input set 1** — operating parameters + the four program features most
  correlated with DRAM errors (memory access rate, wait cycles, ``HDP``,
  ``Treuse``);
* **Input set 2** — operating parameters + memory access rate and wait
  cycles only;
* **Input set 3** — operating parameters + all 249 program features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError
from repro.profiling.counters import all_feature_names

#: Names of the operating-parameter inputs prepended to every feature set.
OPERATING_FEATURES: Tuple[str, ...] = ("trefp_s", "vdd_v", "temperature_c")


@dataclass(frozen=True)
class FeatureSet:
    """A named selection of program features used to train a model."""

    name: str
    program_features: Tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.program_features:
            raise ConfigurationError("a feature set needs at least one program feature")
        known = set(all_feature_names())
        unknown = [f for f in self.program_features if f not in known]
        if unknown:
            raise ConfigurationError(f"unknown program features: {unknown}")

    @property
    def input_names(self) -> List[str]:
        """Operating parameters followed by the program features."""
        return list(OPERATING_FEATURES) + list(self.program_features)

    @property
    def num_inputs(self) -> int:
        return len(self.input_names)

    def build_row(self, op: OperatingPoint, program_values: Dict[str, float]) -> np.ndarray:
        """One model-input row for an operating point + program feature values."""
        missing = [f for f in self.program_features if f not in program_values]
        if missing:
            raise ConfigurationError(f"missing program feature values: {missing}")
        operating = [op.trefp_s, op.vdd_v, op.temperature_c]
        program = [float(program_values[f]) for f in self.program_features]
        return np.array(operating + program, dtype=float)

    def program_matrix(
        self,
        workloads: Sequence[str],
        features_by_workload: Mapping[str, Mapping[str, float]],
    ) -> np.ndarray:
        """One program-feature row per workload, for a vectorized join.

        Row ``i`` holds ``workloads[i]``'s feature values in
        ``program_features`` order; a columnar dataset fancy-indexes this
        small table by workload code instead of building one input row
        per sample.  Missing values raise the same
        :class:`ConfigurationError` as :meth:`build_row`.
        """
        rows = []
        for workload in workloads:
            values = features_by_workload[workload]
            missing = [f for f in self.program_features if f not in values]
            if missing:
                raise ConfigurationError(f"missing program feature values: {missing}")
            rows.append([float(values[f]) for f in self.program_features])
        if not rows:
            return np.empty((0, len(self.program_features)), dtype=float)
        return np.array(rows, dtype=float)


#: Table III, input set 1: the strongly correlated features plus the new metrics.
INPUT_SET_1 = FeatureSet(
    name="set1",
    program_features=("memory_accesses_per_cycle", "wait_cycles", "hdp", "treuse"),
    description="TEMP, TREFP, VDD + memory access rate, wait cycles, HDP, Treuse",
)

#: Table III, input set 2: only the two most correlated perf-counter features.
INPUT_SET_2 = FeatureSet(
    name="set2",
    program_features=("memory_accesses_per_cycle", "wait_cycles"),
    description="TEMP, TREFP, VDD + memory access rate, wait cycles",
)

#: Table III, input set 3: every collected program feature.
INPUT_SET_3 = FeatureSet(
    name="set3",
    program_features=tuple(all_feature_names()),
    description="TEMP, TREFP, VDD + all 249 program features",
)

INPUT_SETS: Dict[str, FeatureSet] = {
    "set1": INPUT_SET_1,
    "set2": INPUT_SET_2,
    "set3": INPUT_SET_3,
}


def get_feature_set(name: str) -> FeatureSet:
    """Look up one of the Table III input sets by name (``set1``/``set2``/``set3``)."""
    try:
        return INPUT_SETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown input set {name!r}; choose from {sorted(INPUT_SETS)}"
        ) from None


def feature_set_table() -> List[Dict[str, str]]:
    """Table III as data: one row per input set."""
    return [
        {"input_set": fs.name, "parameters": ", ".join(fs.input_names[:8]) +
         (", ..." if fs.num_inputs > 8 else ""), "num_inputs": str(fs.num_inputs)}
        for fs in INPUT_SETS.values()
    ]
