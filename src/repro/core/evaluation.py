"""Accuracy evaluation with leave-one-workload-out cross-validation.

Reproduces Section VI.B: for every benchmark, a model is trained on the
samples of every *other* benchmark and tested on the held-out one; the
mean percentage error (MPE) of the estimates is then reported per
DIMM/rank (Fig. 11a-c), per application (Fig. 11d-f) and, for PUE,
averaged over applications and DIMMs (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import ErrorDataset
from repro.core.model import DramErrorModel, ModelConfig
from repro.dram.geometry import RankLocation
from repro.errors import DataError
from repro.ml.cross_validation import LeaveOneGroupOut
from repro.ml.metrics import mean_percentage_error


@dataclass
class WerAccuracyReport:
    """Fig. 11 for one (model family, input set) combination."""

    family: str
    feature_set: str
    error_by_rank: Dict[RankLocation, float] = field(default_factory=dict)
    error_by_workload: Dict[str, float] = field(default_factory=dict)

    @property
    def average_rank_error(self) -> float:
        """The "Average" bar of Fig. 11a-c."""
        if not self.error_by_rank:
            raise DataError("report has no per-rank errors")
        return float(np.mean(list(self.error_by_rank.values())))

    @property
    def average_workload_error(self) -> float:
        if not self.error_by_workload:
            raise DataError("report has no per-workload errors")
        return float(np.mean(list(self.error_by_workload.values())))

    @property
    def max_workload_error(self) -> float:
        return float(max(self.error_by_workload.values()))


@dataclass
class PueAccuracyReport:
    """Fig. 12 for one (model family, input set) combination."""

    family: str
    feature_set: str
    error_by_workload: Dict[str, float] = field(default_factory=dict)

    @property
    def average_error(self) -> float:
        if not self.error_by_workload:
            raise DataError("report has no per-workload errors")
        return float(np.mean(list(self.error_by_workload.values())))


def leave_one_workload_out_predictions(
    model: DramErrorModel, dataset: ErrorDataset
) -> np.ndarray:
    """Out-of-fold predictions where the folds are workloads (Fig. 3)."""
    X, y, groups = dataset.matrices(model.feature_set)
    predictions = np.empty_like(y)
    splitter = LeaveOneGroupOut()
    for train_idx, test_idx in splitter.split(X, groups):
        fold_model = model.clone()
        fold_model.fit_matrices(X[train_idx], y[train_idx])
        predictions[test_idx] = fold_model.predict_matrix(X[test_idx])
    return predictions


class AccuracyEvaluator:
    """Runs the full accuracy study for a WER or PUE dataset."""

    def __init__(self, pue_error_floor: float = 0.05) -> None:
        #: floor used in the PUE percentage error so workloads with PUE = 0
        #: (which a percentage cannot be computed against) are scored
        #: against a small absolute tolerance instead
        self.pue_error_floor = pue_error_floor

    # ------------------------------------------------------------------
    def evaluate_wer(
        self,
        dataset: ErrorDataset,
        family: str,
        feature_set: str,
        ranks: Optional[Sequence[RankLocation]] = None,
    ) -> WerAccuracyReport:
        """Per-rank WER models, evaluated with leave-one-workload-out CV."""
        report = WerAccuracyReport(family=family, feature_set=feature_set)
        rank_list = list(ranks) if ranks is not None else dataset.ranks()
        if not rank_list:
            raise DataError("WER dataset contains no rank information")

        workload_errors: Dict[str, List[float]] = {}
        for rank in rank_list:
            rank_dataset = dataset.filter_rank(rank)
            config = ModelConfig(family=family, feature_set=feature_set, log_target=True)
            model = DramErrorModel(config)
            _X, y, groups = rank_dataset.matrices(model.feature_set)
            predictions = leave_one_workload_out_predictions(model, rank_dataset)

            report.error_by_rank[rank] = mean_percentage_error(y, predictions)
            for workload in np.unique(groups):
                mask = groups == workload
                workload_errors.setdefault(str(workload), []).append(
                    mean_percentage_error(y[mask], predictions[mask])
                )
        report.error_by_workload = {
            workload: float(np.mean(errors)) for workload, errors in workload_errors.items()
        }
        return report

    def evaluate_pue(
        self, dataset: ErrorDataset, family: str, feature_set: str
    ) -> PueAccuracyReport:
        """PUE model (whole machine), evaluated with leave-one-workload-out CV."""
        config = ModelConfig(family=family, feature_set=feature_set, log_target=False)
        model = DramErrorModel(config)
        _X, y, groups = dataset.matrices(model.feature_set)
        predictions = np.clip(leave_one_workload_out_predictions(model, dataset), 0.0, 1.0)

        report = PueAccuracyReport(family=family, feature_set=feature_set)
        for workload in np.unique(groups):
            mask = groups == workload
            report.error_by_workload[str(workload)] = mean_percentage_error(
                y[mask], predictions[mask], floor=self.pue_error_floor
            )
        return report

    # ------------------------------------------------------------------
    def wer_study(
        self,
        dataset: ErrorDataset,
        families: Sequence[str] = ("svm", "knn", "rdf"),
        feature_sets: Sequence[str] = ("set1", "set2", "set3"),
        ranks: Optional[Sequence[RankLocation]] = None,
    ) -> Dict[str, Dict[str, WerAccuracyReport]]:
        """The full Fig. 11 grid: families x input sets."""
        return {
            family: {
                feature_set: self.evaluate_wer(dataset, family, feature_set, ranks)
                for feature_set in feature_sets
            }
            for family in families
        }

    def pue_study(
        self,
        dataset: ErrorDataset,
        families: Sequence[str] = ("svm", "knn", "rdf"),
        feature_sets: Sequence[str] = ("set1", "set2", "set3"),
    ) -> Dict[str, Dict[str, PueAccuracyReport]]:
        """The full Fig. 12 grid: families x input sets."""
        return {
            family: {
                feature_set: self.evaluate_pue(dataset, family, feature_set)
                for feature_set in feature_sets
            }
            for family in families
        }


def best_configuration(
    study: Dict[str, Dict[str, WerAccuracyReport]]
) -> WerAccuracyReport:
    """The (family, input set) pair with the lowest average per-rank error."""
    reports = [report for by_set in study.values() for report in by_set.values()]
    if not reports:
        raise DataError("empty accuracy study")
    return min(reports, key=lambda r: r.average_rank_error)
