"""End-to-end workload-aware predictor: the public entry point of the library.

This class packages what the paper releases as the "DRAM error behavioral
model": a trained (KNN-based by default) model that, given a workload's
program features and a target operating point, predicts the per-rank WER
and the probability of an uncorrectable error within milliseconds —
versus the hours or days a characterization campaign would take.

The prediction surface follows one signature convention (arrays in,
frozen result batch out):

* :meth:`WorkloadAwarePredictor.predict_batch` — paired ``workloads`` and
  ``operating_points`` sequences, one prediction per pair, assembled
  columnar-ly (one program-feature join + one ``predict_matrix`` call per
  model, zero per-row objects), returning a :class:`PredictionBatch`;
* :meth:`WorkloadAwarePredictor.predict_grid` — the cartesian
  workloads x TREFP x temperature x VDD surface through the same
  columnar core, returning a :class:`PredictionGrid`;
* :meth:`WorkloadAwarePredictor.predict` — the scalar convenience
  wrapper: a one-row batch unwrapped into a :class:`PredictionResult`.

The per-point reference implementation (one ``feature_set.build_row``
and one single-row model call per grid cell) lives in
:func:`repro.core.reference.reference_predict_grid`; the batched paths
are pinned against it to 1e-9 relative tolerance by
``tests/test_serving.py`` and ``benchmarks/test_serving_throughput.py``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import units
from repro.characterization.campaign import CampaignResult
from repro.core.dataset import build_pue_dataset, build_wer_dataset
from repro.core.model import DramErrorModel, ModelConfig
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError, NotFittedError
from repro.profiling.profile import WorkloadProfile
from repro.profiling.profiler import profile_workload
from repro.telemetry import get_telemetry

_logger = logging.getLogger("repro.core.predictor")

#: Sequence-of-workloads argument: registry names and/or profiles.
WorkloadArg = Union[str, WorkloadProfile]


@dataclass
class PredictionResult:
    """One prediction: per-rank WER, memory-wide WER, PUE and the latency."""

    workload: str
    operating_point: OperatingPoint
    wer_by_rank: Dict[RankLocation, float]
    pue: Optional[float]
    latency_s: float

    @property
    def memory_wer(self) -> float:
        values = list(self.wer_by_rank.values())
        return sum(values) / len(values)


@dataclass(frozen=True, eq=False)
class PredictionBatch:
    """Predictions for ``n`` (workload, operating point) pairs.

    ``wer`` has one row per rank and one column per pair;
    ``operating_columns`` is the ``(n, 3)`` matrix of
    ``(trefp_s, vdd_v, temperature_c)`` the predictions were made at.
    Per-pair :class:`PredictionResult` views are materialized only on
    :meth:`result` / iteration.
    """

    workloads: Tuple[str, ...]
    operating_columns: np.ndarray
    ranks: Tuple[RankLocation, ...]
    wer: np.ndarray
    pue: Optional[np.ndarray]
    latency_s: float

    def __len__(self) -> int:
        return len(self.workloads)

    @property
    def memory_wer(self) -> np.ndarray:
        """Memory-wide WER (mean over ranks), one entry per pair."""
        return self.wer.mean(axis=0)

    def result(self, index: int) -> PredictionResult:
        """Materialize one pair as a scalar :class:`PredictionResult`."""
        trefp, vdd, temperature = self.operating_columns[index]
        return PredictionResult(
            workload=self.workloads[index],
            operating_point=OperatingPoint(
                trefp_s=float(trefp), vdd_v=float(vdd),
                temperature_c=float(temperature),
            ),
            wer_by_rank={
                rank: float(self.wer[r, index]) for r, rank in enumerate(self.ranks)
            },
            pue=float(self.pue[index]) if self.pue is not None else None,
            latency_s=self.latency_s,
        )

    def __iter__(self) -> Iterator[PredictionResult]:
        return (self.result(index) for index in range(len(self)))


@dataclass(frozen=True, eq=False)
class PredictionGrid:
    """A whole workloads x TREFP x temperature x VDD prediction surface.

    ``wer`` is shaped ``(n_ranks, n_workloads, n_trefp, n_temperature,
    n_vdd)`` and ``pue`` (when the predictor has a PUE model)
    ``(n_workloads, n_trefp, n_temperature, n_vdd)``; axis order matches
    the argument order of :meth:`WorkloadAwarePredictor.predict_grid`.
    """

    workloads: Tuple[str, ...]
    trefp_s: Tuple[float, ...]
    temperature_c: Tuple[float, ...]
    vdd_v: Tuple[float, ...]
    ranks: Tuple[RankLocation, ...]
    wer: np.ndarray
    pue: Optional[np.ndarray]
    latency_s: float

    @property
    def shape(self) -> Tuple[int, int, int, int]:
        """(workloads, TREFP, temperature, VDD) cell counts."""
        return (len(self.workloads), len(self.trefp_s),
                len(self.temperature_c), len(self.vdd_v))

    @property
    def num_predictions(self) -> int:
        n_workloads, n_trefp, n_temperature, n_vdd = self.shape
        return n_workloads * n_trefp * n_temperature * n_vdd

    @property
    def memory_wer(self) -> np.ndarray:
        """Memory-wide WER surface (mean over ranks)."""
        return self.wer.mean(axis=0)

    def wer_for(self, rank: RankLocation) -> np.ndarray:
        """One rank's WER surface."""
        try:
            return self.wer[self.ranks.index(rank)]
        except ValueError:
            raise ConfigurationError(
                f"grid holds no predictions for rank {rank.label}"
            ) from None


@dataclass
class PredictorConfig:
    """Model choices for the end-to-end predictor."""

    wer_family: str = "knn"
    wer_feature_set: str = "set1"
    pue_family: str = "knn"
    pue_feature_set: str = "set2"


def _resolve_deprecated_op(
    operating_point: Optional[OperatingPoint],
    op: Optional[OperatingPoint],
    method: str,
) -> OperatingPoint:
    """One-release shim: accept the old ``op=`` keyword with a warning."""
    if op is not None:
        if operating_point is not None:
            raise ConfigurationError(
                f"{method}() got both operating_point= and the deprecated op=;"
                " pass operating_point only"
            )
        _logger.warning(
            "%s(op=...) is deprecated and will be removed in the next release;"
            " use %s(operating_point=...)", method, method,
        )
        return op
    if operating_point is None:
        raise ConfigurationError(f"{method}() requires an operating_point")
    return operating_point


class WorkloadAwarePredictor:
    """Train once on a campaign, then predict any workload in milliseconds."""

    def __init__(self, config: Optional[PredictorConfig] = None) -> None:
        self.config = config or PredictorConfig()
        self._wer_models: Dict[RankLocation, DramErrorModel] = {}
        self._pue_model: Optional[DramErrorModel] = None

    # ------------------------------------------------------------------
    def fit(self, campaign: CampaignResult,
            profiles: Optional[Dict[str, WorkloadProfile]] = None) -> "WorkloadAwarePredictor":
        """Train the per-rank WER models and the PUE model from a campaign."""
        wer_dataset = build_wer_dataset(campaign, profiles)
        for rank in wer_dataset.ranks():
            model = DramErrorModel(ModelConfig(
                family=self.config.wer_family,
                feature_set=self.config.wer_feature_set,
                log_target=True,
            ))
            model.fit(wer_dataset.filter_rank(rank))
            self._wer_models[rank] = model

        if campaign.pue_summaries:
            pue_dataset = build_pue_dataset(campaign, profiles)
            self._pue_model = DramErrorModel(ModelConfig(
                family=self.config.pue_family,
                feature_set=self.config.pue_feature_set,
                log_target=False,
            ))
            self._pue_model.fit(pue_dataset)
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._wer_models)

    @property
    def ranks(self) -> Tuple[RankLocation, ...]:
        """The ranks the fitted predictor holds per-rank WER models for."""
        return tuple(self._wer_models)

    # ------------------------------------------------------------------
    def _resolve_profile(self, workload: WorkloadArg) -> WorkloadProfile:
        if isinstance(workload, WorkloadProfile):
            return workload
        if isinstance(workload, str):
            return profile_workload(workload)
        raise ConfigurationError(
            "workload must be a registry name or a WorkloadProfile instance"
        )

    def _encode_workloads(
        self, workloads: Sequence[WorkloadArg]
    ) -> Tuple[List[str], np.ndarray, Dict[str, Mapping[str, float]]]:
        """Dictionary-encode a workload sequence against resolved profiles."""
        names: List[str] = []
        codes_by_name: Dict[str, int] = {}
        features: Dict[str, Mapping[str, float]] = {}
        codes = np.empty(len(workloads), dtype=np.int64)
        for i, workload in enumerate(workloads):
            name = workload.workload if isinstance(workload, WorkloadProfile) else workload
            if not isinstance(name, str):
                raise ConfigurationError(
                    "workload must be a registry name or a WorkloadProfile instance"
                )
            code = codes_by_name.get(name)
            if code is None:
                profile = self._resolve_profile(workload)
                code = codes_by_name[name] = len(names)
                names.append(name)
                features[name] = profile.features
            codes[i] = code
        return names, codes, features

    def _predict_columnar(
        self,
        names: Sequence[str],
        codes: np.ndarray,
        features: Mapping[str, Mapping[str, float]],
        operating_columns: np.ndarray,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """The batched core: one feature join + one matrix call per model."""
        if not self.is_fitted:
            raise NotFittedError("WorkloadAwarePredictor must be fitted first")
        wer_model = next(iter(self._wer_models.values()))
        program = wer_model.feature_set.program_matrix(names, features)
        X = np.concatenate([operating_columns, program[codes]], axis=1)
        wer = np.stack([
            model.predict_matrix(X) for model in self._wer_models.values()
        ])

        pue: Optional[np.ndarray] = None
        if self._pue_model is not None:
            pue_program = self._pue_model.feature_set.program_matrix(names, features)
            X_pue = np.concatenate([operating_columns, pue_program[codes]], axis=1)
            pue = np.clip(self._pue_model.predict_matrix(X_pue), 0.0, 1.0)
        return wer, pue

    # ------------------------------------------------------------------
    def predict_batch(
        self,
        workloads: Union[WorkloadArg, Sequence[WorkloadArg]],
        operating_points: Union[OperatingPoint, Sequence[OperatingPoint]],
    ) -> PredictionBatch:
        """Predict ``n`` paired (workload, operating point) combinations.

        ``workloads`` and ``operating_points`` are matched elementwise; a
        scalar on either side broadcasts against the other.  The whole
        batch is answered with one program-feature join and one
        ``predict_matrix`` call per fitted model — no per-row objects.
        """
        if isinstance(workloads, (str, WorkloadProfile)):
            workloads = [workloads]
        if isinstance(operating_points, OperatingPoint):
            operating_points = [operating_points]
        workloads = list(workloads)
        points = list(operating_points)
        if len(workloads) == 1 and len(points) > 1:
            workloads = workloads * len(points)
        if len(points) == 1 and len(workloads) > 1:
            points = points * len(workloads)
        if len(workloads) != len(points):
            raise ConfigurationError(
                f"workloads ({len(workloads)}) and operating_points "
                f"({len(points)}) must pair up elementwise"
            )
        if not workloads:
            raise ConfigurationError("predict_batch() requires at least one pair")

        telemetry = get_telemetry()
        start = time.perf_counter()
        with telemetry.span("predictor.predict_batch"):
            names, codes, features = self._encode_workloads(workloads)
            operating_columns = np.array(
                [[p.trefp_s, p.vdd_v, p.temperature_c] for p in points],
                dtype=np.float64,
            )
            wer, pue = self._predict_columnar(names, codes, features, operating_columns)
            if telemetry.enabled:
                telemetry.incr("predictor.predictions", len(workloads))
        latency = time.perf_counter() - start

        return PredictionBatch(
            workloads=tuple(
                w.workload if isinstance(w, WorkloadProfile) else w for w in workloads
            ),
            operating_columns=operating_columns,
            ranks=self.ranks,
            wer=wer,
            pue=pue,
            latency_s=latency,
        )

    def predict_grid(
        self,
        workloads: Union[WorkloadArg, Sequence[WorkloadArg]],
        trefps: Sequence[float],
        temperatures: Sequence[float],
        vdds: Sequence[float] = (units.MIN_VDD_V,),
    ) -> PredictionGrid:
        """Predict the whole workloads x TREFP x temperature x VDD surface.

        The cartesian grid is assembled columnar-ly (repeat/tile of the
        axis vectors plus one fancy-indexed program-feature join) and
        answered with one ``predict_matrix`` call per fitted model; the
        per-point reference is
        :func:`repro.core.reference.reference_predict_grid`.
        """
        if isinstance(workloads, (str, WorkloadProfile)):
            workloads = [workloads]
        workloads = list(workloads)
        trefp_axis = [float(v) for v in trefps]
        temperature_axis = [float(v) for v in temperatures]
        vdd_axis = [float(v) for v in vdds]
        if not (workloads and trefp_axis and temperature_axis and vdd_axis):
            raise ConfigurationError("predict_grid() requires non-empty axes")
        # Each operating-point constraint is per-field, so validating one
        # axis at a time (others at their valid defaults) covers the grid.
        for trefp in trefp_axis:
            OperatingPoint(trefp_s=trefp)
        for vdd in vdd_axis:
            OperatingPoint(vdd_v=vdd)
        for temperature in temperature_axis:
            OperatingPoint(temperature_c=temperature)

        telemetry = get_telemetry()
        start = time.perf_counter()
        with telemetry.span("predictor.predict_grid"):
            names, workload_codes, features = self._encode_workloads(workloads)
            n_workloads = len(workloads)
            n_trefp = len(trefp_axis)
            n_temperature = len(temperature_axis)
            n_vdd = len(vdd_axis)
            cells_per_workload = n_trefp * n_temperature * n_vdd
            codes = np.repeat(workload_codes, cells_per_workload)
            trefp_col = np.tile(
                np.repeat(trefp_axis, n_temperature * n_vdd), n_workloads
            )
            temperature_col = np.tile(
                np.repeat(temperature_axis, n_vdd), n_workloads * n_trefp
            )
            vdd_col = np.tile(vdd_axis, n_workloads * n_trefp * n_temperature)
            operating_columns = np.column_stack((trefp_col, vdd_col, temperature_col))
            wer, pue = self._predict_columnar(names, codes, features, operating_columns)
            surface_shape = (n_workloads, n_trefp, n_temperature, n_vdd)
            wer = wer.reshape((len(self.ranks),) + surface_shape)
            if pue is not None:
                pue = pue.reshape(surface_shape)
            if telemetry.enabled:
                telemetry.incr(
                    "predictor.predictions", n_workloads * cells_per_workload
                )
        latency = time.perf_counter() - start

        return PredictionGrid(
            workloads=tuple(
                w.workload if isinstance(w, WorkloadProfile) else w for w in workloads
            ),
            trefp_s=tuple(trefp_axis),
            temperature_c=tuple(temperature_axis),
            vdd_v=tuple(vdd_axis),
            ranks=self.ranks,
            wer=wer,
            pue=pue,
            latency_s=latency,
        )

    def predict(
        self,
        workload: WorkloadArg,
        operating_point: Optional[OperatingPoint] = None,
        *,
        op: Optional[OperatingPoint] = None,
    ) -> PredictionResult:
        """Predict WER (per rank) and PUE for one workload at one point.

        Thin wrapper over the batch path: a one-row
        :meth:`predict_batch` unwrapped into a :class:`PredictionResult`.
        The old ``op=`` keyword is accepted for one release and logs a
        deprecation warning via the ``repro.core.predictor`` logger.
        """
        point = _resolve_deprecated_op(operating_point, op, "predict")
        return self.predict_batch([workload], [point]).result(0)

    def predict_wer(
        self,
        workload: WorkloadArg,
        operating_point: Optional[OperatingPoint] = None,
        *,
        op: Optional[OperatingPoint] = None,
    ) -> float:
        """Memory-wide WER prediction (convenience wrapper)."""
        point = _resolve_deprecated_op(operating_point, op, "predict_wer")
        return self.predict(workload, point).memory_wer
