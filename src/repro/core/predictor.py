"""End-to-end workload-aware predictor: the public entry point of the library.

This class packages what the paper releases as the "DRAM error behavioral
model": a trained (KNN-based by default) model that, given a workload's
program features and a target operating point, predicts the per-rank WER
and the probability of an uncorrectable error within milliseconds —
versus the hours or days a characterization campaign would take.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.characterization.campaign import CampaignResult
from repro.core.dataset import build_pue_dataset, build_wer_dataset
from repro.core.model import DramErrorModel, ModelConfig
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError, NotFittedError
from repro.profiling.profile import WorkloadProfile
from repro.profiling.profiler import profile_workload


@dataclass
class PredictionResult:
    """One prediction: per-rank WER, memory-wide WER, PUE and the latency."""

    workload: str
    operating_point: OperatingPoint
    wer_by_rank: Dict[RankLocation, float]
    pue: Optional[float]
    latency_s: float

    @property
    def memory_wer(self) -> float:
        values = list(self.wer_by_rank.values())
        return sum(values) / len(values)


@dataclass
class PredictorConfig:
    """Model choices for the end-to-end predictor."""

    wer_family: str = "knn"
    wer_feature_set: str = "set1"
    pue_family: str = "knn"
    pue_feature_set: str = "set2"


class WorkloadAwarePredictor:
    """Train once on a campaign, then predict any workload in milliseconds."""

    def __init__(self, config: Optional[PredictorConfig] = None) -> None:
        self.config = config or PredictorConfig()
        self._wer_models: Dict[RankLocation, DramErrorModel] = {}
        self._pue_model: Optional[DramErrorModel] = None

    # ------------------------------------------------------------------
    def fit(self, campaign: CampaignResult,
            profiles: Optional[Dict[str, WorkloadProfile]] = None) -> "WorkloadAwarePredictor":
        """Train the per-rank WER models and the PUE model from a campaign."""
        wer_dataset = build_wer_dataset(campaign, profiles)
        for rank in wer_dataset.ranks():
            model = DramErrorModel(ModelConfig(
                family=self.config.wer_family,
                feature_set=self.config.wer_feature_set,
                log_target=True,
            ))
            model.fit(wer_dataset.filter_rank(rank))
            self._wer_models[rank] = model

        if campaign.pue_summaries:
            pue_dataset = build_pue_dataset(campaign, profiles)
            self._pue_model = DramErrorModel(ModelConfig(
                family=self.config.pue_family,
                feature_set=self.config.pue_feature_set,
                log_target=False,
            ))
            self._pue_model.fit(pue_dataset)
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._wer_models)

    # ------------------------------------------------------------------
    def _resolve_profile(self, workload: Union[str, WorkloadProfile]) -> WorkloadProfile:
        if isinstance(workload, WorkloadProfile):
            return workload
        if isinstance(workload, str):
            return profile_workload(workload)
        raise ConfigurationError(
            "workload must be a registry name or a WorkloadProfile instance"
        )

    def predict(
        self, workload: Union[str, WorkloadProfile], op: OperatingPoint
    ) -> PredictionResult:
        """Predict WER (per rank) and PUE for a workload at an operating point."""
        if not self.is_fitted:
            raise NotFittedError("WorkloadAwarePredictor must be fitted first")
        profile = self._resolve_profile(workload)

        start = time.perf_counter()
        wer_by_rank = {
            rank: model.predict(op, profile.features)
            for rank, model in self._wer_models.items()
        }
        pue = None
        if self._pue_model is not None:
            pue = float(min(max(self._pue_model.predict(op, profile.features), 0.0), 1.0))
        latency = time.perf_counter() - start

        return PredictionResult(
            workload=profile.workload,
            operating_point=op,
            wer_by_rank=wer_by_rank,
            pue=pue,
            latency_s=latency,
        )

    def predict_wer(self, workload: Union[str, WorkloadProfile], op: OperatingPoint) -> float:
        """Memory-wide WER prediction (convenience wrapper)."""
        return self.predict(workload, op).memory_wer
