"""Feature-selection study: Spearman correlation of features vs WER / PUE.

Reproduces Section VI.A / Fig. 10: every one of the 249 program features
is correlated (Spearman's rank correlation, which captures monotonic
non-linear relationships) against the measured WER and PUE across the
whole campaign.  The study identifies the memory access rate, wait
cycles, ``HDP`` and ``Treuse`` as the features most related to DRAM
error behaviour — the basis of input sets 1 and 2.

The study is columnar end to end: operating points are dictionary-
encoded into group codes (consuming :class:`~repro.core.dataset.
ColumnarDataset` columns directly when the dataset has a columnar
backing), per-(operating point, workload) target means are two
``np.bincount`` reductions, and each group's Spearman coefficients for
*all* features come from one ranked-matrix product instead of one
scipy call per (feature, group) pair.  A zero-variance feature or
constant per-group targets contribute a coefficient of exactly ``0.0``
(no ranking information), matching :func:`~repro.ml.metrics.
spearman_correlation`.  The pre-vectorized per-sample implementation
survives as :func:`repro.core.reference.reference_run_correlation_study`
and the two are pinned to a 1e-9 tolerance by ``tests/test_core.py``
(reduction order differs, so agreement is tolerance- not bit-exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.core.dataset import ErrorDataset
from repro.errors import DataError
from repro.profiling.counters import all_feature_names
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class FeatureCorrelationPoint:
    """One point of Fig. 10: a feature's correlation with WER and with PUE."""

    feature: str
    rs_wer: float
    rs_pue: float

    @property
    def wer_strength(self) -> float:
        return abs(self.rs_wer)


@dataclass
class CorrelationStudy:
    """The full Fig. 10 scatter: rs(WER) and rs(PUE) for every feature."""

    points: List[FeatureCorrelationPoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise DataError("correlation study has no points")
        self._by_name = {point.feature: point for point in self.points}

    def point(self, feature: str) -> FeatureCorrelationPoint:
        try:
            return self._by_name[feature]
        except KeyError:
            raise DataError(f"feature {feature!r} not in the study") from None

    def rs_wer(self, feature: str) -> float:
        return self.point(feature).rs_wer

    def rs_pue(self, feature: str) -> float:
        return self.point(feature).rs_pue

    def top_wer_features(self, count: int = 10) -> List[FeatureCorrelationPoint]:
        """Features most strongly correlated with WER, by |rs|."""
        return sorted(self.points, key=lambda p: p.wer_strength, reverse=True)[:count]

    def named_feature_summary(self) -> Dict[str, Tuple[float, float]]:
        """The features the paper discusses explicitly, as (rs_WER, rs_PUE)."""
        interesting = (
            "memory_accesses_per_cycle",
            "wait_cycles",
            "hdp",
            "treuse",
            "ipc",
            "cpu_utilization",
        )
        return {
            name: (self.rs_wer(name), self.rs_pue(name))
            for name in interesting
            if name in self._by_name
        }


def _study_columns(
    dataset: ErrorDataset, feature_names: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(program, workload_codes, group_codes, targets)`` for one dataset.

    ``program`` is the per-workload feature table in ``feature_names``
    order (program features are constant per workload by construction, so
    one row per workload code suffices); ``group_codes`` dictionary-encode
    the ``(round(trefp, 6), round(temp, 2))`` operating-point key the
    per-sample path grouped on.  Columnar-backed datasets contribute their
    code tables directly; sample-backed datasets are encoded in one pass.
    """
    columns = dataset.columns()
    if columns is not None:
        workloads: Sequence[str] = columns.workloads
        workload_codes = columns.workload_codes
        operating = columns.operating_columns
        targets = columns.targets
        features_by_workload = columns.features_by_workload
    else:
        samples = dataset.samples
        if not samples:
            raise DataError("dataset is empty")
        workloads = []
        code_of: Dict[str, int] = {}
        features_by_workload = {}
        workload_codes = np.empty(len(samples), dtype=np.int64)
        operating = np.empty((len(samples), 3), dtype=np.float64)
        targets = np.empty(len(samples), dtype=np.float64)
        for i, sample in enumerate(samples):
            code = code_of.get(sample.workload)
            if code is None:
                code = code_of[sample.workload] = len(workloads)
                workloads.append(sample.workload)
                features_by_workload[sample.workload] = sample.program_features
            workload_codes[i] = code
            op = sample.operating_point
            operating[i] = (op.trefp_s, op.vdd_v, op.temperature_c)
            targets[i] = sample.target

    program = np.array(
        [[float(features_by_workload[w][name]) for name in feature_names]
         for w in workloads],
        dtype=np.float64,
    )
    op_key = np.column_stack(
        (np.round(operating[:, 0], 6), np.round(operating[:, 2], 2))
    )
    _, group_codes = np.unique(op_key, axis=0, return_inverse=True)
    return program, workload_codes, group_codes.reshape(-1), targets


def _grouped_feature_spearman(
    dataset: ErrorDataset, feature_names: Sequence[str]
) -> np.ndarray:
    """Per-feature Spearman coefficients, averaged over operating-point groups.

    For every operating-point group with at least 3 workloads, the
    coefficient vector over all features is one ranked-matrix product:
    workload target means come from ``bincount`` sums/counts, features
    and means are ranked columnwise (``scipy.stats.rankdata``, average
    ties — exactly what ``spearmanr`` ranks with) and correlated via
    centered dot products.  Zero-variance columns (or constant group
    targets) yield 0.0.
    """
    program, workload_codes, group_codes, targets = _study_columns(
        dataset, feature_names
    )
    n_workloads = program.shape[0]
    n_groups = int(group_codes.max()) + 1 if group_codes.size else 0
    pair = group_codes * n_workloads + workload_codes
    counts = np.bincount(pair, minlength=n_groups * n_workloads)
    sums = np.bincount(pair, weights=targets, minlength=n_groups * n_workloads)
    mean_targets = np.zeros_like(sums)
    np.divide(sums, counts, out=mean_targets, where=counts > 0)
    present = counts.reshape(n_groups, n_workloads) > 0
    mean_targets = mean_targets.reshape(n_groups, n_workloads)

    coefficients = []
    for group in range(n_groups):
        mask = present[group]
        if int(mask.sum()) < 3:
            continue
        feature_ranks = stats.rankdata(program[mask], axis=0)
        target_ranks = stats.rankdata(mean_targets[group][mask])
        centered_x = feature_ranks - feature_ranks.mean(axis=0)
        centered_y = target_ranks - target_ranks.mean()
        covariance = centered_x.T @ centered_y
        norm_sq = (centered_x ** 2).sum(axis=0) * (centered_y ** 2).sum()
        defined = norm_sq > 0.0
        coefficients.append(
            np.where(defined, covariance / np.sqrt(np.where(defined, norm_sq, 1.0)), 0.0)
        )
    if not coefficients:
        raise DataError("not enough samples per operating point for a correlation study")
    return np.mean(coefficients, axis=0)


def run_correlation_study(
    wer_dataset: ErrorDataset,
    pue_dataset: ErrorDataset,
    feature_names: Optional[Sequence[str]] = None,
) -> CorrelationStudy:
    """Correlate every program feature against the WER and PUE measurements.

    The coefficient of a feature is the Spearman correlation between the
    feature and the per-workload error metric, computed within each
    operating point of the campaign and averaged across operating points.
    All features are processed in one vectorized pass per dataset; a
    feature with no ranking information (constant across a group's
    workloads, or a group with constant mean targets) contributes 0.0
    for that group rather than a NaN.
    """
    telemetry = get_telemetry()
    with telemetry.span("core.correlation_study"):
        names = list(feature_names) if feature_names is not None else all_feature_names()
        rs_wer = _grouped_feature_spearman(wer_dataset, names)
        rs_pue = _grouped_feature_spearman(pue_dataset, names)
        points = [
            FeatureCorrelationPoint(
                feature=name, rs_wer=float(w), rs_pue=float(p)
            )
            for name, w, p in zip(names, rs_wer, rs_pue)
        ]
        if telemetry.enabled:
            telemetry.incr("core.correlation_features", len(points))
        return CorrelationStudy(points=points)
