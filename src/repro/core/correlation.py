"""Feature-selection study: Spearman correlation of features vs WER / PUE.

Reproduces Section VI.A / Fig. 10: every one of the 249 program features
is correlated (Spearman's rank correlation, which captures monotonic
non-linear relationships) against the measured WER and PUE across the
whole campaign.  The study identifies the memory access rate, wait
cycles, ``HDP`` and ``Treuse`` as the features most related to DRAM
error behaviour — the basis of input sets 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import ErrorDataset
from repro.errors import DataError
from repro.ml.metrics import spearman_correlation
from repro.profiling.counters import all_feature_names


@dataclass(frozen=True)
class FeatureCorrelationPoint:
    """One point of Fig. 10: a feature's correlation with WER and with PUE."""

    feature: str
    rs_wer: float
    rs_pue: float

    @property
    def wer_strength(self) -> float:
        return abs(self.rs_wer)


@dataclass
class CorrelationStudy:
    """The full Fig. 10 scatter: rs(WER) and rs(PUE) for every feature."""

    points: List[FeatureCorrelationPoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise DataError("correlation study has no points")
        self._by_name = {point.feature: point for point in self.points}

    def point(self, feature: str) -> FeatureCorrelationPoint:
        try:
            return self._by_name[feature]
        except KeyError:
            raise DataError(f"feature {feature!r} not in the study") from None

    def rs_wer(self, feature: str) -> float:
        return self.point(feature).rs_wer

    def rs_pue(self, feature: str) -> float:
        return self.point(feature).rs_pue

    def top_wer_features(self, count: int = 10) -> List[FeatureCorrelationPoint]:
        """Features most strongly correlated with WER, by |rs|."""
        return sorted(self.points, key=lambda p: p.wer_strength, reverse=True)[:count]

    def named_feature_summary(self) -> Dict[str, Tuple[float, float]]:
        """The features the paper discusses explicitly, as (rs_WER, rs_PUE)."""
        interesting = (
            "memory_accesses_per_cycle",
            "wait_cycles",
            "hdp",
            "treuse",
            "ipc",
            "cpu_utilization",
        )
        return {
            name: (self.rs_wer(name), self.rs_pue(name))
            for name in interesting
            if name in self._by_name
        }


def _grouped_samples(
    dataset: ErrorDataset, feature_names: Sequence[str]
) -> Dict[Tuple[float, float], Dict[str, Tuple[List[float], List[float]]]]:
    """Group samples by operating point; average targets per workload.

    Returns ``{(trefp, temp): {workload: (feature_row, [targets])}}``.
    Grouping by operating point isolates the *workload-dependent* component
    of the error rate: WER varies by orders of magnitude with TREFP and
    temperature, which would otherwise swamp the feature correlation.
    """
    groups: Dict[Tuple[float, float], Dict[str, Tuple[List[float], List[float]]]] = {}
    for sample in dataset:
        op_key = (round(sample.operating_point.trefp_s, 6),
                  round(sample.operating_point.temperature_c, 2))
        per_workload = groups.setdefault(op_key, {})
        if sample.workload not in per_workload:
            row = [sample.program_features[name] for name in feature_names]
            per_workload[sample.workload] = (row, [])
        per_workload[sample.workload][1].append(sample.target)
    return groups


def _grouped_spearman(
    groups: Dict[Tuple[float, float], Dict[str, Tuple[List[float], List[float]]]],
    column: int,
) -> float:
    """Spearman coefficient of one feature, averaged over operating-point groups."""
    coefficients = []
    for per_workload in groups.values():
        if len(per_workload) < 3:
            continue
        x = [row[column] for row, _targets in per_workload.values()]
        y = [float(np.mean(targets)) for _row, targets in per_workload.values()]
        coefficients.append(spearman_correlation(x, y))
    if not coefficients:
        raise DataError("not enough samples per operating point for a correlation study")
    return float(np.mean(coefficients))


def run_correlation_study(
    wer_dataset: ErrorDataset,
    pue_dataset: ErrorDataset,
    feature_names: Optional[Sequence[str]] = None,
) -> CorrelationStudy:
    """Correlate every program feature against the WER and PUE measurements.

    The coefficient of a feature is the Spearman correlation between the
    feature and the per-workload error metric, computed within each
    operating point of the campaign and averaged across operating points.
    """
    names = list(feature_names) if feature_names is not None else all_feature_names()
    wer_groups = _grouped_samples(wer_dataset, names)
    pue_groups = _grouped_samples(pue_dataset, names)

    points = []
    for column, name in enumerate(names):
        rs_wer = _grouped_spearman(wer_groups, column)
        rs_pue = _grouped_spearman(pue_groups, column)
        points.append(FeatureCorrelationPoint(feature=name, rs_wer=rs_wer, rs_pue=rs_pue))
    return CorrelationStudy(points=points)
