"""Figure regeneration helpers.

Each function returns the data series behind one figure of the paper as
plain Python structures (dicts / lists), so the benchmark harness can
print the same rows the paper plots without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.characterization.campaign import CampaignResult
from repro.characterization.experiment import CharacterizationExperiment
from repro.dram.operating import OperatingPoint
from repro.errors import DataError


def fig2_wer_over_time(
    workloads: Sequence[str] = ("memcached", "backprop(par)", "data-pattern-random"),
    trefp_s: float = 2.283,
    temperature_c: float = 70.0,
    experiment: Optional[CharacterizationExperiment] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 2: WER vs time for memcached, backprop and the random micro."""
    runner = experiment or CharacterizationExperiment()
    op = OperatingPoint.relaxed(trefp_s, temperature_c)
    series = {}
    for workload in workloads:
        result = runner.run(workload, op, collect_time_series=True)
        series[workload] = sorted(result.wer_time_series.items())
    return series


def fig4_wer_over_time(
    workloads: Sequence[str],
    trefp_s: float = 2.283,
    temperature_c: float = 50.0,
    experiment: Optional[CharacterizationExperiment] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 4: WER vs time for every benchmark at 2.283 s / 50 C."""
    return fig2_wer_over_time(workloads, trefp_s, temperature_c, experiment)


def convergence_check(series: List[Tuple[float, float]], window_s: float = 600.0) -> float:
    """Relative WER change over the last ``window_s`` of a time series.

    The paper verifies this is below 3 % for 2-hour runs (Section V.A).
    """
    if len(series) < 2:
        raise DataError("time series needs at least two points")
    final_time, final_value = series[-1]
    earlier = [value for t, value in series if t <= final_time - window_s]
    if not earlier or final_value == 0:
        raise DataError("time series too short for a convergence check")
    return abs(final_value - earlier[-1]) / final_value


def fig7_wer_bars(
    campaign: CampaignResult,
    trefp_values_s: Sequence[float] = units.TREFP_SWEEP_S,
    temperature_c: float = 50.0,
) -> Dict[float, Dict[str, float]]:
    """Fig. 7a-e: WER per benchmark for each refresh period at one temperature."""
    return {
        trefp: campaign.wer_by_workload(trefp, temperature_c) for trefp in trefp_values_s
    }


def fig7f_mean_wer_curve(
    campaign: CampaignResult,
    temperatures_c: Sequence[float] = (50.0, 60.0),
    trefp_values_s: Sequence[float] = units.TREFP_SWEEP_S,
) -> Dict[float, List[Tuple[float, float]]]:
    """Fig. 7f: benchmark-averaged WER vs TREFP per temperature."""
    return {
        temperature: [(trefp, campaign.mean_wer(trefp, temperature)) for trefp in trefp_values_s]
        for temperature in temperatures_c
    }


def fig8_wer_per_rank(
    campaign: CampaignResult, trefp_s: float = 2.283, temperature_c: float = 50.0
) -> Dict[str, Dict[str, float]]:
    """Fig. 8: per-workload, per-DIMM/rank WER at 2.283 s / 50 C."""
    raw = campaign.wer_by_rank(trefp_s, temperature_c)
    return {
        workload: {rank.label: wer for rank, wer in sorted(ranks.items())}
        for workload, ranks in raw.items()
    }


def fig9a_pue_bars(
    campaign: CampaignResult, trefp_values_s: Sequence[float] = units.TREFP_UE_SWEEP_S
) -> Dict[float, Dict[str, float]]:
    """Fig. 9a: PUE per benchmark for each refresh period of the 70 C study."""
    return {trefp: campaign.pue_by_workload(trefp) for trefp in trefp_values_s}


def fig9b_ue_rank_distribution(campaign: CampaignResult) -> Dict[str, float]:
    """Fig. 9b: probability a UE lands on each DIMM/rank."""
    return {rank.label: p for rank, p in sorted(campaign.ue_rank_distribution().items())}


def exponential_growth_factor(curve: List[Tuple[float, float]]) -> float:
    """Fitted exponential growth rate of a WER-vs-TREFP curve (1/s).

    A strictly positive value confirms the exponential trend of Fig. 7f.
    """
    if len(curve) < 2:
        raise DataError("need at least two points to fit a growth rate")
    x = np.array([t for t, _ in curve])
    y = np.array([w for _, w in curve])
    if np.any(y <= 0):
        raise DataError("WER values must be positive to fit an exponential")
    slope, _intercept = np.polyfit(x, np.log(y), 1)
    return float(slope)
