"""Table regeneration helpers (Tables I-III of the paper)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.features import feature_set_table
from repro.dram.ecc import ErrorClass, classify_bit_errors
from repro.errors import DataError
from repro.profiling.profiler import profile_workload


def table1_error_classes() -> List[Dict[str, str]]:
    """Table I: ECC SECDED error classification by corrupted-bit count."""
    rows = [
        {"num_corrupted_bits": "1", "type": "corrected",
         "abbreviation": classify_bit_errors(1).value},
        {"num_corrupted_bits": "> 1", "type": "uncorrected/detected",
         "abbreviation": classify_bit_errors(2).value},
        {"num_corrupted_bits": "> 2", "type": "uncorrected/undetected",
         "abbreviation": classify_bit_errors(3).value},
    ]
    expected = [ErrorClass.CORRECTED.value, ErrorClass.UNCORRECTABLE.value,
                ErrorClass.SILENT.value]
    if [row["abbreviation"] for row in rows] != expected:
        raise DataError("ECC classification does not match Table I")
    return rows


def table2_reuse_times(
    workloads: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Table II: the average DRAM reuse time (seconds) per benchmark."""
    if workloads is None:
        workloads = (
            "nw", "srad", "backprop", "kmeans", "fmm",
            "nw(par)", "srad(par)", "backprop(par)", "kmeans(par)", "fmm(par)",
            "memcached", "pagerank", "bfs", "bc",
        )
    return {name: profile_workload(name).feature("treuse") for name in workloads}


def table3_input_sets() -> List[Dict[str, str]]:
    """Table III: the three input feature sets used for model training."""
    return feature_set_table()
