"""Reporting helpers that regenerate the paper's tables and figures."""

from repro.analysis.figures import (
    convergence_check,
    exponential_growth_factor,
    fig2_wer_over_time,
    fig4_wer_over_time,
    fig7_wer_bars,
    fig7f_mean_wer_curve,
    fig8_wer_per_rank,
    fig9a_pue_bars,
    fig9b_ue_rank_distribution,
)
from repro.analysis.tables import table1_error_classes, table2_reuse_times, table3_input_sets

__all__ = [
    "convergence_check",
    "exponential_growth_factor",
    "fig2_wer_over_time",
    "fig4_wer_over_time",
    "fig7_wer_bars",
    "fig7f_mean_wer_curve",
    "fig8_wer_per_rank",
    "fig9a_pue_bars",
    "fig9b_ue_rank_distribution",
    "table1_error_classes",
    "table2_reuse_times",
    "table3_input_sets",
]
