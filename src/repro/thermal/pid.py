"""Discrete PID controller, as used by the DIMM heater control loop."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class PidGains:
    """Proportional / integral / derivative gains."""

    kp: float = 4.0
    ki: float = 0.25
    kd: float = 0.5

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ConfigurationError("PID gains must be non-negative")


class PidController:
    """Textbook positional PID with output clamping and anti-windup."""

    def __init__(
        self,
        gains: PidGains = None,
        setpoint: float = 50.0,
        output_min: float = 0.0,
        output_max: float = 100.0,
    ) -> None:
        if output_min >= output_max:
            raise ConfigurationError("output_min must be below output_max")
        self.gains = gains or PidGains()
        self.setpoint = setpoint
        self.output_min = output_min
        self.output_max = output_max
        self._integral = 0.0
        self._previous_error: float = None

    def reset(self) -> None:
        self._integral = 0.0
        self._previous_error = None

    def update(self, measurement: float, dt_s: float) -> float:
        """One control step; returns the clamped actuator command."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        error = self.setpoint - measurement
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / dt_s
        self._previous_error = error

        candidate_integral = self._integral + error * dt_s
        output = (
            self.gains.kp * error
            + self.gains.ki * candidate_integral
            + self.gains.kd * derivative
        )
        # Anti-windup: only accumulate the integral while not saturated.
        if self.output_min < output < self.output_max:
            self._integral = candidate_integral
        return float(min(max(output, self.output_min), self.output_max))
