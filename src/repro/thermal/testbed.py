"""Thermal testbed: heaters, thermocouples and the 4-channel controller.

The paper attaches a resistive heating element and a thermocouple to
each DIMM and drives them with closed-loop PID controllers so every DIMM
can be held at 50, 60 or 70 C during characterization.  The plant model
here is a first-order thermal RC: the DIMM heats towards a temperature
proportional to the applied heater power and relaxes towards ambient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.thermal.pid import PidController, PidGains


@dataclass
class HeaterPlant:
    """First-order thermal model of one DIMM with its heating element."""

    ambient_c: float = 45.0
    #: steady-state temperature rise (deg C) at 100 % heater power
    max_rise_c: float = 40.0
    #: thermal time constant of the DIMM + adapter assembly
    time_constant_s: float = 60.0
    temperature_c: float = 45.0

    def step(self, heater_power_pct: float, dt_s: float) -> float:
        """Advance the plant by ``dt_s`` seconds with the given heater power."""
        if not 0.0 <= heater_power_pct <= 100.0:
            raise ConfigurationError("heater power must be within [0, 100] %")
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        target = self.ambient_c + self.max_rise_c * heater_power_pct / 100.0
        alpha = min(dt_s / self.time_constant_s, 1.0)
        self.temperature_c += (target - self.temperature_c) * alpha
        return self.temperature_c


@dataclass
class Thermocouple:
    """Temperature sensor with a small, deterministic measurement offset."""

    offset_c: float = 0.0

    def read(self, true_temperature_c: float) -> float:
        return true_temperature_c + self.offset_c


@dataclass
class ThermalChannel:
    """One DIMM: plant + sensor + PID loop."""

    name: str
    plant: HeaterPlant = field(default_factory=HeaterPlant)
    sensor: Thermocouple = field(default_factory=Thermocouple)
    controller: PidController = field(default_factory=lambda: PidController(PidGains()))

    def set_target(self, temperature_c: float) -> None:
        self.controller.setpoint = temperature_c
        self.controller.reset()

    def step(self, dt_s: float) -> float:
        measurement = self.sensor.read(self.plant.temperature_c)
        power = self.controller.update(measurement, dt_s)
        return self.plant.step(power, dt_s)

    @property
    def temperature_c(self) -> float:
        return self.sensor.read(self.plant.temperature_c)


class ThermalTestbed:
    """Per-DIMM temperature control for the whole server (4 DIMMs)."""

    def __init__(self, num_dimms: int = 4, ambient_c: float = 45.0) -> None:
        if num_dimms <= 0:
            raise ConfigurationError("num_dimms must be positive")
        self.channels: List[ThermalChannel] = [
            ThermalChannel(
                name=f"DIMM{i}",
                plant=HeaterPlant(ambient_c=ambient_c, temperature_c=ambient_c),
            )
            for i in range(num_dimms)
        ]

    def set_target(self, temperature_c: float) -> None:
        """Set the same target temperature on every DIMM (as in the campaign)."""
        for channel in self.channels:
            channel.set_target(temperature_c)

    def settle(self, duration_s: float = 1800.0, dt_s: float = 5.0) -> Dict[str, float]:
        """Run the control loops until ``duration_s`` elapses.

        Returns the final per-DIMM temperatures.  A half-hour settle with
        the default plant reaches the setpoint to within a fraction of a
        degree, which is what the campaign assumes before starting a run.
        """
        if duration_s <= 0 or dt_s <= 0:
            raise ConfigurationError("duration_s and dt_s must be positive")
        steps = int(duration_s / dt_s)
        for _ in range(steps):
            for channel in self.channels:
                channel.step(dt_s)
        return self.temperatures()

    def temperatures(self) -> Dict[str, float]:
        return {channel.name: channel.temperature_c for channel in self.channels}

    def max_temperature_error(self) -> float:
        """Largest |setpoint - measured| across DIMMs."""
        return max(
            abs(channel.controller.setpoint - channel.temperature_c)
            for channel in self.channels
        )
