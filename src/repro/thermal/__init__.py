"""Thermal testbed substrate: heaters, thermocouples, PID control."""

from repro.thermal.pid import PidController, PidGains
from repro.thermal.testbed import HeaterPlant, ThermalChannel, ThermalTestbed, Thermocouple

__all__ = [
    "PidController",
    "PidGains",
    "HeaterPlant",
    "ThermalChannel",
    "ThermalTestbed",
    "Thermocouple",
]
