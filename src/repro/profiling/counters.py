"""The software performance-monitoring unit: 249 named program features.

The paper extracts 249 program-inherent features per workload: the two
new metrics (``treuse`` and ``hdp``) plus 247 counters collected with
``perf`` (memory accesses per cycle, per-MCU command rates, cache
statistics, IPC, utilisation, stall cycles, and a long tail of other
hardware events).  This module fixes the canonical feature name list and
provides the synthetic generator for the "long tail": counters such as
branch-predictor or TLB statistics that vary across workloads but carry
no information about DRAM reliability.  Those are exactly the features
that make input set 3 (all features) overfit in Section VI.B.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

import numpy as np

from repro.errors import DataError

#: The two program features introduced by the paper (Section III.D).
NOVEL_FEATURES: List[str] = ["treuse", "hdp"]

#: Features derived directly from the trace / memory-hierarchy simulation.
CORE_COUNTER_FEATURES: List[str] = [
    "memory_accesses_per_cycle",
    "wait_cycles",
    "ipc",
    "cpi",
    "cpu_utilization",
    "memory_instruction_fraction",
    "read_fraction",
    "write_fraction",
    "l1_accesses_per_cycle",
    "l1_misses_per_cycle",
    "l1_miss_rate",
    "l2_accesses_per_cycle",
    "l2_misses_per_cycle",
    "l2_miss_rate",
    "dram_reads_per_cycle",
    "dram_writes_per_cycle",
    "writebacks_per_cycle",
    "unique_words_touched",
    "accesses_per_word",
    "reuse_distance_instructions",
    "reused_access_fraction",
    "footprint_words_log10",
    "threads",
]

#: Per-MCU issued command rates (4 MCUs x read/write), Section VI.A.
MCU_FEATURES: List[str] = [
    f"mcu{mcu}_{kind}_cmds_per_cycle" for mcu in range(4) for kind in ("read", "write")
]

#: Per-DIMM/rank DRAM access rates (8 ranks).
RANK_FEATURES: List[str] = [
    f"dimm{dimm}_rank{rank}_accesses_per_cycle" for dimm in range(4) for rank in range(2)
]

#: Total number of program features the paper extracts.
TOTAL_FEATURE_COUNT = 249

#: Hardware-event families used to name the synthetic long-tail counters.
_TAIL_FAMILIES = [
    "branch_instructions", "branch_misses", "itlb_walks", "dtlb_walks",
    "icache_misses", "fp_operations", "int_operations", "simd_operations",
    "prefetcher_issued", "prefetcher_useful", "stall_frontend", "stall_backend",
    "context_switches", "page_faults", "bus_cycles", "exception_entries",
    "uop_retired", "load_spec", "store_spec", "crypto_spec",
]


def tail_feature_names() -> List[str]:
    """Names of the synthetic long-tail counters (deterministic order)."""
    named = len(NOVEL_FEATURES) + len(CORE_COUNTER_FEATURES) + len(MCU_FEATURES) + \
        len(RANK_FEATURES)
    remaining = TOTAL_FEATURE_COUNT - named
    if remaining < 0:
        raise DataError("named features exceed the 249-feature budget")
    names = []
    index = 0
    while len(names) < remaining:
        family = _TAIL_FAMILIES[index % len(_TAIL_FAMILIES)]
        variant = index // len(_TAIL_FAMILIES)
        names.append(f"perf_{family}_{variant:02d}")
        index += 1
    return names


def all_feature_names() -> List[str]:
    """The canonical, ordered list of all 249 feature names."""
    return (
        NOVEL_FEATURES
        + CORE_COUNTER_FEATURES
        + MCU_FEATURES
        + RANK_FEATURES
        + tail_feature_names()
    )


def synthesize_tail_counters(workload_name: str, core_features: Dict[str, float]) -> Dict[str, float]:
    """Deterministic values for the long-tail counters of one workload.

    Each counter is a workload-specific constant (derived from a hash of
    the workload name and the counter name) lightly mixed with one of the
    core features.  The values are perfectly repeatable across profiling
    runs — like real branch/TLB counters would be — but they carry almost
    no information about DRAM error behaviour, which is what lets the
    reproduction exhibit the paper's input-set-3 overfitting effect.
    """
    if not workload_name:
        raise DataError("workload_name must be non-empty")
    core_values = [core_features.get(name, 0.0) for name in CORE_COUNTER_FEATURES]
    tail = {}
    for name in tail_feature_names():
        seed = zlib.crc32(f"{workload_name}|{name}".encode("utf-8"))
        rng = np.random.default_rng(seed)
        base = rng.lognormal(mean=0.0, sigma=1.0)
        # A light admixture of one core feature keeps the counters plausible
        # (e.g. more instructions -> more branch events) without making them
        # informative about error rates.
        mixed = core_values[seed % len(core_values)] if core_values else 0.0
        tail[name] = float(base + 0.05 * mixed)
    return tail
