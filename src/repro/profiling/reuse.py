"""DRAM reuse time (``Treuse``) estimation — Section III.D, Eq. 4.

``Treuse`` is the average time between accesses to the same 64-bit word.
The paper computes it from a DynamoRIO instruction trace as
``T_i_reuse = CPI x D_i_reuse`` where ``D_i_reuse`` is the number of
instructions executed since the previous reference to the address, and
averages over all memory accesses.  The estimator below follows that
definition on the instrumented trace; because the trace comes from a
miniature kernel, the result is scaled by the ratio of the paper's 8 GB
footprint to the miniature allocation (reuse gaps grow proportionally
with the data set for these workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro import units
from repro.errors import DataError
from repro.memsys.access import MemoryAccess


@dataclass(frozen=True)
class ReuseStatistics:
    """Summary of the word-level reuse behaviour of a trace."""

    mean_reuse_distance_instructions: float   #: mean D_reuse over reused accesses
    reused_access_fraction: float             #: accesses that had a prior reference
    unique_words: int                         #: distinct 64-bit words touched
    total_accesses: int

    @property
    def accesses_per_word(self) -> float:
        if self.unique_words == 0:
            return 0.0
        return self.total_accesses / self.unique_words


def reuse_statistics(trace: Iterable[MemoryAccess]) -> ReuseStatistics:
    """Word-granularity reuse distances of an access trace."""
    last_seen: Dict[int, int] = {}
    total_distance = 0.0
    reused = 0
    total = 0
    for access in trace:
        total += 1
        word = access.word_address
        previous = last_seen.get(word)
        if previous is not None:
            total_distance += access.instruction_index - previous
            reused += 1
        last_seen[word] = access.instruction_index
    if total == 0:
        raise DataError("cannot compute reuse statistics of an empty trace")
    mean_distance = total_distance / reused if reused else float(total)
    return ReuseStatistics(
        mean_reuse_distance_instructions=mean_distance,
        reused_access_fraction=reused / total,
        unique_words=len(last_seen),
        total_accesses=total,
    )


class ReuseTimeEstimator:
    """Convert instruction-level reuse distances into seconds (Eq. 4)."""

    def __init__(self, cpu_frequency_hz: float = units.CPU_FREQ_HZ) -> None:
        if cpu_frequency_hz <= 0:
            raise DataError("cpu_frequency_hz must be positive")
        self.cpu_frequency_hz = cpu_frequency_hz

    def estimate(
        self,
        statistics: ReuseStatistics,
        cycles_per_instruction: float,
        footprint_scale: float = 1.0,
    ) -> float:
        """``Treuse`` in seconds.

        ``cycles_per_instruction`` is the *wall-clock* CPI of the whole
        program (total cycles / total instructions divided across threads),
        so parallel versions — which retire more instructions per cycle —
        naturally obtain a shorter reuse time, as observed for backprop and
        srad in Table II.
        """
        if cycles_per_instruction <= 0:
            raise DataError("cycles_per_instruction must be positive")
        if footprint_scale <= 0:
            raise DataError("footprint_scale must be positive")
        seconds_per_instruction = cycles_per_instruction / self.cpu_frequency_hz
        return (
            statistics.mean_reuse_distance_instructions
            * seconds_per_instruction
            * footprint_scale
        )

    def estimate_from_trace(
        self,
        trace: Iterable[MemoryAccess],
        cycles_per_instruction: float,
        footprint_scale: float = 1.0,
    ) -> float:
        """Convenience wrapper: statistics + estimate in one call."""
        return self.estimate(reuse_statistics(trace), cycles_per_instruction, footprint_scale)
