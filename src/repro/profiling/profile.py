"""The :class:`WorkloadProfile` container produced by the profiler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro import units
from repro.dram.statistical import WorkloadBehavior
from repro.errors import DataError
from repro.profiling.counters import all_feature_names
from repro.workloads.base import WorkloadMetadata


@dataclass
class WorkloadProfile:
    """All program-inherent features extracted for one workload.

    This is the "Profiling phase" output of Fig. 3: one row of the model
    input per workload, before the DRAM operating parameters are appended.
    """

    workload: str
    metadata: WorkloadMetadata
    features: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = all_feature_names()
        missing = [name for name in expected if name not in self.features]
        if missing:
            raise DataError(
                f"profile of {self.workload!r} is missing {len(missing)} features "
                f"(first missing: {missing[0]!r})"
            )

    # ------------------------------------------------------------------
    def feature(self, name: str) -> float:
        """Value of one named feature."""
        try:
            return self.features[name]
        except KeyError:
            raise DataError(f"unknown feature {name!r}") from None

    def feature_vector(self, names: Sequence[str]) -> np.ndarray:
        """Features in the given order, as a numpy vector."""
        return np.array([self.feature(name) for name in names], dtype=float)

    @property
    def num_features(self) -> int:
        return len(self.features)

    # ------------------------------------------------------------------
    def behavior(self) -> WorkloadBehavior:
        """The workload-behaviour summary consumed by the DRAM error model."""
        footprint_words = max(
            1, self.metadata.nominal_footprint_bytes // units.WORD_BYTES
        )
        return WorkloadBehavior(
            accesses_per_cycle=max(self.feature("memory_accesses_per_cycle"), 0.0),
            reuse_time_s=max(self.feature("treuse"), 1e-6),
            data_entropy_bits=min(max(self.feature("hdp"), 0.0), 32.0),
            footprint_words=int(footprint_words),
            wait_cycle_fraction=min(max(self.feature("wait_cycles"), 0.0), 1.0),
        )

    def summary(self) -> Dict[str, float]:
        """The headline features the paper discusses, for quick inspection."""
        return {
            name: self.feature(name)
            for name in (
                "treuse",
                "hdp",
                "memory_accesses_per_cycle",
                "wait_cycles",
                "ipc",
                "l2_miss_rate",
            )
        }
