"""Profiling substrate: program-inherent feature extraction (Section III.D)."""

from repro.profiling.counters import (
    CORE_COUNTER_FEATURES,
    MCU_FEATURES,
    NOVEL_FEATURES,
    RANK_FEATURES,
    TOTAL_FEATURE_COUNT,
    all_feature_names,
    synthesize_tail_counters,
    tail_feature_names,
)
from repro.profiling.entropy import DataEntropyEstimator, shannon_entropy_bits
from repro.profiling.profile import WorkloadProfile
from repro.profiling.profiler import (
    TimingModel,
    WorkloadProfiler,
    clear_profile_cache,
    profile_campaign_workloads,
    profile_workload,
    scaled_profiling_cache_configs,
)
from repro.profiling.reuse import ReuseStatistics, ReuseTimeEstimator, reuse_statistics

__all__ = [
    "CORE_COUNTER_FEATURES",
    "MCU_FEATURES",
    "NOVEL_FEATURES",
    "RANK_FEATURES",
    "TOTAL_FEATURE_COUNT",
    "all_feature_names",
    "synthesize_tail_counters",
    "tail_feature_names",
    "DataEntropyEstimator",
    "shannon_entropy_bits",
    "WorkloadProfile",
    "TimingModel",
    "WorkloadProfiler",
    "clear_profile_cache",
    "profile_campaign_workloads",
    "profile_workload",
    "scaled_profiling_cache_configs",
    "ReuseStatistics",
    "ReuseTimeEstimator",
    "reuse_statistics",
]
