"""Data-pattern entropy (``HDP``) estimation — Section III.D, Eq. 5.

``HDP`` quantifies how varied the data written to DRAM is: the Shannon
entropy of the distribution of written 32-bit values, estimated from the
write accesses captured by the instrumentation.  A solid (all-zeros)
pattern has entropy 0; a uniformly random pattern approaches the number
of bits of the sampled value space.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

from repro.errors import DataError
from repro.memsys.access import MemoryAccess


def shannon_entropy_bits(counts: Iterable[int]) -> float:
    """Shannon entropy (bits) of a discrete distribution given raw counts."""
    values = np.asarray(list(counts), dtype=float)
    values = values[values > 0]
    if values.size == 0:
        raise DataError("entropy of an empty distribution is undefined")
    probabilities = values / values.sum()
    return float(-(probabilities * np.log2(probabilities)).sum())


class DataEntropyEstimator:
    """Estimate ``HDP`` from the written values of an access trace."""

    def __init__(self, value_bits: int = 32, max_samples: int = 200_000) -> None:
        if not 1 <= value_bits <= 64:
            raise DataError("value_bits must lie in [1, 64]")
        if max_samples <= 0:
            raise DataError("max_samples must be positive")
        self.value_bits = value_bits
        self.max_samples = max_samples

    def _truncate(self, value: int) -> int:
        # Sample the *most significant* bits of the stored 64-bit word: for
        # IEEE-754 doubles these carry the sign/exponent/high mantissa, so
        # distinct small integers map to distinct samples while a solid
        # pattern still collapses to a single value.
        return (value >> (64 - self.value_bits)) & ((1 << self.value_bits) - 1)

    def estimate(self, trace: Iterable[MemoryAccess]) -> float:
        """``HDP`` in bits over the write accesses of a trace.

        Returns 0.0 when the trace contains no writes (a read-only phase
        stores no new data pattern).
        """
        counter: Counter = Counter()
        samples = 0
        for access in trace:
            if not access.is_write:
                continue
            counter[self._truncate(access.value)] += 1
            samples += 1
            if samples >= self.max_samples:
                break
        if samples == 0:
            return 0.0
        return shannon_entropy_bits(counter.values())

    @property
    def max_entropy_bits(self) -> float:
        """Upper bound of the estimator given the value width."""
        return float(self.value_bits)
