"""The workload profiler: trace -> 249 program features.

This is the software equivalent of the paper's profiling phase (Fig. 3):
DynamoRIO supplies the access trace and perf supplies the hardware
counters; here both come from the instrumented workload execution and a
cache-hierarchy simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro import units
from repro.dram.geometry import DramGeometry
from repro.errors import DataError
from repro.memsys.cache import CacheConfig
from repro.memsys.hierarchy import HierarchyStats, MemoryHierarchy
from repro.profiling.counters import (
    CORE_COUNTER_FEATURES,
    MCU_FEATURES,
    RANK_FEATURES,
    synthesize_tail_counters,
)
from repro.profiling.entropy import DataEntropyEstimator
from repro.profiling.profile import WorkloadProfile
from repro.profiling.reuse import ReuseTimeEstimator, reuse_statistics
from repro.workloads.base import TraceRecorder, Workload


@dataclass(frozen=True)
class TimingModel:
    """Simple analytical core-timing model used to derive cycle counts.

    The miniature kernels execute far fewer instructions than the real
    benchmarks, but rate-style features (events per cycle) only need a
    consistent cycle model, not absolute durations.
    """

    base_cpi: float = 0.6               #: issue-limited CPI of the OoO core
    l2_hit_penalty_cycles: float = 9.0  #: extra cycles per L1 miss that hits L2
    dram_penalty_cycles: float = 170.0  #: extra cycles per access that goes to DRAM
    parallel_efficiency: float = 0.85   #: exponent of the thread-count speedup

    def speedup(self, threads: int) -> float:
        if threads <= 1:
            return 1.0
        return float(threads ** self.parallel_efficiency)


def scaled_profiling_cache_configs() -> Dict[str, CacheConfig]:
    """Cache sizes scaled down to match the miniature footprints.

    The real benchmarks allocate 8 GB against a 32 KB L1 / 256 KB L2; the
    miniature kernels allocate tens of kilobytes, so the profiler shrinks
    the caches proportionally.  This preserves each benchmark's *relative*
    cache behaviour (hot structures hit, large sweeps miss), which is what
    the per-cycle features depend on.
    """
    return {
        "l1": CacheConfig(size_bytes=1024, associativity=4, line_bytes=64),
        "l2": CacheConfig(size_bytes=8192, associativity=8, line_bytes=64),
    }


class WorkloadProfiler:
    """Run a workload, simulate the memory hierarchy and extract features."""

    def __init__(
        self,
        timing: Optional[TimingModel] = None,
        geometry: Optional[DramGeometry] = None,
        cpu_frequency_hz: float = units.CPU_FREQ_HZ,
        num_cores: int = units.NUM_CORES,
    ) -> None:
        self.timing = timing or TimingModel()
        self.geometry = geometry or DramGeometry()
        self.cpu_frequency_hz = cpu_frequency_hz
        self.num_cores = num_cores
        self._reuse_estimator = ReuseTimeEstimator(cpu_frequency_hz)
        self._entropy_estimator = DataEntropyEstimator()

    # ------------------------------------------------------------------
    def profile(self, workload: Workload) -> WorkloadProfile:
        """Produce the full 249-feature profile of a workload."""
        recorder = workload.record_trace()
        hierarchy = self._build_hierarchy(workload.threads)
        stats = hierarchy.simulate(recorder.accesses)
        return self._assemble_profile(workload, recorder, stats)

    # ------------------------------------------------------------------
    def _build_hierarchy(self, threads: int) -> MemoryHierarchy:
        configs = scaled_profiling_cache_configs()
        return MemoryHierarchy(
            geometry=self.geometry,
            l1_config=configs["l1"],
            l2_config=configs["l2"],
            num_threads=threads,
        )

    def _cycles(self, recorder: TraceRecorder, stats: HierarchyStats, threads: int):
        """Return (wall_cycles, core_cycles, stall_cycles)."""
        instructions = recorder.instruction_count
        if instructions <= 0:
            raise DataError("workload executed no instructions")
        compute_cycles = instructions * self.timing.base_cpi
        l2_hits = max(stats.l1_misses - stats.dram_reads, 0)
        stall_cycles = (
            l2_hits * self.timing.l2_hit_penalty_cycles
            + stats.dram_accesses * self.timing.dram_penalty_cycles
        )
        core_cycles = compute_cycles + stall_cycles
        wall_cycles = core_cycles / self.timing.speedup(threads)
        return wall_cycles, core_cycles, stall_cycles

    def _assemble_profile(
        self, workload: Workload, recorder: TraceRecorder, stats: HierarchyStats
    ) -> WorkloadProfile:
        threads = workload.threads
        instructions = recorder.instruction_count
        wall_cycles, core_cycles, stall_cycles = self._cycles(recorder, stats, threads)
        cpi_wall = wall_cycles / instructions
        reuse_stats = reuse_statistics(recorder.accesses)

        footprint_scale = workload.nominal_footprint_bytes / max(recorder.allocated_bytes, 1)
        treuse = self._reuse_estimator.estimate(reuse_stats, cpi_wall, footprint_scale)
        hdp = self._entropy_estimator.estimate(recorder.accesses)

        features: Dict[str, float] = {
            "treuse": treuse,
            "hdp": hdp,
            "memory_accesses_per_cycle": stats.dram_accesses / wall_cycles,
            "wait_cycles": stall_cycles / core_cycles if core_cycles else 0.0,
            "ipc": instructions / wall_cycles,
            "cpi": cpi_wall,
            "cpu_utilization": min(threads / self.num_cores, 1.0),
            "memory_instruction_fraction": recorder.memory_instruction_fraction,
            "read_fraction": stats.read_accesses / stats.total_accesses
            if stats.total_accesses else 0.0,
            "write_fraction": stats.write_accesses / stats.total_accesses
            if stats.total_accesses else 0.0,
            "l1_accesses_per_cycle": stats.l1_accesses / wall_cycles,
            "l1_misses_per_cycle": stats.l1_misses / wall_cycles,
            "l1_miss_rate": stats.l1_miss_rate,
            "l2_accesses_per_cycle": stats.l2_accesses / wall_cycles,
            "l2_misses_per_cycle": stats.l2_misses / wall_cycles,
            "l2_miss_rate": stats.l2_miss_rate,
            "dram_reads_per_cycle": stats.dram_reads / wall_cycles,
            "dram_writes_per_cycle": stats.dram_writes / wall_cycles,
            "writebacks_per_cycle": stats.writebacks / wall_cycles,
            "unique_words_touched": float(reuse_stats.unique_words),
            "accesses_per_word": reuse_stats.accesses_per_word,
            "reuse_distance_instructions": reuse_stats.mean_reuse_distance_instructions,
            "reused_access_fraction": reuse_stats.reused_access_fraction,
            "footprint_words_log10": math.log10(
                max(workload.nominal_footprint_bytes // units.WORD_BYTES, 1)
            ),
            "threads": float(threads),
        }
        self._add_mcu_features(features, stats, wall_cycles)
        self._add_rank_features(features, stats, wall_cycles)
        features.update(synthesize_tail_counters(workload.display_name, features))

        missing_core = [name for name in CORE_COUNTER_FEATURES if name not in features]
        if missing_core:
            raise DataError(f"profiler did not compute core features: {missing_core}")

        return WorkloadProfile(
            workload=workload.display_name,
            metadata=workload.metadata,
            features=features,
        )

    def _add_mcu_features(
        self, features: Dict[str, float], stats: HierarchyStats, wall_cycles: float
    ) -> None:
        for name in MCU_FEATURES:
            features[name] = 0.0
        for mcu, reads in stats.per_mcu_reads.items():
            features[f"mcu{mcu}_read_cmds_per_cycle"] = reads / wall_cycles
        for mcu, writes in stats.per_mcu_writes.items():
            features[f"mcu{mcu}_write_cmds_per_cycle"] = writes / wall_cycles

    def _add_rank_features(
        self, features: Dict[str, float], stats: HierarchyStats, wall_cycles: float
    ) -> None:
        for name in RANK_FEATURES:
            features[name] = 0.0
        for rank, count in stats.per_rank_accesses.items():
            key = f"dimm{rank.dimm}_rank{rank.rank}_accesses_per_cycle"
            if key in features:
                features[key] = count / wall_cycles


# ---------------------------------------------------------------------------
# Profile cache: profiling is deterministic, so every caller shares results.
# ---------------------------------------------------------------------------
_PROFILE_CACHE: Dict[str, WorkloadProfile] = {}


def profile_workload(name: str, profiler: Optional[WorkloadProfiler] = None) -> WorkloadProfile:
    """Profile a registered workload by name, with caching."""
    from repro.workloads.registry import create_workload

    if name in _PROFILE_CACHE and profiler is None:
        return _PROFILE_CACHE[name]
    active_profiler = profiler or WorkloadProfiler()
    profile = active_profiler.profile(create_workload(name))
    if profiler is None:
        _PROFILE_CACHE[name] = profile
    return profile


def profile_campaign_workloads() -> Dict[str, WorkloadProfile]:
    """Profiles of all 14 campaign benchmarks (cached)."""
    from repro.workloads.registry import campaign_workload_names

    return {name: profile_workload(name) for name in campaign_workload_names()}


def clear_profile_cache() -> None:
    """Drop cached profiles (used by tests that tweak profiler settings)."""
    _PROFILE_CACHE.clear()
