"""In-process prediction service: LRU cache + request-batching facade.

:class:`PredictionService` wraps a fitted (typically registry-loaded)
:class:`~repro.core.predictor.WorkloadAwarePredictor` behind a
request/response API shaped like a serving front-end:

* requests are typed frozen dataclasses keyed by
  ``(workload, TREFP, VDD, temperature)``;
* an LRU operating-point cache answers repeated requests without
  touching the model;
* cache misses are queued and a single worker thread coalesces every
  request that arrives within ``batch_window_s`` into **one**
  :meth:`~repro.core.predictor.WorkloadAwarePredictor.predict_batch`
  call (the web-app-plus-worker split, folded into one process);
* telemetry records spans (``serving.batch``), counters (requests,
  hits, misses, batches, predictions) and the batch-size histogram.

The facade never changes numbers: a response carries exactly the values
a direct ``predict_batch``/``predict_grid`` call produces for the same
points (pinned under concurrent load by ``tests/test_serving.py``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.predictor import WorkloadAwarePredictor
from repro.dram.geometry import RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError
from repro.telemetry import get_telemetry

#: Cache / coalescing key of one request.
RequestKey = Tuple[str, float, float, float]


@dataclass(frozen=True)
class PredictRequest:
    """One prediction request: a workload name at an operating point."""

    workload: str
    trefp_s: float
    vdd_v: float
    temperature_c: float

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigurationError("request workload must be a registry name")
        # Constructing the operating point validates the parameter ranges.
        self.operating_point()

    @classmethod
    def at(cls, workload: str, operating_point: OperatingPoint) -> "PredictRequest":
        """Build a request from an :class:`OperatingPoint`."""
        return cls(
            workload=workload,
            trefp_s=operating_point.trefp_s,
            vdd_v=operating_point.vdd_v,
            temperature_c=operating_point.temperature_c,
        )

    def operating_point(self) -> OperatingPoint:
        return OperatingPoint(
            trefp_s=self.trefp_s, vdd_v=self.vdd_v,
            temperature_c=self.temperature_c,
        )

    @property
    def key(self) -> RequestKey:
        return (self.workload, self.trefp_s, self.vdd_v, self.temperature_c)


@dataclass(frozen=True)
class PredictResponse:
    """One prediction: per-rank WER, PUE, and how the service answered."""

    request: PredictRequest
    ranks: Tuple[RankLocation, ...]
    wer: Tuple[float, ...]
    pue: Optional[float]
    #: answered from the LRU cache (no model call)
    cached: bool
    #: how many unique predictions shared the model call that produced this
    batch_size: int

    @property
    def memory_wer(self) -> float:
        return sum(self.wer) / len(self.wer)

    @property
    def wer_by_rank(self) -> Dict[RankLocation, float]:
        return dict(zip(self.ranks, self.wer))


@dataclass(frozen=True)
class ServiceStats:
    """Monotonic counters of one service's lifetime."""

    requests: int
    cache_hits: int
    cache_misses: int
    batches: int
    predictions: int
    max_batch_size: int

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class PredictionService:
    """Cached, batching serving facade over a fitted predictor.

    Parameters
    ----------
    predictor:
        A fitted :class:`WorkloadAwarePredictor` (e.g. from
        :func:`repro.serving.registry.load_model`).
    cache_size:
        Maximum number of (workload, operating point) responses kept in
        the LRU cache; ``0`` disables caching.
    batch_window_s:
        How long the worker waits after the first queued request for
        more to coalesce into the same model call; ``0`` batches only
        what is already queued.
    max_batch_size:
        Upper bound on requests drained into one model call.
    """

    def __init__(
        self,
        predictor: WorkloadAwarePredictor,
        *,
        cache_size: int = 4096,
        batch_window_s: float = 0.002,
        max_batch_size: int = 256,
    ) -> None:
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        if batch_window_s < 0:
            raise ConfigurationError("batch_window_s must be >= 0")
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if not predictor.is_fitted:
            raise ConfigurationError(
                "PredictionService requires a fitted WorkloadAwarePredictor"
            )
        self.predictor = predictor
        self.cache_size = cache_size
        self.batch_window_s = batch_window_s
        self.max_batch_size = max_batch_size

        self._cond = threading.Condition()
        self._pending: List[Tuple[PredictRequest, "Future[PredictResponse]"]] = []
        self._cache: "OrderedDict[RequestKey, PredictResponse]" = OrderedDict()
        self._closed = False
        self._requests = 0
        self._hits = 0
        self._misses = 0
        self._batches = 0
        self._predictions = 0
        self._max_batch = 0
        self._worker = threading.Thread(
            target=self._run, name="repro-prediction-service", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Drain pending requests, stop the worker and reject new work."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()

    # ------------------------------------------------------------------
    def _cache_get(self, key: RequestKey) -> Optional[PredictResponse]:
        """LRU lookup; caller must hold the lock."""
        response = self._cache.get(key)
        if response is not None:
            self._cache.move_to_end(key)
        return response

    def _cache_put(self, key: RequestKey, response: PredictResponse) -> None:
        """LRU insert + eviction; caller must hold the lock."""
        if self.cache_size == 0:
            return
        self._cache[key] = response
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    def submit(self, request: PredictRequest) -> "Future[PredictResponse]":
        """Enqueue one request; cache hits resolve immediately."""
        telemetry = get_telemetry()
        future: "Future[PredictResponse]" = Future()
        with self._cond:
            if self._closed:
                raise ConfigurationError("PredictionService is closed")
            self._requests += 1
            cached = self._cache_get(request.key)
            if cached is not None:
                self._hits += 1
                if telemetry.enabled:
                    telemetry.incr("serving.requests")
                    telemetry.incr("serving.cache_hits")
                future.set_result(replace(cached, request=request, cached=True))
                return future
            self._misses += 1
            if telemetry.enabled:
                telemetry.incr("serving.requests")
                telemetry.incr("serving.cache_misses")
            self._pending.append((request, future))
            self._cond.notify_all()
        return future

    def predict(
        self, workload: str, operating_point: OperatingPoint
    ) -> PredictResponse:
        """Blocking convenience wrapper: one request, one response."""
        return self.submit(PredictRequest.at(workload, operating_point)).result()

    def predict_many(
        self, requests: Sequence[PredictRequest]
    ) -> List[PredictResponse]:
        """Submit a burst of requests, then wait for every response."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def stats(self) -> ServiceStats:
        """Counters of this service's lifetime (thread-safe snapshot)."""
        with self._cond:
            return ServiceStats(
                requests=self._requests,
                cache_hits=self._hits,
                cache_misses=self._misses,
                batches=self._batches,
                predictions=self._predictions,
                max_batch_size=self._max_batch,
            )

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return      # closed and drained
            # Coalescing window: let concurrent callers pile onto this batch.
            if self.batch_window_s > 0:
                time.sleep(self.batch_window_s)
            with self._cond:
                batch = self._pending[: self.max_batch_size]
                del self._pending[: self.max_batch_size]
            if batch:
                self._process(batch)

    def _process(
        self, batch: Sequence[Tuple[PredictRequest, "Future[PredictResponse]"]]
    ) -> None:
        telemetry = get_telemetry()
        # Coalesce duplicate keys: one model row answers every waiter.
        waiters: "OrderedDict[RequestKey, List[Future[PredictResponse]]]" = OrderedDict()
        requests: Dict[RequestKey, PredictRequest] = {}
        for request, future in batch:
            waiters.setdefault(request.key, []).append(future)
            requests.setdefault(request.key, request)
        keys = list(waiters)
        try:
            with telemetry.span("serving.batch"):
                result = self.predictor.predict_batch(
                    [requests[key].workload for key in keys],
                    [requests[key].operating_point() for key in keys],
                )
                if telemetry.enabled:
                    telemetry.incr("serving.batches")
                    telemetry.incr("serving.predictions", len(keys))
                    telemetry.observe("serving.batch_size", len(keys))
        except Exception as error:   # surface model failures to every waiter
            for futures in waiters.values():
                for future in futures:
                    future.set_exception(error)
            return

        responses: List[PredictResponse] = []
        for index, key in enumerate(keys):
            responses.append(PredictResponse(
                request=requests[key],
                ranks=result.ranks,
                wer=tuple(float(v) for v in result.wer[:, index]),
                pue=float(result.pue[index]) if result.pue is not None else None,
                cached=False,
                batch_size=len(keys),
            ))
        with self._cond:
            self._batches += 1
            self._predictions += len(keys)
            if len(keys) > self._max_batch:
                self._max_batch = len(keys)
            for key, response in zip(keys, responses):
                self._cache_put(key, response)
        for key, response in zip(keys, responses):
            for future in waiters[key]:
                future.set_result(response)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"PredictionService(cache_size={self.cache_size}, "
            f"batch_window_s={self.batch_window_s}, "
            f"requests={stats.requests}, hit_rate={stats.hit_rate:.2f})"
        )
