"""Versioned on-disk model registry for fitted predictors.

A *bundle* is one directory holding ``manifest.json`` (schema tag, the
environment block reused from the telemetry run reports, and the
JSON estimator specs) plus ``arrays.npz`` (every fitted array, float64
bit-exact).  Two bundle kinds exist:

* ``predictor`` — a whole fitted
  :class:`~repro.core.predictor.WorkloadAwarePredictor` (per-rank WER
  pipelines + the optional PUE pipeline), written by :func:`save_model`
  and read back by :func:`load_model`;
* ``estimator`` — any single ``repro.ml`` estimator or
  :class:`~repro.ml.pipeline.Pipeline`, written/read by
  :func:`save_estimator` / :func:`load_estimator`.

:class:`ModelRegistry` layers a versioned namespace on top: models are
stored under ``<root>/<name>/v<N>/`` and ``load(name)`` resolves the
highest version.  Round-trips are pinned by ``tests/test_serving.py``:
a reloaded model's predictions are ``np.array_equal`` to the
original's.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.model import DramErrorModel, ModelConfig
from repro.core.predictor import PredictorConfig, WorkloadAwarePredictor
from repro.dram.geometry import RankLocation
from repro.errors import RegistryError
from repro.serving.serialization import (
    ArrayPayload,
    EstimatorSpec,
    capture_estimator,
    restore_estimator,
)
from repro.telemetry import get_telemetry
from repro.telemetry.report import environment_metadata

#: Schema tag embedded in every bundle manifest; bump on breaking changes.
MODEL_BUNDLE_SCHEMA = "repro.model_bundle/v1"

_MANIFEST_NAME = "manifest.json"
_ARRAYS_NAME = "arrays.npz"
_VERSION_PATTERN = re.compile(r"^v([1-9][0-9]*)$")
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Bundle I/O.
# ---------------------------------------------------------------------------
def _write_bundle(
    directory: Path, kind: str, payload: Dict[str, Any], arrays: ArrayPayload
) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "schema": MODEL_BUNDLE_SCHEMA,
        "kind": kind,
        "environment": dict(sorted(environment_metadata().items())),
        "payload": payload,
    }
    with open(directory / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    np.savez(directory / _ARRAYS_NAME, **arrays)


def _read_bundle(
    directory: Path, kind: str
) -> Tuple[Dict[str, Any], ArrayPayload, Dict[str, Any]]:
    """Read a bundle; returns ``(payload, arrays, manifest)``."""
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.is_file():
        raise RegistryError(f"no model bundle at {directory} (missing manifest.json)")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as error:
        raise RegistryError(f"corrupted manifest at {manifest_path}: {error}") from None
    if not isinstance(manifest, dict) or manifest.get("schema") != MODEL_BUNDLE_SCHEMA:
        raise RegistryError(
            f"unsupported bundle schema {manifest.get('schema')!r} at "
            f"{manifest_path} (expected {MODEL_BUNDLE_SCHEMA!r})"
            if isinstance(manifest, dict)
            else f"corrupted manifest at {manifest_path}: not a JSON object"
        )
    if manifest.get("kind") != kind:
        raise RegistryError(
            f"bundle at {directory} holds a {manifest.get('kind')!r}, "
            f"expected a {kind!r}"
        )
    payload = manifest.get("payload")
    if not isinstance(payload, dict):
        raise RegistryError(f"corrupted manifest at {manifest_path}: no payload")
    arrays_path = directory / _ARRAYS_NAME
    if not arrays_path.is_file():
        raise RegistryError(f"bundle at {directory} is missing {_ARRAYS_NAME}")
    try:
        with np.load(arrays_path) as stored:
            arrays = {key: stored[key] for key in stored.files}
    except (OSError, ValueError) as error:
        raise RegistryError(f"corrupted {_ARRAYS_NAME} at {directory}: {error}") from None
    return payload, arrays, manifest


# ---------------------------------------------------------------------------
# Single-estimator bundles.
# ---------------------------------------------------------------------------
def save_estimator(estimator: Any, directory: PathLike) -> Path:
    """Persist one fitted estimator/pipeline as a bundle; returns the path."""
    arrays: ArrayPayload = {}
    spec = capture_estimator(estimator, "estimator", arrays)
    path = Path(directory)
    _write_bundle(path, "estimator", {"estimator": spec}, arrays)
    return path


def load_estimator(directory: PathLike) -> Any:
    """Rebuild the fitted estimator persisted by :func:`save_estimator`."""
    payload, arrays, _manifest = _read_bundle(Path(directory), "estimator")
    if "estimator" not in payload:
        raise RegistryError(f"bundle at {directory} has no estimator payload")
    return restore_estimator(payload["estimator"], "estimator", arrays)


# ---------------------------------------------------------------------------
# Predictor bundles.
# ---------------------------------------------------------------------------
def _capture_model(
    model: DramErrorModel, prefix: str, arrays: ArrayPayload
) -> Dict[str, Any]:
    return {
        "config": asdict(model.config),
        "pipeline": capture_estimator(model._pipeline, prefix, arrays),
    }


def _restore_model(
    spec: Dict[str, Any], prefix: str, arrays: ArrayPayload
) -> DramErrorModel:
    try:
        config = ModelConfig(**spec["config"])
    except (KeyError, TypeError) as error:
        raise RegistryError(f"malformed model config in bundle: {error}") from None
    model = DramErrorModel(config)
    model._pipeline = restore_estimator(spec["pipeline"], prefix, arrays)
    model.fitted_ = True
    return model


def save_model(predictor: WorkloadAwarePredictor, directory: PathLike) -> Path:
    """Persist a fitted predictor as one bundle directory; returns the path.

    The bundle holds every per-rank WER pipeline, the optional PUE
    pipeline and the predictor configuration; loading it back with
    :func:`load_model` reproduces predictions bit-identically.
    """
    if not predictor.is_fitted:
        raise RegistryError("cannot persist an unfitted WorkloadAwarePredictor")
    telemetry = get_telemetry()
    with telemetry.span("registry.save"):
        arrays: ArrayPayload = {}
        ranks = predictor.ranks
        wer_specs = [
            _capture_model(predictor._wer_models[rank], f"wer/{index}", arrays)
            for index, rank in enumerate(ranks)
        ]
        pue_spec: Optional[Dict[str, Any]] = None
        if predictor._pue_model is not None:
            pue_spec = _capture_model(predictor._pue_model, "pue", arrays)
        payload = {
            "predictor_config": asdict(predictor.config),
            "ranks": [[rank.dimm, rank.rank] for rank in ranks],
            "wer_models": wer_specs,
            "pue_model": pue_spec,
        }
        path = Path(directory)
        _write_bundle(path, "predictor", payload, arrays)
        if telemetry.enabled:
            telemetry.incr("registry.models_saved")
    return path


def load_model(directory: PathLike) -> WorkloadAwarePredictor:
    """Rebuild the fitted predictor persisted by :func:`save_model`."""
    telemetry = get_telemetry()
    with telemetry.span("registry.load"):
        payload, arrays, _manifest = _read_bundle(Path(directory), "predictor")
        try:
            config = PredictorConfig(**payload["predictor_config"])
            rank_pairs = payload["ranks"]
            wer_specs = payload["wer_models"]
        except (KeyError, TypeError) as error:
            raise RegistryError(
                f"malformed predictor payload at {directory}: {error}"
            ) from None
        if len(rank_pairs) != len(wer_specs):
            raise RegistryError(
                f"bundle at {directory} pairs {len(rank_pairs)} ranks with "
                f"{len(wer_specs)} WER models"
            )
        predictor = WorkloadAwarePredictor(config)
        for index, (pair, spec) in enumerate(zip(rank_pairs, wer_specs)):
            rank = RankLocation(int(pair[0]), int(pair[1]))
            predictor._wer_models[rank] = _restore_model(
                spec, f"wer/{index}", arrays
            )
        if payload.get("pue_model") is not None:
            predictor._pue_model = _restore_model(payload["pue_model"], "pue", arrays)
        if telemetry.enabled:
            telemetry.incr("registry.models_loaded")
    return predictor


# ---------------------------------------------------------------------------
# The versioned registry namespace.
# ---------------------------------------------------------------------------
class ModelRegistry:
    """A directory of named, versioned predictor bundles.

    Layout: ``<root>/<name>/v<N>/{manifest.json, arrays.npz}``.
    :meth:`save` allocates the next version for a name; :meth:`load`
    resolves the highest version unless one is pinned.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, '.', '_', '-'"
            )
        return name

    def _model_dir(self, name: str) -> Path:
        return self.root / self._check_name(name)

    # ------------------------------------------------------------------
    def models(self) -> List[str]:
        """Registered model names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def versions(self, name: str) -> List[str]:
        """Available versions of a model, ascending (``v1``, ``v2``, ...)."""
        model_dir = self._model_dir(name)
        if not model_dir.is_dir():
            return []
        found = [
            entry.name for entry in model_dir.iterdir()
            if entry.is_dir() and _VERSION_PATTERN.match(entry.name)
        ]
        return sorted(found, key=lambda label: int(label[1:]))

    def latest_version(self, name: str) -> str:
        """The highest registered version of a model."""
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"registry has no model named {name!r}")
        return versions[-1]

    # ------------------------------------------------------------------
    def save(self, name: str, predictor: WorkloadAwarePredictor) -> str:
        """Persist a fitted predictor under the next version; returns it."""
        versions = self.versions(name)
        next_version = f"v{int(versions[-1][1:]) + 1}" if versions else "v1"
        save_model(predictor, self._model_dir(name) / next_version)
        return next_version

    def load(
        self, name: str, version: Optional[str] = None
    ) -> WorkloadAwarePredictor:
        """Load a model by name; the highest version unless pinned."""
        if version is None:
            version = self.latest_version(name)
        elif version not in self.versions(name):
            raise RegistryError(
                f"registry has no version {version!r} of model {name!r}"
            )
        return load_model(self._model_dir(name) / version)

    def path(self, name: str, version: Optional[str] = None) -> Path:
        """Bundle directory of a model version (default: latest)."""
        if version is None:
            version = self.latest_version(name)
        return self._model_dir(name) / version
