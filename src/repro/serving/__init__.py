"""Prediction-as-a-service: model registry and an in-process serving facade.

The paper's end product is a trained WER/PUE predictor; this package is
the layer that keeps it alive past the training process and serves it at
scale:

* :mod:`repro.serving.serialization` — fitted-state capture/restore for
  every ``repro.ml`` estimator family (scaler state, flat-tree/forest
  arrays, KNN training matrices, SVM support coefficients);
* :mod:`repro.serving.registry` — the versioned on-disk model registry
  (``manifest.json`` + ``arrays.npz`` bundles, environment-stamped with
  the telemetry :func:`~repro.telemetry.report.environment_metadata`
  block) with :func:`save_model` / :func:`load_model` round-trips pinned
  bit-identical on predictions;
* :mod:`repro.serving.service` — :class:`PredictionService`, the cached
  and request-batching facade over a registry-loaded
  :class:`~repro.core.predictor.WorkloadAwarePredictor`.
"""

from repro.serving.registry import (
    MODEL_BUNDLE_SCHEMA,
    ModelRegistry,
    load_estimator,
    load_model,
    save_estimator,
    save_model,
)
from repro.serving.service import (
    PredictionService,
    PredictRequest,
    PredictResponse,
    ServiceStats,
)

__all__ = [
    "MODEL_BUNDLE_SCHEMA",
    "ModelRegistry",
    "load_estimator",
    "load_model",
    "save_estimator",
    "save_model",
    "PredictionService",
    "PredictRequest",
    "PredictResponse",
    "ServiceStats",
]
