"""Fitted-state capture and restore for ``repro.ml`` estimators.

Every estimator the :class:`~repro.core.model.DramErrorModel` pipelines
can contain is described by a :class:`_EstimatorCodec`: which
constructor parameters are plain JSON values, which are arrays, and
which *fitted* attributes must be persisted for ``predict`` to
reproduce its output bit-identically.  :func:`capture_estimator` splits
an estimator into a JSON-able spec plus a flat ``{key: ndarray}``
mapping (stored in one ``.npz`` by the registry);
:func:`restore_estimator` rebuilds the estimator from the pair.

The persisted state is deliberately the *prediction* state, not the
training state: a restored tree/forest carries the flat node arrays but
not the linked ``_Node`` structure, a restored SVR carries support
coefficients but no optimizer state.  Restored estimators therefore
predict — bit-identically — but do not expose training-only
introspection (``DecisionTreeRegressor.depth()``,
``RandomForestRegressor.estimators_``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Type

import numpy as np

from repro.errors import NotFittedError, RegistryError
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.scaling import (
    ColumnLogTransformer,
    ColumnWeightTransformer,
    MinMaxScaler,
    StandardScaler,
)
from repro.ml.svm import SVR
from repro.ml.tree import DecisionTreeRegressor

#: A JSON-able estimator description (see :func:`capture_estimator`).
EstimatorSpec = Dict[str, Any]

#: Flat array payload accompanying a spec; keys are ``<prefix>/<attr>``.
ArrayPayload = Dict[str, np.ndarray]


@dataclass(frozen=True)
class _EstimatorCodec:
    """Persistence description of one estimator class."""

    cls: Type[Any]
    #: constructor parameters stored as arrays (everything else is JSON)
    array_params: Tuple[str, ...] = ()
    #: fitted attributes stored as arrays
    fitted_arrays: Tuple[str, ...] = ()
    #: fitted attributes stored as JSON scalars (exact: json floats
    #: round-trip via shortest-repr)
    fitted_scalars: Tuple[str, ...] = ()


_CODECS: Dict[str, _EstimatorCodec] = {
    codec.cls.__name__: codec
    for codec in (
        _EstimatorCodec(StandardScaler, fitted_arrays=("mean_", "scale_")),
        _EstimatorCodec(MinMaxScaler, fitted_arrays=("min_", "range_")),
        _EstimatorCodec(ColumnLogTransformer),
        _EstimatorCodec(ColumnWeightTransformer, array_params=("weights",)),
        _EstimatorCodec(KNeighborsRegressor, fitted_arrays=("X_train_", "y_train_")),
        _EstimatorCodec(
            SVR,
            fitted_arrays=("X_train_", "beta_", "support_"),
            fitted_scalars=("intercept_", "gamma_", "n_iter_"),
        ),
        _EstimatorCodec(
            DecisionTreeRegressor,
            fitted_arrays=(
                "feature_", "threshold_", "children_left_",
                "children_right_", "value_",
            ),
            fitted_scalars=("n_features_",),
        ),
        _EstimatorCodec(
            RandomForestRegressor,
            fitted_arrays=(
                "_roots_", "_feature_", "_threshold_", "_left_", "_right_",
                "_value_",
            ),
            fitted_scalars=("n_features_",),
        ),
    )
}


def _json_safe(value: Any, context: str) -> Any:
    """Coerce a constructor parameter to a JSON-representable value."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        value = value.item()
    if isinstance(value, tuple):
        value = list(value)
    if isinstance(value, list):
        return [_json_safe(item, context) for item in value]
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        raise RegistryError(
            f"{context}: parameter value {value!r} is not JSON-serializable"
        ) from None
    return value


def _fitted_attr(estimator: Any, attribute: str) -> Any:
    try:
        return getattr(estimator, attribute)
    except AttributeError:
        raise NotFittedError(
            f"cannot persist unfitted {type(estimator).__name__} "
            f"(missing {attribute!r})"
        ) from None


def capture_estimator(
    estimator: Any, prefix: str, arrays: ArrayPayload
) -> EstimatorSpec:
    """Split a fitted estimator into a JSON spec + array entries.

    ``arrays`` is filled in place under ``<prefix>/...`` keys;
    pipelines recurse with the step name appended to the prefix.
    """
    if isinstance(estimator, Pipeline):
        steps: List[Dict[str, Any]] = []
        for name, step in estimator.steps:
            steps.append({
                "name": name,
                "estimator": capture_estimator(step, f"{prefix}/{name}", arrays),
            })
        return {"type": "Pipeline", "steps": steps}

    codec = _CODECS.get(type(estimator).__name__)
    if codec is None or not isinstance(estimator, codec.cls):
        raise RegistryError(
            f"no serialization codec for estimator type "
            f"{type(estimator).__name__!r}"
        )
    params = dict(estimator.get_params())
    for name in codec.array_params:
        arrays[f"{prefix}/param/{name}"] = np.asarray(params.pop(name))
    spec: EstimatorSpec = {
        "type": type(estimator).__name__,
        "params": {
            name: _json_safe(value, f"{type(estimator).__name__}.{name}")
            for name, value in params.items()
        },
    }
    for name in codec.fitted_arrays:
        arrays[f"{prefix}/{name}"] = np.asarray(_fitted_attr(estimator, name))
    if codec.fitted_scalars:
        spec["fitted_scalars"] = {
            name: _json_safe(
                _fitted_attr(estimator, name), f"{type(estimator).__name__}.{name}"
            )
            for name in codec.fitted_scalars
        }
    return spec


def _array_for(arrays: ArrayPayload, key: str, context: str) -> np.ndarray:
    try:
        return arrays[key]
    except KeyError:
        raise RegistryError(
            f"{context}: bundle is missing array {key!r} "
            "(corrupted or truncated arrays.npz)"
        ) from None


def restore_estimator(
    spec: EstimatorSpec, prefix: str, arrays: ArrayPayload
) -> Any:
    """Rebuild a fitted estimator from :func:`capture_estimator` output."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise RegistryError(f"malformed estimator spec at {prefix!r}: {spec!r}")
    type_name = spec["type"]
    if type_name == "Pipeline":
        try:
            entries = list(spec["steps"])
        except (KeyError, TypeError):
            raise RegistryError(
                f"malformed Pipeline spec at {prefix!r} (no steps list)"
            ) from None
        steps = [
            (
                entry["name"],
                restore_estimator(
                    entry["estimator"], f"{prefix}/{entry['name']}", arrays
                ),
            )
            for entry in entries
        ]
        pipeline = Pipeline(steps)
        # Only fitted estimators are persisted, so the restored pipeline
        # is fitted by construction.
        pipeline.fitted_ = True
        return pipeline

    codec = _CODECS.get(type_name)
    if codec is None:
        raise RegistryError(f"unknown estimator type {type_name!r} in bundle")
    params = dict(spec.get("params", {}))
    for name in codec.array_params:
        params[name] = _array_for(arrays, f"{prefix}/param/{name}", type_name)
    try:
        estimator = codec.cls(**params)
    except TypeError as error:
        raise RegistryError(
            f"cannot construct {type_name} from bundle parameters: {error}"
        ) from None
    for name in codec.fitted_arrays:
        setattr(estimator, name, _array_for(arrays, f"{prefix}/{name}", type_name))
    scalars = spec.get("fitted_scalars", {})
    for name in codec.fitted_scalars:
        if name not in scalars:
            raise RegistryError(
                f"{type_name}: bundle is missing fitted scalar {name!r}"
            )
        setattr(estimator, name, scalars[name])
    return estimator
