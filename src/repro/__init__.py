"""Workload-Aware DRAM Error Prediction using Machine Learning — reproduction.

This package reproduces Mukhanov et al., IISWC 2019: a characterization
of DRAM error behaviour under relaxed refresh period / lowered voltage /
elevated temperature on an ARMv8 server, and a machine-learning model
that predicts the word error rate (WER) and the probability of an
uncorrectable error (PUE) from program-inherent features.

Quickstart::

    from repro import (
        run_default_campaign, WorkloadAwarePredictor, OperatingPoint,
    )

    campaign = run_default_campaign()
    predictor = WorkloadAwarePredictor().fit(campaign)
    result = predictor.predict("memcached", OperatingPoint.relaxed(2.283, 50.0))
    print(result.memory_wer, result.pue)

The prediction API is batch-first: ``predict`` is a thin wrapper over
``predict_batch`` (arrays in, a frozen result batch out) and
``predict_grid`` sweeps whole operating-point grids columnarly.  Fitted
predictors persist to a versioned on-disk registry and serve behind a
cached, request-batching facade::

    from repro import ModelRegistry, PredictionService

    registry = ModelRegistry("models/")
    registry.save("wer", predictor)            # -> "v1"
    with PredictionService(registry.load("wer")) as service:
        response = service.predict("memcached", OperatingPoint.relaxed(2.283, 50.0))
        print(response.memory_wer, service.stats().hit_rate)

Every module logs under the ``repro.*`` logger hierarchy; the library
installs only a ``NullHandler`` (standard library practice), so nothing
is printed unless the application configures logging.  Runtime telemetry
(spans, counters, run reports) lives in :mod:`repro.telemetry` and is a
no-op unless a session is opened::

    from repro.telemetry import RunReport, telemetry_session

    with telemetry_session() as tel:
        campaign = run_default_campaign(parallel=4)
    print(RunReport.capture(tel).render())
"""

import logging as _logging

# Library logging convention: a NullHandler on the package root, so
# `repro.*` loggers never print unless the application opts in.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.characterization import (
    CampaignConfig,
    CampaignResult,
    CharacterizationCampaign,
    CharacterizationExperiment,
    XGene2Server,
    run_default_campaign,
)
from repro.core import (
    AccuracyEvaluator,
    ConventionalErrorModel,
    DramErrorModel,
    ModelConfig,
    PredictionBatch,
    PredictionGrid,
    WorkloadAwarePredictor,
    build_pue_dataset,
    build_wer_dataset,
    get_feature_set,
    run_correlation_study,
)
from repro.dram import (
    CellArraySimulator,
    OperatingPoint,
    SecdedCode,
    StatisticalErrorModel,
    VariationProfile,
    WorkloadBehavior,
)
from repro.errors import RegistryError
from repro.profiling import WorkloadProfiler, profile_workload
from repro.serving import (
    ModelRegistry,
    PredictionService,
    PredictRequest,
    PredictResponse,
    load_model,
    save_model,
)
from repro.telemetry import (
    RunReport,
    Telemetry,
    TelemetrySnapshot,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.workloads import available_workloads, campaign_workload_names, create_workload

__version__ = "1.0.0"

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CharacterizationCampaign",
    "CharacterizationExperiment",
    "XGene2Server",
    "run_default_campaign",
    "AccuracyEvaluator",
    "ConventionalErrorModel",
    "DramErrorModel",
    "ModelConfig",
    "PredictionBatch",
    "PredictionGrid",
    "WorkloadAwarePredictor",
    "build_pue_dataset",
    "build_wer_dataset",
    "get_feature_set",
    "run_correlation_study",
    "RegistryError",
    "ModelRegistry",
    "PredictionService",
    "PredictRequest",
    "PredictResponse",
    "load_model",
    "save_model",
    "CellArraySimulator",
    "OperatingPoint",
    "SecdedCode",
    "StatisticalErrorModel",
    "VariationProfile",
    "WorkloadBehavior",
    "WorkloadProfiler",
    "profile_workload",
    "RunReport",
    "Telemetry",
    "TelemetrySnapshot",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "available_workloads",
    "campaign_workload_names",
    "create_workload",
    "__version__",
]
