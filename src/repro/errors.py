"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or an inconsistent configuration was supplied."""


class NotFittedError(ReproError):
    """A model was asked to predict before :meth:`fit` was called."""


class DataError(ReproError):
    """Training or profiling data is malformed (shape/NaN/empty)."""


class SimulationError(ReproError):
    """The DRAM / memory-system simulation reached an invalid state."""


class WorkloadError(ReproError):
    """A workload could not be constructed or executed."""


class CharacterizationError(ReproError):
    """A characterization experiment or campaign failed."""


class RegistryError(ReproError):
    """A model-registry bundle is missing, corrupted or unloadable."""
