"""Runtime telemetry: spans, counters and cross-process run reports.

The instrumentation layer behind every hot path of the reproduction —
the cell-array simulator, the statistical grid engine, campaigns
(sequential and parallel), dataset assembly and the ``ml/`` estimators.
See :mod:`repro.telemetry.core` for the registry semantics,
:mod:`repro.telemetry.snapshot` for the picklable merge types, and
:mod:`repro.telemetry.report` for rendering.

Typical use::

    from repro.telemetry import RunReport, telemetry_session

    with telemetry_session() as tel:
        result = campaign.run(parallel=4)
    print(RunReport.capture(tel).render())
"""

from repro.telemetry.core import (
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.telemetry.report import (
    BENCH_ARTIFACT_NAME,
    RUN_REPORT_ARTIFACT_NAME,
    RUN_REPORT_SCHEMA,
    RunReport,
    environment_metadata,
)
from repro.telemetry.snapshot import (
    HistogramSummary,
    SpanSnapshot,
    TelemetrySnapshot,
)

__all__ = [
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "TelemetrySnapshot",
    "SpanSnapshot",
    "HistogramSummary",
    "RunReport",
    "environment_metadata",
    "RUN_REPORT_SCHEMA",
    "BENCH_ARTIFACT_NAME",
    "RUN_REPORT_ARTIFACT_NAME",
]
