"""Picklable telemetry state: histogram summaries, span trees, snapshots.

These are the objects that cross process boundaries: a
``ProcessPoolExecutor`` worker builds its own live
:class:`~repro.telemetry.core.Telemetry`, reduces it to a
:class:`TelemetrySnapshot` and ships that home; the parent merges worker
snapshots (in workload order) into its own registry.  Everything here is
plain-dataclass state with well-defined, associative ``merge``
semantics:

* counters add;
* gauges take the right-hand (most recently merged) value;
* histogram summaries combine count/sum/min/max;
* span trees merge recursively by name — counts and total wall time
  add, min/max widen — with deterministic child order (left operand's
  order first, unseen names appended in right-operand order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class HistogramSummary:
    """Summary statistics of every value observed under one name."""

    count: int
    sum: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def including(self, value: float) -> "HistogramSummary":
        return HistogramSummary(
            count=self.count + 1,
            sum=self.sum + value,
            min=min(self.min, value),
            max=max(self.max, value),
        )

    def merge(self, other: "HistogramSummary") -> "HistogramSummary":
        if not other.count:
            return self
        if not self.count:
            return other
        return HistogramSummary(
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    def to_json_dict(self) -> Dict[str, float]:
        return {
            "count": self.count, "sum": self.sum,
            "min": self.min, "max": self.max, "mean": self.mean,
        }


@dataclass(frozen=True)
class SpanSnapshot:
    """One aggregated node of a frozen span tree."""

    name: str
    count: int
    total_s: float
    min_s: float
    max_s: float
    children: List["SpanSnapshot"] = field(default_factory=list)

    def child(self, name: str) -> Optional["SpanSnapshot"]:
        for node in self.children:
            if node.name == name:
                return node
        return None

    def merge(self, other: "SpanSnapshot") -> "SpanSnapshot":
        if other.name != self.name:
            raise ValueError(
                f"cannot merge span {other.name!r} into {self.name!r}"
            )
        return SpanSnapshot(
            name=self.name,
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            min_s=(
                min(self.min_s, other.min_s)
                if self.count and other.count
                else (self.min_s if self.count else other.min_s)
            ),
            max_s=max(self.max_s, other.max_s),
            children=_merge_span_lists(self.children, other.children),
        )

    def to_json_dict(self) -> Dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "children": [child.to_json_dict() for child in self.children],
        }


def _merge_span_lists(
    left: List[SpanSnapshot], right: List[SpanSnapshot]
) -> List[SpanSnapshot]:
    by_name = {span.name: span for span in left}
    merged = list(left)
    for span in right:
        existing = by_name.get(span.name)
        if existing is None:
            by_name[span.name] = span
            merged.append(span)
        else:
            combined = existing.merge(span)
            by_name[span.name] = combined
            merged[merged.index(existing)] = combined
    return merged


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable, picklable copy of one registry's metrics and span tree."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSummary] = field(default_factory=dict)
    spans: List[SpanSnapshot] = field(default_factory=list)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Combine two snapshots (associative; see the module docstring)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, summary in other.histograms.items():
            existing = histograms.get(name)
            histograms[name] = (
                summary if existing is None else existing.merge(summary)
            )
        return TelemetrySnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            spans=_merge_span_lists(self.spans, other.spans),
        )

    # -- lookup helpers ----------------------------------------------------
    def find_span(self, path: str) -> Optional[SpanSnapshot]:
        """Span node at a ``/``-separated path from the root, or ``None``."""
        nodes = self.spans
        found: Optional[SpanSnapshot] = None
        for part in path.split("/"):
            found = next((n for n in nodes if n.name == part), None)
            if found is None:
                return None
            nodes = found.children
        return found

    def span_counts(self) -> Dict[str, int]:
        """Flat ``{"a/b/c": count}`` view of the whole span tree."""
        counts: Dict[str, int] = {}

        def visit(node: SpanSnapshot, prefix: str) -> None:
            path = f"{prefix}/{node.name}" if prefix else node.name
            counts[path] = counts.get(path, 0) + node.count
            for child in node.children:
                visit(child, path)

        for node in self.spans:
            visit(node, "")
        return counts
