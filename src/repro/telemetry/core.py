"""Thread-safe runtime telemetry: counters, gauges, histograms and spans.

A :class:`Telemetry` object is a registry of named metrics plus an
aggregated span tree:

* **counters** accumulate (``incr``) — words read, grid cells sampled,
  CV folds run;
* **gauges** record the latest value (``gauge``) — array sizes,
  worker counts;
* **histograms** keep summary statistics (count/sum/min/max) of every
  observed value (``observe`` / ``observe_array``) — per-burst error
  counts, dataset targets;
* **spans** (``span``) are monotonic-clock timed scopes that nest into a
  tree; spans with the same name under the same parent aggregate
  (count, total/min/max wall time), so a campaign that sweeps the same
  workload grid twice shows one node with ``count == 2``.

No-op mode
----------
The default registry is *disabled*: every mutator returns after one
attribute check and ``span`` hands back a shared null context manager,
so instrumented hot paths run within noise of their uninstrumented
selves (pinned by ``benchmarks/test_telemetry_overhead.py``).
Instrumentation must never change results either way — telemetry draws
no random numbers and imposes no ordering (pinned by
``tests/test_telemetry_equivalence.py``).

Cross-process use
-----------------
A :class:`Telemetry` holds locks and thread-local state, so it does not
pickle.  Workers build their own registry, run, and ship home a
picklable :class:`~repro.telemetry.snapshot.TelemetrySnapshot`; the
parent grafts it under its current span with :meth:`merge_snapshot`.

The process-wide *active* registry is managed by :func:`get_telemetry` /
:func:`set_telemetry` / :func:`telemetry_session`; library code always
looks the registry up at call time, never at import time.
"""

from __future__ import annotations

import contextlib
import threading
import time
from types import TracebackType
from typing import Dict, Iterator, Optional, Type, Union

import numpy as np
import numpy.typing as npt

from repro.telemetry.snapshot import (
    HistogramSummary,
    SpanSnapshot,
    TelemetrySnapshot,
)


class _SpanNode:
    """One node of the live (mutable) aggregated span tree."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.children: Dict[str, "_SpanNode"] = {}

    def snapshot(self) -> SpanSnapshot:
        return SpanSnapshot(
            name=self.name,
            count=self.count,
            total_s=self.total_s,
            min_s=self.min_s if self.count else 0.0,
            max_s=self.max_s,
            children=[child.snapshot() for child in self.children.values()],
        )


class _Span:
    """Context manager for one timed scope of an enabled registry."""

    __slots__ = ("_telemetry", "_name", "_node", "_parent", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Span":
        telemetry = self._telemetry
        parent = telemetry._current_node()
        with telemetry._lock:
            node = parent.children.get(self._name)
            if node is None:
                node = parent.children[self._name] = _SpanNode(self._name)
        self._parent = parent
        self._node = node
        telemetry._tls.node = node
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        elapsed = time.perf_counter() - self._start
        telemetry = self._telemetry
        telemetry._tls.node = self._parent
        node = self._node
        with telemetry._lock:
            node.count += 1
            node.total_s += elapsed
            if elapsed < node.min_s:
                node.min_s = elapsed
            if elapsed > node.max_s:
                node.max_s = elapsed
        return False


class _NullSpan:
    """Shared no-op context manager handed out by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Thread-safe registry of counters, gauges, histograms and spans."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._root = _SpanNode("")
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSummary] = {}

    # -- span tree ---------------------------------------------------------
    def _current_node(self) -> _SpanNode:
        node = getattr(self._tls, "node", None)
        return node if node is not None else self._root

    def span(self, name: str) -> Union["_Span", "_NullSpan"]:
        """Timed scope context manager; spans nest into the registry's tree."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    # -- metrics -----------------------------------------------------------
    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of the named gauge."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one value into the named histogram summary."""
        if not self.enabled:
            return
        value = float(value)
        with self._lock:
            summary = self._histograms.get(name)
            if summary is None:
                self._histograms[name] = HistogramSummary(
                    count=1, sum=value, min=value, max=value
                )
            else:
                self._histograms[name] = summary.including(value)

    def observe_array(self, name: str, values: npt.ArrayLike) -> None:
        """Fold a whole array of values into the named histogram summary."""
        if not self.enabled:
            return
        arr = np.asarray(values, dtype=float).ravel()
        if not arr.size:
            return
        batch = HistogramSummary(
            count=int(arr.size), sum=float(arr.sum()),
            min=float(arr.min()), max=float(arr.max()),
        )
        with self._lock:
            summary = self._histograms.get(name)
            self._histograms[name] = batch if summary is None else summary.merge(batch)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        """Picklable, immutable copy of every metric and the span tree."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms=dict(self._histograms),
                spans=[child.snapshot() for child in self._root.children.values()],
            )

    def merge_snapshot(self, snapshot: Optional[TelemetrySnapshot]) -> None:
        """Graft a worker's snapshot under the caller's current span.

        Counters add, gauges take the snapshot's value, histograms
        combine, and the snapshot's root spans merge into the children
        of the currently active span (the root if none is active) — so a
        parent that merges worker snapshots inside ``span("campaign.run")``
        reconstructs the tree shape an in-process run would have produced.
        Merging is deterministic: existing names keep their order,
        unseen names append in snapshot order.
        """
        if snapshot is None or not self.enabled:
            return
        parent = self._current_node()
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.gauges)
            for name, summary in snapshot.histograms.items():
                existing = self._histograms.get(name)
                self._histograms[name] = (
                    summary if existing is None else existing.merge(summary)
                )
            for span in snapshot.spans:
                self._merge_span(parent, span)

    @staticmethod
    def _merge_span(parent: _SpanNode, span: SpanSnapshot) -> None:
        node = parent.children.get(span.name)
        if node is None:
            node = parent.children[span.name] = _SpanNode(span.name)
        node.count += span.count
        node.total_s += span.total_s
        if span.count and span.min_s < node.min_s:
            node.min_s = span.min_s
        if span.max_s > node.max_s:
            node.max_s = span.max_s
        for child in span.children:
            Telemetry._merge_span(node, child)

    def reset(self) -> None:
        """Drop every metric and span (the enabled flag is unchanged)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._root = _SpanNode("")
            self._tls = threading.local()


#: The default registry: always present, permanently disabled, so library
#: code can call ``get_telemetry().incr(...)`` unconditionally.
_DISABLED = Telemetry(enabled=False)
_active = _DISABLED
_active_lock = threading.Lock()


def get_telemetry() -> Telemetry:
    """The process-wide active registry (a disabled no-op by default)."""
    return _active


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` as the active registry; returns the previous one.

    ``None`` restores the built-in disabled registry.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = telemetry if telemetry is not None else _DISABLED
    return previous


@contextlib.contextmanager
def telemetry_session(enabled: bool = True) -> Iterator[Telemetry]:
    """Scoped registry: install a fresh :class:`Telemetry`, restore on exit.

    >>> with telemetry_session() as tel:
    ...     campaign.run()
    >>> report = RunReport.capture(tel)
    """
    telemetry = Telemetry(enabled=enabled)
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
