"""Run reports: environment-stamped telemetry renderers.

A :class:`RunReport` freezes one telemetry snapshot together with the
environment that produced it (python/numpy versions, platform, git sha)
and renders it two ways:

* :meth:`RunReport.render` — a human-readable span tree plus metric
  tables, for terminals and logs;
* :meth:`RunReport.to_json_dict` — a stable-schema JSON document
  (``schema`` is versioned; keys are emitted sorted) that CI uploads as
  a per-run artifact next to the benchmark JSON.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.core import Telemetry, get_telemetry
from repro.telemetry.snapshot import SpanSnapshot, TelemetrySnapshot

#: Schema tag embedded in every JSON report; bump on breaking changes.
RUN_REPORT_SCHEMA = "repro.run_report/v1"

#: Per-PR benchmark artifact name — the single constant both
#: ``benchmarks/conftest.py`` and the CI workflow derive the default
#: artifact path from (the ``BENCH_REPORT_JSON`` env var still overrides).
BENCH_ARTIFACT_NAME = "BENCH_10.json"

#: Default name of the tier-1 run-report artifact CI uploads.
RUN_REPORT_ARTIFACT_NAME = "RUN_REPORT_7.json"


def _git_sha() -> Optional[str]:
    """Current repository commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_metadata() -> Dict[str, Optional[str]]:
    """The environment facts stamped on every report."""
    import numpy

    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": numpy.__version__,
        "platform": platform.platform(),
        "git_sha": _git_sha(),
        "argv0": sys.argv[0] if sys.argv else None,
    }


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


@dataclass(frozen=True)
class RunReport:
    """One run's telemetry, stamped with the environment that produced it."""

    snapshot: TelemetrySnapshot
    environment: Dict[str, Optional[str]] = field(default_factory=dict)

    @classmethod
    def capture(cls, telemetry: Optional[Telemetry] = None) -> "RunReport":
        """Freeze the given (default: active) registry into a report."""
        registry = telemetry if telemetry is not None else get_telemetry()
        return cls(snapshot=registry.snapshot(), environment=environment_metadata())

    # -- renderers ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable report: environment, span tree, metric tables."""
        lines = ["== run report =="]
        for key in sorted(self.environment):
            lines.append(f"  {key}: {self.environment[key]}")
        snapshot = self.snapshot
        if snapshot.spans:
            lines.append("-- spans (count, total, mean) --")
            for span in snapshot.spans:
                self._render_span(span, 1, lines)
        if snapshot.counters:
            lines.append("-- counters --")
            for name in sorted(snapshot.counters):
                lines.append(f"  {name}: {snapshot.counters[name]:g}")
        if snapshot.gauges:
            lines.append("-- gauges --")
            for name in sorted(snapshot.gauges):
                lines.append(f"  {name}: {snapshot.gauges[name]:g}")
        if snapshot.histograms:
            lines.append("-- histograms (count / mean / min..max) --")
            for name in sorted(snapshot.histograms):
                h = snapshot.histograms[name]
                lines.append(
                    f"  {name}: n={h.count} mean={h.mean:g} "
                    f"min={h.min:g} max={h.max:g}"
                )
        return "\n".join(lines)

    @staticmethod
    def _render_span(span: SpanSnapshot, depth: int, lines: List[str]) -> None:
        mean = span.total_s / span.count if span.count else 0.0
        lines.append(
            f"{'  ' * depth}{span.name}  x{span.count}  "
            f"{_format_seconds(span.total_s)}  (mean {_format_seconds(mean)})"
        )
        for child in span.children:
            RunReport._render_span(child, depth + 1, lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """Stable-schema JSON document (see :data:`RUN_REPORT_SCHEMA`)."""
        snapshot = self.snapshot
        return {
            "schema": RUN_REPORT_SCHEMA,
            "environment": dict(sorted(self.environment.items())),
            "counters": dict(sorted(snapshot.counters.items())),
            "gauges": dict(sorted(snapshot.gauges.items())),
            "histograms": {
                name: snapshot.histograms[name].to_json_dict()
                for name in sorted(snapshot.histograms)
            },
            "spans": [span.to_json_dict() for span in snapshot.spans],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
