"""DRAM reliability simulation substrate.

Two complementary simulators are provided:

* :class:`~repro.dram.cells.CellArraySimulator` — an explicit,
  mechanism-level cell array (retention sampling, VRT, row-hammer
  interference, real SECDED decoding) for small arrays;
* :class:`~repro.dram.statistical.StatisticalErrorModel` — a calibrated
  closed-form model used by the characterization campaigns that need the
  paper's 8 GB footprints.
"""

from repro.dram.address_map import AddressMapper
from repro.dram.calibration import (
    DEFAULT_CALIBRATION,
    DramCalibration,
    RetentionCalibration,
    UeCalibration,
    WorkloadEffectCalibration,
)
from repro.dram.cells import BatchReadResult, CellArrayConfig, CellArraySimulator
from repro.dram.ecc import (
    BatchDecodeResult,
    DecodeResult,
    ErrorClass,
    SecdedCode,
    bits_to_words,
    classify_bit_errors,
    words_to_bits,
)
from repro.dram.geometry import CellLocation, DramGeometry, RankLocation, small_geometry
from repro.dram.operating import OperatingPoint
from repro.dram.records import ErrorLog, ErrorRecord
from repro.dram.retention import (
    bit_failure_probability,
    median_retention_s,
    retention_halving_temperature,
    sample_retention_times,
)
from repro.dram.statistical import StatisticalErrorModel, WorkloadBehavior
from repro.dram.variation import (
    DEFAULT_RANK_UE_WEIGHTS,
    DEFAULT_RANK_WER_FACTORS,
    RankProfile,
    VariationProfile,
)

__all__ = [
    "AddressMapper",
    "DEFAULT_CALIBRATION",
    "DramCalibration",
    "RetentionCalibration",
    "UeCalibration",
    "WorkloadEffectCalibration",
    "BatchDecodeResult",
    "BatchReadResult",
    "CellArrayConfig",
    "CellArraySimulator",
    "DecodeResult",
    "ErrorClass",
    "SecdedCode",
    "bits_to_words",
    "classify_bit_errors",
    "words_to_bits",
    "CellLocation",
    "DramGeometry",
    "RankLocation",
    "small_geometry",
    "OperatingPoint",
    "ErrorLog",
    "ErrorRecord",
    "bit_failure_probability",
    "median_retention_s",
    "retention_halving_temperature",
    "sample_retention_times",
    "StatisticalErrorModel",
    "WorkloadBehavior",
    "DEFAULT_RANK_UE_WEIGHTS",
    "DEFAULT_RANK_WER_FACTORS",
    "RankProfile",
    "VariationProfile",
]
