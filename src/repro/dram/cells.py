"""Explicit cell-array DRAM simulator.

This is the "FPGA testbed in software": a small DRAM array whose
individual cells have sampled retention times, true-/anti-cell charge
polarity, variable retention time (VRT) and cell-to-cell interference.
It exists to (a) validate the closed-form statistical model used for the
full-scale campaigns against a mechanism-level simulation, and (b) let
unit tests and examples exercise real SECDED decoding on real bit flips.

Semantics
---------
* Every 64-bit word is stored as a 72-bit SECDED codeword.
* A cell retains its charge for ``retention`` seconds after the last
  recharge; a recharge happens on every write, on every read of the word
  (reading senses and rewrites the row) and on every auto-refresh
  (period ``TREFP``).
* Once a cell has gone longer than its retention time without a
  recharge, its stored value decays towards the cell's discharge
  polarity.  If the stored bit already equals the discharge polarity the
  decay is invisible — this is how the data pattern (entropy) affects
  the observed error rate.
* Accessing a row disturbs its physical neighbours (row hammer): the
  neighbours' effective retention shrinks with the number of
  disturbances accumulated since their last recharge.

Batch semantics
---------------
``write_batch`` / ``read_batch`` are the hot path: decay, SECDED
decoding, scrub-on-read, recharge bookkeeping and error logging are
applied to all requested words with array operations, and the scalar
``read`` / ``write`` / ``fill`` / ``sweep_read`` route through them.  A
batch models one burst access: every word in the batch is sensed against
the array state at the start of the burst, then all recharges land and
all row-hammer disturbances accrue.  (A sequential loop of scalar calls
additionally lets earlier accesses disturb later ones within the same
burst; at the default interference strength the difference is a
sub-percent retention shift.)  Locations within one batch must be
unique — duplicated words would alias the in-place bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import units
from repro.dram.calibration import DEFAULT_CALIBRATION, DramCalibration
from repro.dram.ecc import (
    BatchDecodeResult,
    ERROR_CLASS_CODES,
    ERROR_CLASS_ORDER,
    DecodeResult,
    ErrorClass,
    SecdedCode,
)
from repro.dram.geometry import CellLocation, DramGeometry, small_geometry
from repro.dram.records import ErrorLog
from repro.dram.retention import sample_retention_times
from repro.errors import ConfigurationError, SimulationError

_NO_ERROR_CODE = ERROR_CLASS_CODES[ErrorClass.NO_ERROR]
_CORRECTED_CODE = ERROR_CLASS_CODES[ErrorClass.CORRECTED]
#: decode-code -> ErrorClass lookup as an object array, so a whole batch of
#: error codes maps to classes in one fancy-indexing operation
_ERROR_CLASS_BY_CODE = np.array(ERROR_CLASS_ORDER, dtype=object)


@dataclass
class CellArrayConfig:
    """Configuration of the explicit cell-array simulator."""

    geometry: DramGeometry
    trefp_s: float = 0.064
    vdd_v: float = units.NOMINAL_VDD_V
    temperature_c: float = 50.0
    #: strength of the row-hammer disturbance: fractional retention loss per
    #: disturbance of a neighbouring row within one refresh window
    interference_strength: float = 2e-4
    #: probability that a cell is a VRT cell whose retention occasionally
    #: collapses by an order of magnitude
    vrt_fraction: float = 0.01
    #: fraction of true-cells (cells that discharge towards logic 0); DRAM
    #: arrays are predominantly true-cell, which is why data patterns with
    #: more charged bits (higher entropy) expose more retention failures
    true_cell_fraction: float = 0.8
    #: retention calibration; tests and small-scale examples may substitute a
    #: weaker population so failures become observable in tiny arrays
    calibration: DramCalibration = DEFAULT_CALIBRATION
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trefp_s <= 0:
            raise ConfigurationError("trefp_s must be positive")
        if self.interference_strength < 0:
            raise ConfigurationError("interference_strength must be non-negative")
        if not 0.0 <= self.vrt_fraction <= 1.0:
            raise ConfigurationError("vrt_fraction must be in [0, 1]")
        if not 0.0 <= self.true_cell_fraction <= 1.0:
            raise ConfigurationError("true_cell_fraction must be in [0, 1]")


@dataclass(frozen=True)
class BatchReadResult:
    """Outcome of one burst read of many words."""

    locations: Sequence[CellLocation]
    decode: BatchDecodeResult

    def __len__(self) -> int:
        return len(self.decode)

    def counts(self) -> Dict[ErrorClass, int]:
        """Words per error class, including :attr:`ErrorClass.NO_ERROR`."""
        return self.decode.counts()

    def error_locations(self) -> List[CellLocation]:
        """Locations whose read produced any ECC event."""
        rows = np.flatnonzero(self.decode.error_codes != _NO_ERROR_CODE)
        return [self.locations[i] for i in rows]


class CellArraySimulator:
    """Mechanism-level simulation of a (small) ECC-protected DRAM array."""

    def __init__(self, config: Optional[CellArrayConfig] = None) -> None:
        self.config = config or CellArrayConfig(geometry=small_geometry())
        self.geometry = self.config.geometry
        self._rng = np.random.default_rng(self.config.seed)
        self._code = SecdedCode()

        n_words = self.geometry.total_words
        n_cells = n_words * units.CODEWORD_BITS
        if n_cells > 50_000_000:
            raise ConfigurationError(
                "cell-array simulation is meant for small geometries; use the "
                "statistical model for full-scale campaigns"
            )

        # Per-cell state, stored as (words, 72) arrays.
        self.codewords = np.zeros((n_words, units.CODEWORD_BITS), dtype=np.uint8)
        retention = sample_retention_times(
            n_cells,
            self.config.temperature_c,
            self.config.vdd_v,
            calibration=self.config.calibration.retention,
            rng=self._rng,
        ).reshape(n_words, units.CODEWORD_BITS)
        # VRT cells: occasionally an order of magnitude weaker.
        vrt_mask = self._rng.random((n_words, units.CODEWORD_BITS)) < self.config.vrt_fraction
        self.base_retention_s = retention
        self.vrt_mask = vrt_mask
        #: discharge polarity of each cell (true-cell decays to 0, anti-cell to 1)
        self.discharge_value = (
            self._rng.random((n_words, units.CODEWORD_BITS))
            >= self.config.true_cell_fraction
        ).astype(np.uint8)

        # Per-word bookkeeping.
        self.last_recharge_s = np.zeros(n_words)
        self.max_exposure_s = np.zeros(n_words)   #: worst unrefreshed gap since last write
        self.word_written = np.zeros(n_words, dtype=bool)
        #: row-hammer disturbance accumulated per word since its last recharge
        self.disturbance = np.zeros(n_words)

        self.now_s = 0.0
        self.error_log = ErrorLog()

    # ------------------------------------------------------------------
    def _word_index(self, location: CellLocation) -> int:
        return self.geometry.word_index(location)

    def _word_indices(self, locations: Sequence[CellLocation]) -> np.ndarray:
        indices = np.fromiter(
            (self.geometry.word_index(location) for location in locations),
            dtype=np.int64,
            count=len(locations),
        )
        if np.unique(indices).size != indices.size:
            raise ConfigurationError(
                "batch operations require unique locations: duplicated words "
                "would alias the in-place recharge/scrub bookkeeping"
            )
        return indices

    def advance_time(self, delta_s: float) -> None:
        """Advance the simulation clock; auto-refresh bounds cell exposure."""
        if delta_s < 0:
            raise SimulationError("time cannot move backwards")
        self.now_s += delta_s

    def _record_exposure(self, words: np.ndarray) -> None:
        """Account the un-recharged gap ending now for each of ``words``.

        Auto-refresh recharges every cell at least once per TREFP, so the
        worst-case exposure of any single retention window is bounded by
        TREFP even when the word is never accessed.
        """
        gaps = self.now_s - self.last_recharge_s[words]
        exposure = np.minimum(gaps, self.config.trefp_s)
        self.max_exposure_s[words] = np.maximum(self.max_exposure_s[words], exposure)

    def _effective_retention(self, words: np.ndarray) -> np.ndarray:
        """Per-cell effective retention for a batch of words, as (N, 72)."""
        # Advanced indexing already yields a fresh array, safe to mutate.
        retention = self.base_retention_s[words]
        retention[self.vrt_mask[words]] *= 0.1
        denom = 1.0 + self.config.interference_strength * self.disturbance[words]
        return retention / denom[:, None]

    def _disturb_neighbour_rows(self, words: np.ndarray) -> None:
        """Row-hammer bookkeeping for a batch of accessed words.

        The word index layout is row-major within each bank, so the words
        of one physical row form one contiguous slab of ``columns_per_row``
        entries; a reshape exposes the disturbance counters row-by-row and
        ``np.add.at`` accumulates duplicate hits from the same batch.
        """
        columns = self.geometry.columns_per_row
        rows = words // columns
        row_in_bank = rows % self.geometry.rows_per_bank
        neighbours = np.concatenate([
            rows[row_in_bank > 0] - 1,
            rows[row_in_bank < self.geometry.rows_per_bank - 1] + 1,
        ])
        if neighbours.size:
            np.add.at(self.disturbance.reshape(-1, columns), neighbours, 1.0)

    def _recharge(self, words: np.ndarray) -> None:
        self.last_recharge_s[words] = self.now_s
        self.max_exposure_s[words] = 0.0
        self.disturbance[words] = 0.0

    # -- memory operations ---------------------------------------------------
    def write_batch(self, locations: Sequence[CellLocation], data_values) -> None:
        """Store one 64-bit value per location in a single burst.

        Writing recharges each word and resets its history, then the
        burst's row-hammer disturbances land on the neighbouring rows.
        """
        words = self._word_indices(locations)
        data = np.asarray(data_values)
        if data.shape != (words.size,):
            raise ConfigurationError(
                "locations and data_values must have equal length"
            )
        # encode_batch validates the 64-bit range and raises ConfigurationError.
        self.codewords[words] = self._code.encode_batch(data)
        self._recharge(words)
        self.word_written[words] = True
        self._disturb_neighbour_rows(words)

    def read_batch(self, locations: Sequence[CellLocation], workload: str = "") -> BatchReadResult:
        """Read a burst of words: decay, SECDED decode, scrub, log — vectorized.

        Reading senses whole rows, so every word is recharged; single-bit
        errors are corrected in place (scrub-on-read) while multi-bit
        corruption persists until rewritten.
        """
        words = self._word_indices(locations)
        unwritten = np.flatnonzero(~self.word_written[words])
        if unwritten.size:
            raise SimulationError(f"read of unwritten location {locations[unwritten[0]]}")

        self._record_exposure(words)
        retention = self._effective_retention(words)
        leaked = retention < self.max_exposure_s[words][:, None]
        stored = self.codewords[words]
        decayed = np.where(leaked, self.discharge_value[words], stored).astype(np.uint8)

        decode = self._code.decode_batch(decayed)
        # Error logging is columnar: classes come from one fancy-indexing pass
        # and the log ingests the whole burst at once — no per-event record
        # objects, which used to dominate saturated sweeps with dense errors.
        error_rows = np.flatnonzero(decode.error_codes != _NO_ERROR_CODE)
        if error_rows.size:
            self.error_log.append_batch(
                error_classes=_ERROR_CLASS_BY_CODE[
                    decode.error_codes[error_rows]
                ].tolist(),
                locations=[locations[row] for row in error_rows.tolist()],
                timestamp_s=self.now_s,
                workload=workload,
            )

        # Scrub-on-read: corrected words are written back as valid codewords;
        # multi-bit corruption persists (the data is lost until rewritten).
        # Clean words are already valid codewords, so re-encoding them would
        # be a bit-for-bit no-op — skip the encode work.
        scrubbed = decode.error_codes == _CORRECTED_CODE
        if scrubbed.any():
            decayed[scrubbed] = self._code.encode_batch(decode.data_bits[scrubbed])
        self.codewords[words] = decayed
        self._recharge(words)
        self._disturb_neighbour_rows(words)
        return BatchReadResult(locations=list(locations), decode=decode)

    def write(self, location: CellLocation, data: int) -> None:
        """Store a 64-bit value; writing recharges and resets the word's history."""
        if not isinstance(data, (int, np.integer)) or isinstance(data, bool):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        if not 0 <= data < (1 << units.WORD_BITS):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        self.write_batch([location], np.array([data], dtype=np.uint64))

    def read(self, location: CellLocation, workload: str = "") -> DecodeResult:
        """Read a word: apply decay, decode through ECC, log any error."""
        return self.read_batch([location], workload=workload).decode.result(0)

    # -- bulk helpers used by tests and the validation example ---------------
    def fill(self, data_values: List[int], locations: Optional[List[CellLocation]] = None) -> List[CellLocation]:
        """Write a list of values to consecutive locations; returns the locations."""
        if locations is None:
            locations = [
                self.geometry.cell_from_word_index(i) for i in range(len(data_values))
            ]
        if len(locations) != len(data_values):
            raise ConfigurationError("locations and data_values must have equal length")
        self.write_batch(locations, data_values)
        return locations

    def idle(self, duration_s: float) -> None:
        """Let the array sit idle (only auto-refresh active) for ``duration_s``."""
        self.advance_time(duration_s)

    def sweep_read(self, locations: List[CellLocation], workload: str = "") -> Dict[ErrorClass, int]:
        """Read every location once and return error counts by class."""
        counts = self.read_batch(locations, workload=workload).counts()
        return {
            ErrorClass.CORRECTED: counts[ErrorClass.CORRECTED],
            ErrorClass.UNCORRECTABLE: counts[ErrorClass.UNCORRECTABLE],
            ErrorClass.SILENT: counts[ErrorClass.SILENT],
        }

    def measured_wer(self, footprint_words: Optional[int] = None) -> float:
        """WER per Eq. 2: unique CE word locations / footprint size in words."""
        footprint = footprint_words or int(self.word_written.sum())
        if footprint <= 0:
            raise SimulationError("cannot compute WER for an empty footprint")
        return len(self.error_log.unique_word_locations(ErrorClass.CORRECTED)) / footprint
