"""Explicit cell-array DRAM simulator.

This is the "FPGA testbed in software": a small DRAM array whose
individual cells have sampled retention times, true-/anti-cell charge
polarity, variable retention time (VRT) and cell-to-cell interference.
It exists to (a) validate the closed-form statistical model used for the
full-scale campaigns against a mechanism-level simulation, and (b) let
unit tests and examples exercise real SECDED decoding on real bit flips.

Semantics
---------
* Every 64-bit word is stored as a 72-bit SECDED codeword.
* A cell retains its charge for ``retention`` seconds after the last
  recharge; a recharge happens on every write, on every read of the word
  (reading senses and rewrites the row) and on every auto-refresh
  (period ``TREFP``).
* Once a cell has gone longer than its retention time without a
  recharge, its stored value decays towards the cell's discharge
  polarity.  If the stored bit already equals the discharge polarity the
  decay is invisible — this is how the data pattern (entropy) affects
  the observed error rate.
* Accessing a row disturbs its physical neighbours (row hammer): the
  neighbours' effective retention shrinks with the number of
  disturbances accumulated since their last recharge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import units
from repro.dram.calibration import DEFAULT_CALIBRATION, DramCalibration
from repro.dram.ecc import DecodeResult, ErrorClass, SecdedCode
from repro.dram.geometry import CellLocation, DramGeometry, small_geometry
from repro.dram.records import ErrorLog, ErrorRecord
from repro.dram.retention import sample_retention_times
from repro.errors import ConfigurationError, SimulationError


@dataclass
class CellArrayConfig:
    """Configuration of the explicit cell-array simulator."""

    geometry: DramGeometry
    trefp_s: float = 0.064
    vdd_v: float = units.NOMINAL_VDD_V
    temperature_c: float = 50.0
    #: strength of the row-hammer disturbance: fractional retention loss per
    #: disturbance of a neighbouring row within one refresh window
    interference_strength: float = 2e-4
    #: probability that a cell is a VRT cell whose retention occasionally
    #: collapses by an order of magnitude
    vrt_fraction: float = 0.01
    #: fraction of true-cells (cells that discharge towards logic 0); DRAM
    #: arrays are predominantly true-cell, which is why data patterns with
    #: more charged bits (higher entropy) expose more retention failures
    true_cell_fraction: float = 0.8
    #: retention calibration; tests and small-scale examples may substitute a
    #: weaker population so failures become observable in tiny arrays
    calibration: DramCalibration = DEFAULT_CALIBRATION
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trefp_s <= 0:
            raise ConfigurationError("trefp_s must be positive")
        if self.interference_strength < 0:
            raise ConfigurationError("interference_strength must be non-negative")
        if not 0.0 <= self.vrt_fraction <= 1.0:
            raise ConfigurationError("vrt_fraction must be in [0, 1]")
        if not 0.0 <= self.true_cell_fraction <= 1.0:
            raise ConfigurationError("true_cell_fraction must be in [0, 1]")


class CellArraySimulator:
    """Mechanism-level simulation of a (small) ECC-protected DRAM array."""

    def __init__(self, config: Optional[CellArrayConfig] = None) -> None:
        self.config = config or CellArrayConfig(geometry=small_geometry())
        self.geometry = self.config.geometry
        self._rng = np.random.default_rng(self.config.seed)
        self._code = SecdedCode()

        n_words = self.geometry.total_words
        n_cells = n_words * units.CODEWORD_BITS
        if n_cells > 50_000_000:
            raise ConfigurationError(
                "cell-array simulation is meant for small geometries; use the "
                "statistical model for full-scale campaigns"
            )

        # Per-cell state, stored as (words, 72) arrays.
        self.codewords = np.zeros((n_words, units.CODEWORD_BITS), dtype=np.uint8)
        retention = sample_retention_times(
            n_cells,
            self.config.temperature_c,
            self.config.vdd_v,
            calibration=self.config.calibration.retention,
            rng=self._rng,
        ).reshape(n_words, units.CODEWORD_BITS)
        # VRT cells: occasionally an order of magnitude weaker.
        vrt_mask = self._rng.random((n_words, units.CODEWORD_BITS)) < self.config.vrt_fraction
        self.base_retention_s = retention
        self.vrt_mask = vrt_mask
        #: discharge polarity of each cell (true-cell decays to 0, anti-cell to 1)
        self.discharge_value = (
            self._rng.random((n_words, units.CODEWORD_BITS))
            >= self.config.true_cell_fraction
        ).astype(np.uint8)

        # Per-word bookkeeping.
        self.last_recharge_s = np.zeros(n_words)
        self.max_exposure_s = np.zeros(n_words)   #: worst unrefreshed gap since last write
        self.word_written = np.zeros(n_words, dtype=bool)
        #: row-hammer disturbance accumulated per word since its last recharge
        self.disturbance = np.zeros(n_words)

        self.now_s = 0.0
        self.error_log = ErrorLog()

    # ------------------------------------------------------------------
    def _word_index(self, location: CellLocation) -> int:
        return self.geometry.word_index(location)

    def advance_time(self, delta_s: float) -> None:
        """Advance the simulation clock; auto-refresh bounds cell exposure."""
        if delta_s < 0:
            raise SimulationError("time cannot move backwards")
        self.now_s += delta_s

    def _record_exposure(self, word: int) -> None:
        """Account the un-recharged gap ending now for ``word``.

        Auto-refresh recharges every cell at least once per TREFP, so the
        worst-case exposure of any single retention window is bounded by
        TREFP even when the word is never accessed.
        """
        gap = self.now_s - self.last_recharge_s[word]
        exposure = min(gap, self.config.trefp_s)
        if exposure > self.max_exposure_s[word]:
            self.max_exposure_s[word] = exposure

    def _effective_retention(self, word: int) -> np.ndarray:
        retention = self.base_retention_s[word].copy()
        retention[self.vrt_mask[word]] *= 0.1
        denom = 1.0 + self.config.interference_strength * self.disturbance[word]
        return retention / denom

    def _disturb_neighbours(self, location: CellLocation) -> None:
        for neighbour_row in (location.row - 1, location.row + 1):
            if not 0 <= neighbour_row < self.geometry.rows_per_bank:
                continue
            start = self.geometry.word_index(
                CellLocation(location.dimm, location.rank, location.bank, neighbour_row, 0)
            )
            self.disturbance[start : start + self.geometry.columns_per_row] += 1.0

    # -- memory operations ---------------------------------------------------
    def write(self, location: CellLocation, data: int) -> None:
        """Store a 64-bit value; writing recharges and resets the word's history."""
        word = self._word_index(location)
        self.codewords[word] = self._code.encode(data)
        self.last_recharge_s[word] = self.now_s
        self.max_exposure_s[word] = 0.0
        self.disturbance[word] = 0.0
        self.word_written[word] = True
        self._disturb_neighbours(location)

    def read(self, location: CellLocation, workload: str = "") -> DecodeResult:
        """Read a word: apply decay, decode through ECC, log any error.

        Reading senses the whole row, so it also recharges the word and
        scrubs single-bit errors (the corrected value is written back).
        """
        word = self._word_index(location)
        if not self.word_written[word]:
            raise SimulationError(f"read of unwritten location {location}")

        self._record_exposure(word)
        retention = self._effective_retention(word)
        leaked = retention < self.max_exposure_s[word]
        stored = self.codewords[word].copy()
        decayed = np.where(leaked, self.discharge_value[word], stored).astype(np.uint8)

        result = self._code.decode(decayed)
        if result.error_class is not ErrorClass.NO_ERROR:
            self.error_log.append(
                ErrorRecord(
                    error_class=result.error_class,
                    location=location,
                    timestamp_s=self.now_s,
                    workload=workload,
                )
            )

        # Scrub-on-read: single-bit errors are corrected in place; multi-bit
        # corruption persists (the data is lost until rewritten).
        if result.error_class in (ErrorClass.NO_ERROR, ErrorClass.CORRECTED):
            self.codewords[word] = self._code.encode(
                int(sum(int(b) << i for i, b in enumerate(result.data)))
            )
        else:
            self.codewords[word] = decayed
        self.last_recharge_s[word] = self.now_s
        self.max_exposure_s[word] = 0.0
        self.disturbance[word] = 0.0
        self._disturb_neighbours(location)
        return result

    # -- bulk helpers used by tests and the validation example ---------------
    def fill(self, data_values: List[int], locations: Optional[List[CellLocation]] = None) -> List[CellLocation]:
        """Write a list of values to consecutive locations; returns the locations."""
        if locations is None:
            locations = [
                self.geometry.cell_from_word_index(i) for i in range(len(data_values))
            ]
        if len(locations) != len(data_values):
            raise ConfigurationError("locations and data_values must have equal length")
        for location, value in zip(locations, data_values):
            self.write(location, value)
        return locations

    def idle(self, duration_s: float) -> None:
        """Let the array sit idle (only auto-refresh active) for ``duration_s``."""
        self.advance_time(duration_s)

    def sweep_read(self, locations: List[CellLocation], workload: str = "") -> Dict[ErrorClass, int]:
        """Read every location once and return error counts by class."""
        counts: Dict[ErrorClass, int] = {
            ErrorClass.CORRECTED: 0,
            ErrorClass.UNCORRECTABLE: 0,
            ErrorClass.SILENT: 0,
        }
        for location in locations:
            result = self.read(location, workload=workload)
            if result.error_class in counts:
                counts[result.error_class] += 1
        return counts

    def measured_wer(self, footprint_words: Optional[int] = None) -> float:
        """WER per Eq. 2: unique CE word locations / footprint size in words."""
        footprint = footprint_words or int(self.word_written.sum())
        if footprint <= 0:
            raise SimulationError("cannot compute WER for an empty footprint")
        return len(self.error_log.unique_word_locations(ErrorClass.CORRECTED)) / footprint
