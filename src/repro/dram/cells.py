"""Explicit cell-array DRAM simulator.

This is the "FPGA testbed in software": a small DRAM array whose
individual cells have sampled retention times, true-/anti-cell charge
polarity, variable retention time (VRT) and cell-to-cell interference.
It exists to (a) validate the closed-form statistical model used for the
full-scale campaigns against a mechanism-level simulation, and (b) let
unit tests and examples exercise real SECDED decoding on real bit flips.

Semantics
---------
* Every 64-bit word is stored as a 72-bit SECDED codeword.
* A cell retains its charge for ``retention`` seconds after the last
  recharge; a recharge happens on every write, on every read of the word
  (reading senses and rewrites the row) and on every auto-refresh
  (period ``TREFP``).
* Once a cell has gone longer than its retention time without a
  recharge, its stored value decays towards the cell's discharge
  polarity.  If the stored bit already equals the discharge polarity the
  decay is invisible — this is how the data pattern (entropy) affects
  the observed error rate.
* Accessing a row disturbs its physical neighbours (row hammer): the
  neighbours' effective retention shrinks with the number of
  disturbances accumulated since their last recharge.

Batch semantics
---------------
``write_batch`` / ``read_batch`` are the hot path: decay, SECDED
decoding, scrub-on-read, recharge bookkeeping and error logging are
applied to all requested words with array operations, and the scalar
``read`` / ``write`` / ``fill`` / ``sweep_read`` route through them.  A
batch models one burst access: every word in the batch is sensed against
the array state at the start of the burst, then all recharges land and
all row-hammer disturbances accrue.  (A sequential loop of scalar calls
additionally lets earlier accesses disturb later ones within the same
burst; at the default interference strength the difference is a
sub-percent retention shift.)  Locations within one batch must be
unique — duplicated words would alias the in-place bookkeeping.

Batch locations may be given either as a sequence of
:class:`CellLocation` objects or directly as a 1-D integer array of word
indices (``geometry.word_index`` order) — the index form is the
million-word fast path, skipping per-location Python objects entirely.

Streaming and memory
--------------------
Codewords, VRT flags and discharge polarities are stored bit-packed as
``(n_words, 2)`` uint64 lanes (see :mod:`repro.dram.ecc`), and every
bulk operation — initial retention sampling, ``write_batch``,
``read_batch`` — streams through the array in blocks of
``config.block_words`` words, so peak temporary allocation is bounded by
the block size rather than the batch size.  Streaming is exact, not an
approximation: blocks only touch their own words' state, and the one
cross-word effect (row-hammer disturbance) is applied after every block
has been sensed, which is precisely the all-at-once burst semantics
above.  Results are therefore bit-identical for any ``block_words``.

The old hard 50M-cell cap is replaced by a memory-budget check: the
simulator computes its resident bytes per word (dominated by the
per-cell float64 retention table) and refuses geometries that exceed
``config.memory_budget_bytes``, so a million-word (72M-cell) array fits
comfortably in the default 2 GiB budget while full-scale campaign
geometries are still rejected with the same guidance.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import units
from repro.dram.calibration import DEFAULT_CALIBRATION, DramCalibration
from repro.dram.ecc import (
    BatchDecodeResult,
    ERROR_CLASS_CODES,
    ERROR_CLASS_ORDER,
    DecodeResult,
    ErrorClass,
    SecdedCode,
    pack_bits,
    unpack_codewords,
)
from repro.dram.geometry import CellLocation, DramGeometry, small_geometry
from repro.dram.records import ErrorLog
from repro.dram.retention import sample_retention_times
from repro.errors import ConfigurationError, SimulationError
from repro.telemetry import get_telemetry

logger = logging.getLogger("repro.dram.cells")

_NO_ERROR_CODE = ERROR_CLASS_CODES[ErrorClass.NO_ERROR]
_UNCORRECTABLE_CODE = ERROR_CLASS_CODES[ErrorClass.UNCORRECTABLE]
_SILENT_CODE = ERROR_CLASS_CODES[ErrorClass.SILENT]
_CORRECTED_CODE = ERROR_CLASS_CODES[ErrorClass.CORRECTED]
#: decode-code -> ErrorClass lookup as an object array, so a whole batch of
#: error codes maps to classes in one fancy-indexing operation
_ERROR_CLASS_BY_CODE = np.array(ERROR_CLASS_ORDER, dtype=object)

#: Locations accepted by the batch API: CellLocation objects or word indices.
BatchLocations = Union[Sequence[CellLocation], np.ndarray]

#: Resident bytes per word of simulator state: the (72,) float64 retention
#: row dominates; three uint64 lane pairs (codeword, VRT, discharge) plus
#: float64 recharge/exposure/disturbance counters and the written flag.
_STATE_BYTES_PER_WORD = units.CODEWORD_BITS * 8 + 3 * 16 + 3 * 8 + 1


@dataclass
class CellArrayConfig:
    """Configuration of the explicit cell-array simulator."""

    geometry: DramGeometry
    trefp_s: float = 0.064
    vdd_v: float = units.NOMINAL_VDD_V
    temperature_c: float = 50.0
    #: strength of the row-hammer disturbance: fractional retention loss per
    #: disturbance of a neighbouring row within one refresh window
    interference_strength: float = 2e-4
    #: probability that a cell is a VRT cell whose retention occasionally
    #: collapses by an order of magnitude
    vrt_fraction: float = 0.01
    #: fraction of true-cells (cells that discharge towards logic 0); DRAM
    #: arrays are predominantly true-cell, which is why data patterns with
    #: more charged bits (higher entropy) expose more retention failures
    true_cell_fraction: float = 0.8
    #: retention calibration; tests and small-scale examples may substitute a
    #: weaker population so failures become observable in tiny arrays
    calibration: DramCalibration = DEFAULT_CALIBRATION
    seed: Optional[int] = None
    #: streaming block size for bulk operations; results are bit-identical
    #: for any value, only peak temporary allocation changes
    block_words: int = 65536
    #: resident-state budget replacing the old hard 50M-cell cap
    memory_budget_bytes: int = 2 * 1024 ** 3

    def __post_init__(self) -> None:
        if self.trefp_s <= 0:
            raise ConfigurationError("trefp_s must be positive")
        if self.interference_strength < 0:
            raise ConfigurationError("interference_strength must be non-negative")
        if not 0.0 <= self.vrt_fraction <= 1.0:
            raise ConfigurationError("vrt_fraction must be in [0, 1]")
        if not 0.0 <= self.true_cell_fraction <= 1.0:
            raise ConfigurationError("true_cell_fraction must be in [0, 1]")
        if self.block_words < 1:
            raise ConfigurationError("block_words must be at least 1")
        if self.memory_budget_bytes < 1:
            raise ConfigurationError("memory_budget_bytes must be positive")


@dataclass(frozen=True)
class BatchReadResult:
    """Outcome of one burst read of many words.

    ``locations`` mirrors whatever addressing the read used: a sequence
    of :class:`CellLocation` objects, or a word-index array for the
    index-addressed fast path.
    """

    locations: BatchLocations
    decode: BatchDecodeResult

    def __len__(self) -> int:
        return len(self.decode)

    def counts(self) -> Dict[ErrorClass, int]:
        """Words per error class, including :attr:`ErrorClass.NO_ERROR`."""
        return self.decode.counts()

    def error_locations(self) -> List:
        """Locations whose read produced any ECC event.

        Entries match the type of ``locations``: CellLocation objects for
        object-addressed reads, word indices for index-addressed reads.
        """
        rows = np.flatnonzero(self.decode.error_codes != _NO_ERROR_CODE)
        if isinstance(self.locations, np.ndarray):
            # Fancy indexing: one vectorized gather, no per-row Python loop.
            return list(self.locations[rows])
        return [self.locations[int(row)] for row in rows]


class CellArraySimulator:
    """Mechanism-level simulation of an ECC-protected DRAM array."""

    def __init__(self, config: Optional[CellArrayConfig] = None) -> None:
        self.config = config or CellArrayConfig(geometry=small_geometry())
        self.geometry = self.config.geometry
        self._rng = np.random.default_rng(self.config.seed)
        self._code = SecdedCode()
        self._block_words = int(self.config.block_words)

        n_words = self.geometry.total_words
        required = n_words * _STATE_BYTES_PER_WORD
        if required > self.config.memory_budget_bytes:
            logger.info(
                "rejecting cell-array geometry: %d words need ~%d bytes of "
                "state, over the %d-byte budget",
                n_words, required, self.config.memory_budget_bytes,
            )
            raise ConfigurationError(
                f"cell-array state for {n_words} words needs ~{required} bytes, "
                f"over the {self.config.memory_budget_bytes}-byte budget; use "
                "the statistical model for full-scale campaigns or raise "
                "CellArrayConfig.memory_budget_bytes"
            )
        logger.debug(
            "initialising cell array: %d words (%d cells), ~%d bytes of state",
            n_words, n_words * units.CODEWORD_BITS, required,
        )

        # Per-cell state, bit-packed into (words, 2) uint64 lanes; only the
        # retention table stays float64-per-cell.  Sampling streams in
        # block-sized slabs — sequential Generator draws are bit-identical
        # to one whole-array draw, so the seeded population is unchanged.
        self.codewords = np.zeros((n_words, 2), dtype=np.uint64)
        self.base_retention_s = np.empty((n_words, units.CODEWORD_BITS))
        self.vrt_mask = np.empty((n_words, 2), dtype=np.uint64)
        #: discharge polarity of each cell (true-cell decays to 0, anti-cell to 1)
        self.discharge_value = np.empty((n_words, 2), dtype=np.uint64)
        for start, stop in self._blocks(n_words):
            self.base_retention_s[start:stop] = sample_retention_times(
                (stop - start) * units.CODEWORD_BITS,
                self.config.temperature_c,
                self.config.vdd_v,
                calibration=self.config.calibration.retention,
                rng=self._rng,
            ).reshape(-1, units.CODEWORD_BITS)
        for start, stop in self._blocks(n_words):
            # VRT cells: occasionally an order of magnitude weaker.
            draw = self._rng.random((stop - start, units.CODEWORD_BITS))
            self.vrt_mask[start:stop] = pack_bits(draw < self.config.vrt_fraction)
        for start, stop in self._blocks(n_words):
            draw = self._rng.random((stop - start, units.CODEWORD_BITS))
            self.discharge_value[start:stop] = pack_bits(
                draw >= self.config.true_cell_fraction
            )

        # Per-word bookkeeping.
        self.last_recharge_s = np.zeros(n_words)
        self.max_exposure_s = np.zeros(n_words)   #: worst unrefreshed gap since last write
        self.word_written = np.zeros(n_words, dtype=bool)
        #: row-hammer disturbance accumulated per word since its last recharge
        self.disturbance = np.zeros(n_words)

        self.now_s = 0.0
        self.error_log = ErrorLog()

    # ------------------------------------------------------------------
    def _blocks(self, count: int):
        """Yield (start, stop) streaming block bounds covering ``count`` items."""
        for start in range(0, count, self._block_words):
            yield start, min(start + self._block_words, count)

    def _word_index(self, location: CellLocation) -> int:
        return self.geometry.word_index(location)

    def _word_indices(self, locations: BatchLocations) -> np.ndarray:
        if isinstance(locations, np.ndarray) and np.issubdtype(
            locations.dtype, np.integer
        ):
            if locations.ndim != 1:
                raise ConfigurationError(
                    f"word-index locations must be 1-D, got shape {locations.shape}"
                )
            indices = locations.astype(np.int64, copy=False)
            if indices.size and (
                int(indices.min()) < 0
                or int(indices.max()) >= self.geometry.total_words
            ):
                raise ConfigurationError("word index out of range for this geometry")
        else:
            indices = np.fromiter(
                (self.geometry.word_index(location) for location in locations),
                dtype=np.int64,
                count=len(locations),
            )
        if np.unique(indices).size != indices.size:
            raise ConfigurationError(
                "batch operations require unique locations: duplicated words "
                "would alias the in-place recharge/scrub bookkeeping"
            )
        return indices

    def advance_time(self, delta_s: float) -> None:
        """Advance the simulation clock; auto-refresh bounds cell exposure."""
        if delta_s < 0:
            raise SimulationError("time cannot move backwards")
        self.now_s += delta_s

    def _record_exposure(self, words: np.ndarray) -> None:
        """Account the un-recharged gap ending now for each of ``words``.

        Auto-refresh recharges every cell at least once per TREFP, so the
        worst-case exposure of any single retention window is bounded by
        TREFP even when the word is never accessed.
        """
        gaps = self.now_s - self.last_recharge_s[words]
        exposure = np.minimum(gaps, self.config.trefp_s)
        self.max_exposure_s[words] = np.maximum(self.max_exposure_s[words], exposure)

    def _effective_retention(self, words: np.ndarray) -> np.ndarray:
        """Per-cell effective retention for a batch of words, as (N, 72)."""
        # Advanced indexing already yields a fresh array, safe to mutate.
        retention = self.base_retention_s[words]
        retention[unpack_codewords(self.vrt_mask[words]) != 0] *= 0.1
        denom = 1.0 + self.config.interference_strength * self.disturbance[words]
        return retention / denom[:, None]

    def _disturb_neighbour_rows(self, words: np.ndarray) -> None:
        """Row-hammer bookkeeping for a batch of accessed words.

        The word index layout is row-major within each bank, so the words
        of one physical row form one contiguous slab of ``columns_per_row``
        entries; a reshape exposes the disturbance counters row-by-row and
        a bincount accumulates duplicate hits from the same batch (hit
        counts are small integers, so adding them in one shot is exact —
        bit-identical to repeated ``+= 1.0``).

        This is the one cross-word effect of an access, so streamed bursts
        must apply it only after every block has been sensed and
        recharged — exactly the all-at-once burst semantics.
        """
        columns = self.geometry.columns_per_row
        rows = words // columns
        row_in_bank = rows % self.geometry.rows_per_bank
        neighbours = np.concatenate([
            rows[row_in_bank > 0] - 1,
            rows[row_in_bank < self.geometry.rows_per_bank - 1] + 1,
        ])
        if neighbours.size:
            hits = np.bincount(neighbours)
            touched = np.flatnonzero(hits)
            self.disturbance.reshape(-1, columns)[touched] += hits[touched][:, None]

    def _recharge(self, words: np.ndarray) -> None:
        self.last_recharge_s[words] = self.now_s
        self.max_exposure_s[words] = 0.0
        self.disturbance[words] = 0.0

    def _log_block_errors(
        self,
        locations: BatchLocations,
        words: np.ndarray,
        base: int,
        error_rows: np.ndarray,
        error_codes: np.ndarray,
        workload: str,
    ) -> None:
        """Append one streamed block's ECC events to the error log."""
        if not error_rows.size:
            return
        if isinstance(locations, np.ndarray):
            # Index-addressed read: materialise CellLocation objects only
            # for the (sparse) error rows.
            event_locations = [
                self.geometry.cell_from_word_index(int(word))
                for word in words[error_rows]
            ]
        else:
            event_locations = [
                locations[base + int(row)] for row in error_rows
            ]
        self.error_log.append_batch(
            error_classes=_ERROR_CLASS_BY_CODE[error_codes[error_rows]].tolist(),
            locations=event_locations,
            timestamp_s=self.now_s,
            workload=workload,
        )

    # -- memory operations ---------------------------------------------------
    def write_batch(
        self, locations: BatchLocations, data_values: Union[np.ndarray, Sequence[int]]
    ) -> None:
        """Store one 64-bit value per location in a single burst.

        Writing recharges each word and resets its history, then the
        burst's row-hammer disturbances land on the neighbouring rows.
        Encoding streams in ``block_words`` slabs straight into the
        packed codeword lanes.
        """
        telemetry = get_telemetry()
        words = self._word_indices(locations)
        data = np.asarray(data_values)
        if data.shape != (words.size,):
            raise ConfigurationError(
                "locations and data_values must have equal length"
            )
        # _as_data_words validates the 64-bit range up front (raising
        # ConfigurationError before any state mutation), so the per-block
        # encode below can never fail halfway through the burst.
        validated = self._code._as_data_words(data)
        with telemetry.span("cells.write_batch"):
            blocks_streamed = 0
            for start, stop in self._blocks(words.size):
                block = words[start:stop]
                self.codewords[block] = self._code.encode_packed(validated[start:stop])
                self._recharge(block)
                self.word_written[block] = True
                blocks_streamed += 1
            self._disturb_neighbour_rows(words)
        if telemetry.enabled:
            telemetry.incr("cells.words_written", int(words.size))
            telemetry.incr("cells.blocks_streamed", blocks_streamed)

    def read_batch(
        self, locations: BatchLocations, workload: str = ""
    ) -> BatchReadResult:
        """Read a burst of words: decay, SECDED decode, scrub, log — streamed.

        Reading senses whole rows, so every word is recharged; single-bit
        errors are corrected in place (scrub-on-read) while multi-bit
        corruption persists until rewritten.  The burst streams through
        ``block_words`` slabs; per-word results are bit-identical for any
        block size (see the module docstring).
        """
        words = self._word_indices(locations)
        unwritten = np.flatnonzero(~self.word_written[words])
        if unwritten.size:
            if isinstance(locations, np.ndarray):
                culprit = self.geometry.cell_from_word_index(
                    int(words[unwritten[0]])
                )
            else:
                culprit = locations[int(unwritten[0])]
            raise SimulationError(f"read of unwritten location {culprit}")

        telemetry = get_telemetry()
        error_codes = np.empty(words.size, dtype=np.uint8)
        corrected_bits = np.empty(words.size, dtype=np.int64)
        data_words = np.empty(words.size, dtype=np.uint64)

        with telemetry.span("cells.read_batch"):
            blocks_streamed = 0
            scrubbed_words = 0
            for start, stop in self._blocks(words.size):
                block = words[start:stop]
                self._record_exposure(block)
                retention = self._effective_retention(block)
                leaked = retention < self.max_exposure_s[block][:, None]
                leak_lanes = pack_bits(leaked)
                stored = self.codewords[block]
                decayed = (stored & ~leak_lanes) | (self.discharge_value[block] & leak_lanes)

                decode = self._code.decode_batch(decayed)
                error_codes[start:stop] = decode.error_codes
                corrected_bits[start:stop] = decode.corrected_bits
                data_words[start:stop] = decode.data_words

                error_rows = np.flatnonzero(decode.error_codes != _NO_ERROR_CODE)
                self._log_block_errors(
                    locations, block, start, error_rows, decode.error_codes, workload
                )

                # Scrub-on-read: corrected words are written back as valid
                # codewords; multi-bit corruption persists (the data is lost
                # until rewritten).  Clean words are already valid codewords,
                # so re-encoding them would be a bit-for-bit no-op.
                scrubbed = decode.error_codes == _CORRECTED_CODE
                if scrubbed.any():
                    decayed[scrubbed] = self._code.encode_packed(
                        decode.data_words[scrubbed]
                    )
                    scrubbed_words += int(scrubbed.sum())
                self.codewords[block] = decayed
                self._recharge(block)
                blocks_streamed += 1
            self._disturb_neighbour_rows(words)

        if telemetry.enabled:
            # Per-burst accounting, computed once from the collected codes so
            # the streaming loop above stays untouched in no-op mode.
            telemetry.incr("cells.words_read", int(words.size))
            telemetry.incr("cells.blocks_streamed", blocks_streamed)
            corrected = int((error_codes == _CORRECTED_CODE).sum())
            uncorrectable = int((error_codes == _UNCORRECTABLE_CODE).sum())
            silent = int((error_codes == _SILENT_CODE).sum())
            if corrected:
                telemetry.incr("cells.corrected", corrected)
            if uncorrectable:
                telemetry.incr("cells.uncorrectable", uncorrectable)
            if silent:
                telemetry.incr("cells.silent", silent)
            if scrubbed_words:
                telemetry.incr("cells.scrubbed", scrubbed_words)
            telemetry.observe("cells.errors_per_burst",
                              corrected + uncorrectable + silent)

        result_decode = BatchDecodeResult(
            data_words=data_words,
            error_codes=error_codes,
            corrected_bits=corrected_bits,
        )
        kept = locations if isinstance(locations, np.ndarray) else list(locations)
        return BatchReadResult(locations=kept, decode=result_decode)

    def write(self, location: CellLocation, data: int) -> None:
        """Store a 64-bit value; writing recharges and resets the word's history."""
        if not isinstance(data, (int, np.integer)) or isinstance(data, bool):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        if not 0 <= data < (1 << units.WORD_BITS):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        self.write_batch([location], np.array([data], dtype=np.uint64))

    def read(self, location: CellLocation, workload: str = "") -> DecodeResult:
        """Read a word: apply decay, decode through ECC, log any error."""
        return self.read_batch([location], workload=workload).decode.result(0)

    # -- bulk helpers used by tests and the validation example ---------------
    def fill(self, data_values: List[int], locations: Optional[List[CellLocation]] = None) -> List[CellLocation]:
        """Write a list of values to consecutive locations; returns the locations."""
        if locations is None:
            locations = [
                self.geometry.cell_from_word_index(i) for i in range(len(data_values))
            ]
        if len(locations) != len(data_values):
            raise ConfigurationError("locations and data_values must have equal length")
        self.write_batch(locations, data_values)
        return locations

    def idle(self, duration_s: float) -> None:
        """Let the array sit idle (only auto-refresh active) for ``duration_s``."""
        self.advance_time(duration_s)

    def sweep_read(
        self, locations: BatchLocations, workload: str = ""
    ) -> Dict[ErrorClass, int]:
        """Read every location once and return error counts by class."""
        counts = self.read_batch(locations, workload=workload).counts()
        return {
            ErrorClass.CORRECTED: counts[ErrorClass.CORRECTED],
            ErrorClass.UNCORRECTABLE: counts[ErrorClass.UNCORRECTABLE],
            ErrorClass.SILENT: counts[ErrorClass.SILENT],
        }

    def measured_wer(self, footprint_words: Optional[int] = None) -> float:
        """WER per Eq. 2: unique CE word locations / footprint size in words."""
        footprint = footprint_words or int(self.word_written.sum())
        if footprint <= 0:
            raise SimulationError("cannot compute WER for an empty footprint")
        return len(self.error_log.unique_word_locations(ErrorClass.CORRECTED)) / footprint
