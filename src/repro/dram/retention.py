"""Retention-time physics of DRAM cells.

Cell retention times follow a lognormal distribution across the cell
population [31], shrink exponentially with temperature [19], and are
slightly reduced by lowering the supply voltage.  These functions are
shared by the explicit cell-array simulator and by the closed-form
statistical model used for full-scale campaigns.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np
from scipy import stats

from repro.dram.calibration import DEFAULT_CALIBRATION, RetentionCalibration
from repro.errors import ConfigurationError


def log_median_retention(
    temperature_c: float,
    vdd_v: float,
    calibration: Optional[RetentionCalibration] = None,
) -> float:
    """Natural log of the median cell retention time at the operating point."""
    cal = calibration or DEFAULT_CALIBRATION.retention
    delta_t = temperature_c - cal.reference_temperature_c
    delta_v = cal.nominal_vdd_v - vdd_v
    return (
        cal.log_median_retention_50c
        - cal.temperature_slope_per_c * delta_t
        - cal.vdd_slope_per_volt * delta_v
    )


def median_retention_s(
    temperature_c: float,
    vdd_v: float = 1.5,
    calibration: Optional[RetentionCalibration] = None,
) -> float:
    """Median cell retention time (seconds) at the operating point."""
    return math.exp(log_median_retention(temperature_c, vdd_v, calibration))


def _failure_z_score(
    effective_refresh_s: float,
    temperature_c: float,
    vdd_v: float,
    cal: RetentionCalibration,
) -> float:
    """Standardised log-retention z-score of one operating point.

    Shared by the scalar and grid failure-probability paths: both must
    produce bit-identical values, so the guard and the ``math.log``
    arithmetic exist exactly once.
    """
    if effective_refresh_s <= 0:
        raise ConfigurationError("effective_refresh_s must be positive")
    mu = log_median_retention(temperature_c, vdd_v, cal)
    return (math.log(effective_refresh_s) - mu) / cal.log_sigma


def bit_failure_probability(
    effective_refresh_s: float,
    temperature_c: float,
    vdd_v: float = 1.5,
    calibration: Optional[RetentionCalibration] = None,
) -> float:
    """Probability that a single cell's retention time is below the refresh interval.

    This is the lognormal CDF evaluated at the effective refresh interval.
    A longer refresh period, a higher temperature or a lower VDD all push
    the operating point further into the retention-time tail, which is
    what produces the exponential growth of WER with TREFP (Fig. 7f).
    """
    cal = calibration or DEFAULT_CALIBRATION.retention
    z = _failure_z_score(effective_refresh_s, temperature_c, vdd_v, cal)
    return float(stats.norm.cdf(z))


def bit_failure_probability_grid(
    effective_refresh_s: Union[float, np.ndarray],
    temperature_c: Union[float, np.ndarray],
    vdd_v: Union[float, np.ndarray] = 1.5,
    calibration: Optional[RetentionCalibration] = None,
) -> np.ndarray:
    """Vectorized :func:`bit_failure_probability` over a grid of points.

    ``effective_refresh_s``, ``temperature_c`` and ``vdd_v`` are
    broadcast against each other.  Each z-score is computed with the
    same per-point scalar arithmetic as the scalar function (``math.log``
    and ``math.exp`` differ from their numpy ufunc counterparts in the
    last ulp, so the cheap per-point math stays scalar); only the
    normal-CDF evaluation — the expensive part, one scipy call per grid
    instead of per point — is batched, and ``ndtr`` is elementwise
    consistent between scalar and array arguments.  Every entry is
    therefore bit-identical to the scalar call.
    """
    cal = calibration or DEFAULT_CALIBRATION.retention
    refresh, temps, vdds = np.broadcast_arrays(
        np.asarray(effective_refresh_s, dtype=float),
        np.asarray(temperature_c, dtype=float),
        np.asarray(vdd_v, dtype=float),
    )
    z = np.empty(refresh.shape, dtype=float)
    for index in np.ndindex(refresh.shape):
        z[index] = _failure_z_score(
            float(refresh[index]), float(temps[index]), float(vdds[index]), cal
        )
    return np.asarray(stats.norm.cdf(z), dtype=float)


def sample_retention_times(
    n_cells: int,
    temperature_c: float,
    vdd_v: float = 1.5,
    calibration: Optional[RetentionCalibration] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample per-cell retention times (seconds) for an explicit cell array."""
    if n_cells <= 0:
        raise ConfigurationError("n_cells must be positive")
    cal = calibration or DEFAULT_CALIBRATION.retention
    generator = rng or np.random.default_rng()
    mu = log_median_retention(temperature_c, vdd_v, cal)
    return np.exp(generator.normal(mu, cal.log_sigma, size=n_cells))


def rescale_retention_times(
    retention_s: np.ndarray,
    from_temperature_c: float,
    to_temperature_c: float,
    calibration: Optional[RetentionCalibration] = None,
) -> np.ndarray:
    """Rescale sampled retention times to a different temperature.

    The lognormal temperature shift is multiplicative, so a population
    sampled at one temperature can be carried to another without
    re-sampling — exactly how a heated DIMM behaves: the same weak cells
    get weaker.
    """
    cal = calibration or DEFAULT_CALIBRATION.retention
    factor = math.exp(
        -cal.temperature_slope_per_c * (to_temperature_c - from_temperature_c)
    )
    return np.asarray(retention_s, dtype=float) * factor


def retention_halving_temperature(calibration: Optional[RetentionCalibration] = None) -> float:
    """Temperature increase (deg C) that halves the median retention time."""
    cal = calibration or DEFAULT_CALIBRATION.retention
    return math.log(2.0) / cal.temperature_slope_per_c
