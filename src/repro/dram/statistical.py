"""Closed-form statistical DRAM error model used for full-scale campaigns.

The explicit cell-array simulator (:mod:`repro.dram.cells`) cannot hold
the 8 GB footprints the paper allocates, so characterization campaigns
use this model: expected error rates are computed in closed form from
the retention-failure physics, the workload's behaviour (access rate,
reuse time, data entropy, footprint) and the per-rank variation profile,
then individual runs are sampled around the expectation with
variable-retention-time (run-to-run) noise.

A deliberately *idiosyncratic* per-(workload, rank) factor — deterministic
but not derivable from the program features — represents everything the
feature vector cannot explain (exact physical page placement, allocator
behaviour, micro-architectural noise).  It is what bounds the accuracy a
perfect ML model can reach, mirroring the ~10 % residual error of the
paper's best model.

Grid engine
-----------
Campaign sweeps evaluate the model on a dense grid of operating points:
``sample_rank_wer_grid`` and ``sample_ue_events_grid`` take a sequence of
operating points plus a (points x repetitions) matrix of RNG streams and
sample every (point, repetition, rank) cell in batched numpy draws.  The
scalar ``sample_rank_wer`` / ``sample_ue_event`` remain the reference
implementations; the grid methods consume each cell's RNG stream in
exactly the scalar order (one normal per rank, then one uniform, then —
only on a crash — one categorical draw) and share the same ``np.exp``
noise kernel, so a grid cell is bit-identical to the corresponding
scalar call with the same generator.  The expensive deterministic
factors (retention CDF, per-rank variation, idiosyncratic draws) are
hoisted out of the per-cell work: they are computed once per operating
point and once per rank instead of once per (point, repetition, rank).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import units
from repro.dram.calibration import DEFAULT_CALIBRATION, DramCalibration
from repro.dram.geometry import DramGeometry, RankLocation
from repro.dram.operating import OperatingPoint
from repro.dram.retention import bit_failure_probability, bit_failure_probability_grid
from repro.dram.variation import VariationProfile
from repro.errors import ConfigurationError
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class WorkloadBehavior:
    """The workload-dependent quantities the error physics responds to.

    These are derived from a workload's profile (Section III.D): the rate
    of memory accesses reaching DRAM, the average DRAM reuse time
    ``Treuse``, the data-pattern entropy ``HDP`` and the allocated
    footprint.
    """

    accesses_per_cycle: float          #: DRAM accesses per CPU cycle
    reuse_time_s: float                #: average time between accesses to a word
    data_entropy_bits: float           #: HDP, in bits (0 .. 32)
    footprint_words: int               #: allocated memory, in 64-bit words
    wait_cycle_fraction: float = 0.0   #: fraction of cycles stalled on memory

    def __post_init__(self) -> None:
        if self.accesses_per_cycle < 0:
            raise ConfigurationError("accesses_per_cycle must be non-negative")
        if self.reuse_time_s <= 0:
            raise ConfigurationError("reuse_time_s must be positive")
        if not 0.0 <= self.data_entropy_bits <= 32.0 + 1e-9:
            raise ConfigurationError("data_entropy_bits must lie in [0, 32]")
        if self.footprint_words <= 0:
            raise ConfigurationError("footprint_words must be positive")
        if not 0.0 <= self.wait_cycle_fraction <= 1.0:
            raise ConfigurationError("wait_cycle_fraction must lie in [0, 1]")


def _stable_unit_normal(*parts: str) -> float:
    """Deterministic pseudo-random N(0,1) draw keyed by strings.

    Used for the per-(workload, rank) idiosyncratic factor so that repeated
    characterizations of the same workload on the same rank see the same
    bias — exactly like a real machine would.
    """
    key = "|".join(parts)
    seed = zlib.crc32(key.encode("utf-8"))
    return float(np.random.default_rng(seed).standard_normal())


class StatisticalErrorModel:
    """Expected and sampled DRAM error metrics for arbitrary operating points."""

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        variation: Optional[VariationProfile] = None,
        calibration: Optional[DramCalibration] = None,
        seed: int = 2019,
    ) -> None:
        self.geometry = geometry or DramGeometry()
        self.variation = variation or VariationProfile.default(self.geometry)
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.seed = seed

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def retention_bit_failure_probability(self, op: OperatingPoint) -> float:
        """Probability a bit's retention time is below the configured TREFP."""
        return bit_failure_probability(
            op.trefp_s, op.temperature_c, op.vdd_v, self.calibration.retention
        )

    def retention_bit_failure_probability_grid(
        self, ops: Sequence[OperatingPoint]
    ) -> np.ndarray:
        """Per-point retention failure probabilities with one batched CDF call.

        The normal-CDF evaluation dominates the scalar hot path (~40 us
        of scipy dispatch per call, independent of size), so the grid
        engine evaluates it once for all operating points.
        """
        return bit_failure_probability_grid(
            [op.trefp_s for op in ops],
            [op.temperature_c for op in ops],
            [op.vdd_v for op in ops],
            self.calibration.retention,
        )

    def implicit_refresh_fraction(
        self, behavior: WorkloadBehavior, op: OperatingPoint
    ) -> float:
        """Fraction of footprint words re-accessed within one refresh period.

        Per-word reuse times are modelled as lognormally distributed around
        the workload's mean ``Treuse`` with a wide spread
        (``reuse_spread_sigma``); a word whose reuse gap is below TREFP is
        recharged by the access itself and its retention failures are
        suppressed.
        """
        sigma = self.calibration.workload.reuse_spread_sigma
        z = (math.log(op.trefp_s) - math.log(behavior.reuse_time_s)) / sigma
        # Standard normal CDF via erf keeps scipy out of the hot path.
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def data_pattern_factor(self, behavior: WorkloadBehavior) -> float:
        """Vulnerability scaling due to the stored data pattern (entropy)."""
        cal = self.calibration.workload
        return cal.entropy_floor + cal.entropy_slope * behavior.data_entropy_bits

    def interference_factor(self, behavior: WorkloadBehavior) -> float:
        """Disturbance (cell-to-cell interference) term driven by access rate."""
        cal = self.calibration.workload
        accesses_per_kcycle = behavior.accesses_per_cycle * 1000.0
        return cal.interference_per_access_per_kcycle * accesses_per_kcycle

    def _idiosyncratic_factor(self, workload: str, rank: Optional[RankLocation]) -> float:
        if not workload:
            return 1.0
        sigma = self.calibration.workload.idiosyncratic_sigma
        rank_key = rank.label if rank is not None else "memory"
        draw = _stable_unit_normal(str(self.seed), workload, rank_key)
        return math.exp(sigma * draw)

    # ------------------------------------------------------------------
    # correctable errors (WER)
    # ------------------------------------------------------------------
    def _word_ce_probability_from_p_ret(
        self, p_ret: float, op: OperatingPoint, behavior: WorkloadBehavior
    ) -> float:
        """CE probability given a precomputed retention failure probability.

        Shared per-point arithmetic of the scalar and grid paths — both
        must produce bit-identical values, so there is exactly one
        implementation.
        """
        cal = self.calibration.workload
        refresh_fraction = self.implicit_refresh_fraction(behavior, op)
        suppression = 1.0 - refresh_fraction * (1.0 - cal.implicit_refresh_residual)
        pattern = self.data_pattern_factor(behavior)
        interference = self.interference_factor(behavior)

        p_bit = p_ret * pattern * (suppression + interference)
        p_bit = min(p_bit, 1.0)
        # Unique CE words: at least one failing data bit (64 bits per word).
        p_word = 1.0 - (1.0 - p_bit) ** units.WORD_BITS
        return float(min(p_word, 1.0))

    def word_ce_probability(
        self, op: OperatingPoint, behavior: WorkloadBehavior
    ) -> float:
        """Probability that a 64-bit word manifests a (unique) CE in a run."""
        return self._word_ce_probability_from_p_ret(
            self.retention_bit_failure_probability(op), op, behavior
        )

    def word_ce_probability_grid(
        self,
        ops: Sequence[OperatingPoint],
        behavior: WorkloadBehavior,
        p_ret: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """CE probability for many operating points, as a (points,) array.

        ``p_ret`` lets a caller share one batched retention-CDF
        evaluation between the CE and UE grids (both depend on the same
        per-point probabilities).
        """
        if p_ret is None:
            p_ret = self.retention_bit_failure_probability_grid(ops)
        return np.array(
            [
                self._word_ce_probability_from_p_ret(float(p), op, behavior)
                for p, op in zip(p_ret, ops)
            ],
            dtype=np.float64,
        )

    def expected_rank_wer(
        self,
        op: OperatingPoint,
        behavior: WorkloadBehavior,
        rank: RankLocation,
        workload: str = "",
    ) -> float:
        """Expected WER on one DIMM/rank (Fig. 8 granularity)."""
        base = self.word_ce_probability(op, behavior)
        factor = self.variation.wer_factor(rank)
        return base * factor * self._idiosyncratic_factor(workload, rank)

    def expected_wer(
        self, op: OperatingPoint, behavior: WorkloadBehavior, workload: str = ""
    ) -> float:
        """Expected memory-wide WER (Eq. 2) averaged over all ranks."""
        per_rank = [
            self.expected_rank_wer(op, behavior, rank, workload)
            for rank in self.geometry.iter_ranks()
        ]
        return float(np.mean(per_rank))

    def sample_rank_wer(
        self,
        op: OperatingPoint,
        behavior: WorkloadBehavior,
        rank: RankLocation,
        workload: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """One measured per-rank WER, with run-to-run (VRT) noise applied.

        The noise kernel is ``np.exp`` (not ``math.exp``): the grid path
        exponentiates whole arrays, and the two libms differ in the last
        ulp for a few percent of arguments, so the scalar reference must
        use the same implementation for grid cells to be bit-identical.
        """
        generator = rng or np.random.default_rng()
        expected = self.expected_rank_wer(op, behavior, rank, workload)
        noise = float(np.exp(
            self.calibration.workload.run_to_run_sigma * generator.standard_normal()
        ))
        return expected * noise

    # ------------------------------------------------------------------
    # grid engine (batched operating points)
    # ------------------------------------------------------------------
    def expected_rank_wer_grid(
        self,
        ops: Sequence[OperatingPoint],
        behavior: WorkloadBehavior,
        workload: str = "",
        p_ret: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expected per-rank WER for many operating points, as (points, ranks).

        The workload/operating-point term (``word_ce_probability``, one
        retention-CDF evaluation per point) and the per-rank terms
        (variation factor, idiosyncratic factor) are each computed once
        and combined by broadcasting — in the same multiplication order
        as :meth:`expected_rank_wer`, so every entry is bit-identical to
        the scalar call.
        """
        if not ops:
            raise ConfigurationError("ops must contain at least one operating point")
        base = self.word_ce_probability_grid(ops, behavior, p_ret=p_ret)
        ranks = list(self.geometry.iter_ranks())
        factors = np.array(
            [self.variation.wer_factor(rank) for rank in ranks], dtype=np.float64
        )
        idiosyncratic = np.array(
            [self._idiosyncratic_factor(workload, rank) for rank in ranks],
            dtype=np.float64,
        )
        return base[:, None] * factors[None, :] * idiosyncratic[None, :]

    @staticmethod
    def _validated_rng_grid(
        rngs: Sequence[Sequence[np.random.Generator]], num_points: int
    ) -> List[Sequence[np.random.Generator]]:
        grid = [list(row) for row in rngs]
        if len(grid) != num_points:
            raise ConfigurationError(
                "rngs must provide one row per operating point: expected "
                f"{num_points} rows, got {len(grid)}"
            )
        if grid and any(len(row) != len(grid[0]) for row in grid):
            raise ConfigurationError("rngs rows must all have the same length")
        return grid

    def sample_rank_wer_grid(
        self,
        ops: Sequence[OperatingPoint],
        behavior: WorkloadBehavior,
        workload: str = "",
        rngs: Optional[Sequence[Sequence[np.random.Generator]]] = None,
        repetitions: int = 1,
        p_ret: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sampled per-rank WER grid, as (points, repetitions, ranks).

        ``rngs`` is a (points x repetitions) matrix of generators — one
        independent stream per grid cell, typically keyed the way
        :meth:`CharacterizationExperiment._run_rng` keys scalar runs.
        Each cell draws its per-rank normals in one batched call, which
        consumes the generator's stream exactly like ``ranks`` sequential
        scalar draws; with the same streams the result is bit-identical
        to looping :meth:`sample_rank_wer`.  Without ``rngs``, fresh
        unseeded generators are used (``repetitions`` cells per point).
        """
        telemetry = get_telemetry()
        with telemetry.span("statistical.wer_grid"):
            ops = list(ops)
            expected = self.expected_rank_wer_grid(ops, behavior, workload, p_ret=p_ret)
            if rngs is None:
                if repetitions <= 0:
                    raise ConfigurationError("repetitions must be positive")
                rngs = [
                    [np.random.default_rng() for _ in range(repetitions)] for _ in ops
                ]
            grid = self._validated_rng_grid(rngs, len(ops))
            num_reps = len(grid[0]) if grid else 0
            num_ranks = expected.shape[1]
            normals = np.empty((len(ops), num_reps, num_ranks), dtype=np.float64)
            for p, row in enumerate(grid):
                for k, generator in enumerate(row):
                    normals[p, k] = generator.standard_normal(num_ranks)
            noise = np.exp(self.calibration.workload.run_to_run_sigma * normals)
            if telemetry.enabled:
                telemetry.incr(
                    "statistical.wer_cells", len(ops) * num_reps * num_ranks
                )
            return expected[:, None, :] * noise

    def probability_of_ue_grid(
        self,
        ops: Sequence[OperatingPoint],
        behavior: WorkloadBehavior,
        workload: str = "",
        p_ret: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """PUE (Eq. 3) for many operating points, as a (points,) array.

        The expected-count grid shares one batched retention-CDF call;
        the final ``1 - exp(-lam)`` stays per-point scalar math so every
        entry is bit-identical to :meth:`probability_of_ue`.
        """
        if not ops:
            raise ConfigurationError("ops must contain at least one operating point")
        lam = self.expected_ue_count_grid(ops, behavior, workload, p_ret=p_ret)
        return np.array(
            [float(1.0 - math.exp(-value)) for value in lam], dtype=np.float64
        )

    def sample_ue_events_grid(
        self,
        ops: Sequence[OperatingPoint],
        behavior: WorkloadBehavior,
        workload: str = "",
        rngs: Optional[Sequence[Sequence[np.random.Generator]]] = None,
        repetitions: int = 1,
        p_ret: Optional[np.ndarray] = None,
    ) -> List[List[Optional[RankLocation]]]:
        """Sample UE outcomes for every grid cell, as (points, repetitions).

        PUE is computed once per operating point instead of once per
        cell; each cell then consumes its stream exactly like
        :meth:`sample_ue_event` (one uniform, plus one categorical draw
        only when the run crashes).  Pass the same ``rngs`` matrix used
        for :meth:`sample_rank_wer_grid` — after the per-rank normals
        each generator sits at the position the scalar path's UE draw
        would see, so outcomes are bit-identical.  Without ``rngs``,
        fresh unseeded generators are used (``repetitions`` cells per
        point, mirroring :meth:`sample_rank_wer_grid`).
        """
        telemetry = get_telemetry()
        with telemetry.span("statistical.ue_grid"):
            ops = list(ops)
            pue = self.probability_of_ue_grid(ops, behavior, workload, p_ret=p_ret)
            if rngs is None:
                if repetitions <= 0:
                    raise ConfigurationError("repetitions must be positive")
                rngs = [
                    [np.random.default_rng() for _ in range(repetitions)] for _ in ops
                ]
            grid = self._validated_rng_grid(rngs, len(ops))
            weights = self.variation.normalized_ue_weights()
            ranks = list(weights.keys())
            probabilities = np.array([weights[rank] for rank in ranks])
            events: List[List[Optional[RankLocation]]] = []
            pue_values = pue.tolist()
            crashes = 0
            for p, row in enumerate(grid):
                point_pue = pue_values[p]
                outcomes: List[Optional[RankLocation]] = []
                for generator in row:
                    if generator.random() >= point_pue:
                        outcomes.append(None)
                    else:
                        index = generator.choice(len(ranks), p=probabilities)
                        outcomes.append(ranks[index])
                        crashes += 1
                events.append(outcomes)
            if telemetry.enabled:
                telemetry.incr(
                    "statistical.ue_cells", sum(len(row) for row in grid)
                )
                if crashes:
                    telemetry.incr("statistical.ue_crashes", crashes)
            return events

    # ------------------------------------------------------------------
    # uncorrectable errors (PUE)
    # ------------------------------------------------------------------
    def _expected_ue_count_from_p_ret(
        self,
        p_ret: float,
        op: OperatingPoint,
        behavior: WorkloadBehavior,
        workload: str = "",
        idiosyncratic: Optional[float] = None,
    ) -> float:
        """Expected UE count given a precomputed retention failure probability.

        Shared per-point arithmetic of the scalar and grid paths.  The
        idiosyncratic factor is deterministic per workload, so the grid
        path computes it once and passes it in; ``None`` means compute it
        here (the scalar path).
        """
        cal = self.calibration.workload
        ue_cal = self.calibration.ue
        refresh_fraction = self.implicit_refresh_fraction(behavior, op)
        suppression = 1.0 - refresh_fraction * (1.0 - cal.implicit_refresh_residual)
        pattern = self.data_pattern_factor(behavior)
        interference = self.interference_factor(behavior)

        p_bit = min(p_ret * pattern * (suppression + interference), 1.0)
        pairs = units.WORD_BITS * (units.WORD_BITS - 1) / 2.0
        clustering = ue_cal.clustering_factor * (
            op.trefp_s / ue_cal.trefp_reference_s
        ) ** ue_cal.trefp_exponent
        clustering *= math.exp(
            ue_cal.temperature_boost_per_c
            * (op.temperature_c - ue_cal.temperature_reference_c)
        )
        p_word_multi = min(clustering * pairs * p_bit ** 2, 1.0)
        if idiosyncratic is None:
            idiosyncratic = self._idiosyncratic_factor(workload, None)
        lam = (
            p_word_multi
            * behavior.footprint_words
            * ue_cal.scrub_coverage
            * idiosyncratic
        )
        return float(lam)

    def expected_ue_count(
        self, op: OperatingPoint, behavior: WorkloadBehavior, workload: str = ""
    ) -> float:
        """Expected number of detected multi-bit words in one 2-hour run."""
        return self._expected_ue_count_from_p_ret(
            self.retention_bit_failure_probability(op), op, behavior, workload
        )

    def expected_ue_count_grid(
        self,
        ops: Sequence[OperatingPoint],
        behavior: WorkloadBehavior,
        workload: str = "",
        p_ret: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expected UE counts for many operating points, as a (points,) array."""
        if p_ret is None:
            p_ret = self.retention_bit_failure_probability_grid(ops)
        idiosyncratic = self._idiosyncratic_factor(workload, None)
        return np.array(
            [
                self._expected_ue_count_from_p_ret(
                    float(p), op, behavior, workload, idiosyncratic=idiosyncratic
                )
                for p, op in zip(p_ret, ops)
            ],
            dtype=np.float64,
        )

    def probability_of_ue(
        self, op: OperatingPoint, behavior: WorkloadBehavior, workload: str = ""
    ) -> float:
        """PUE (Eq. 3): probability that a run triggers at least one UE."""
        lam = self.expected_ue_count(op, behavior, workload)
        return float(1.0 - math.exp(-lam))

    def sample_ue_event(
        self,
        op: OperatingPoint,
        behavior: WorkloadBehavior,
        workload: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> Optional[RankLocation]:
        """Sample whether a run crashes with a UE and, if so, on which rank."""
        generator = rng or np.random.default_rng()
        if generator.random() >= self.probability_of_ue(op, behavior, workload):
            return None
        weights = self.variation.normalized_ue_weights()
        ranks = list(weights.keys())
        probabilities = np.array([weights[rank] for rank in ranks])
        index = generator.choice(len(ranks), p=probabilities)
        return ranks[index]

    # ------------------------------------------------------------------
    # time behaviour (Fig. 2 / Fig. 4)
    # ------------------------------------------------------------------
    def wer_time_series(
        self,
        op: OperatingPoint,
        behavior: WorkloadBehavior,
        duration_s: float = units.CHARACTERIZATION_DURATION_S,
        step_s: float = 10 * units.MINUTE,
        workload: str = "",
    ) -> Dict[float, float]:
        """Cumulative WER over a characterization run.

        New error-prone locations are discovered at a decaying rate, so the
        cumulative unique-CE count saturates; the paper verifies that the
        last-10-minute change of a 2-hour run is below 3 %.
        """
        if duration_s <= 0 or step_s <= 0:
            raise ConfigurationError("duration_s and step_s must be positive")
        final = self.expected_wer(op, behavior, workload)
        tau = self.calibration.convergence_tau_s
        # Generate the sampling grid as k * step_s rather than accumulating
        # t += step_s: repeated addition drifts for non-dyadic steps and can
        # drop the final sample of the run.
        num_steps = int(math.floor(duration_s / step_s + 1e-9))
        series: Dict[float, float] = {}
        for k in range(1, num_steps + 1):
            t = k * step_s
            series[t] = final * (1.0 - math.exp(-t / tau))
        return series
