"""Error records and the error log maintained by the management processor.

On the X-Gene2, the SLIMpro management core reports every ECC event to
the kernel together with the DIMM, rank, bank, row and column where it
occurred.  :class:`ErrorLog` is the software equivalent: an append-only
log that the characterization framework queries to compute WER and PUE.

The log stores events in columnar form (parallel class/location/
timestamp/workload columns): the cell-array simulator's burst reads
append a whole batch of events per sweep via :meth:`ErrorLog.append_batch`
without constructing one :class:`ErrorRecord` object per event — the
per-object cost used to dominate saturated sweeps where nearly every
word errors.  ``ErrorRecord`` views are materialised lazily (and cached)
only when a caller iterates the log or asks for ``records()``; the
quantitative queries (counts, unique words, timelines) run straight off
the columns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dram.ecc import ErrorClass
from repro.dram.geometry import CellLocation, RankLocation
from repro.errors import ConfigurationError

#: Stable integer code per error class, for the vectorized count queries.
_CLASS_CODES: Dict[ErrorClass, int] = {
    cls: code for code, cls in enumerate(ErrorClass)
}


@dataclass(frozen=True)
class ErrorRecord:
    """One ECC event: what happened, where and when."""

    error_class: ErrorClass
    location: CellLocation
    timestamp_s: float
    workload: str = ""

    def __post_init__(self) -> None:
        if self.error_class is ErrorClass.NO_ERROR:
            raise ConfigurationError("ErrorRecord must describe an actual error")
        if self.timestamp_s < 0:
            raise ConfigurationError("timestamp_s must be non-negative")

    @property
    def rank_location(self) -> RankLocation:
        return self.location.rank_location


class ErrorLog:
    """Append-only columnar log of ECC events with the queries the study needs.

    Events live in parallel columns; :class:`ErrorRecord` objects are
    materialised lazily for record-returning APIs and cached until the
    log grows.  Batch producers (the cell-array burst reads) use
    :meth:`append_batch`, which validates once per batch instead of once
    per event.
    """

    def __init__(self) -> None:
        self._classes: List[ErrorClass] = []
        self._locations: List[CellLocation] = []
        self._timestamps: List[float] = []
        self._workloads: List[str] = []
        self._materialized: Optional[List[ErrorRecord]] = None
        self._class_codes: Optional[np.ndarray] = None

    def _codes(self) -> np.ndarray:
        """Cached integer-code view of the class column.

        Appends only ever grow the log, so a length check invalidates
        the cache; ``clear`` drops it explicitly (a cleared-and-refilled
        log can reach the old length again).  Repeated count queries
        over a grown log then run as one numpy comparison instead of a
        Python scan per query.
        """
        if self._class_codes is None or len(self._class_codes) != len(self._classes):
            self._class_codes = np.fromiter(
                (_CLASS_CODES[cls] for cls in self._classes),
                dtype=np.int8,
                count=len(self._classes),
            )
        return self._class_codes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[ErrorRecord]:
        return iter(self._all_records())

    def _all_records(self) -> List[ErrorRecord]:
        if self._materialized is None or len(self._materialized) != len(self._classes):
            self._materialized = [
                ErrorRecord(
                    error_class=cls, location=loc, timestamp_s=t, workload=wl
                )
                for cls, loc, t, wl in zip(
                    self._classes, self._locations, self._timestamps, self._workloads
                )
            ]
        return self._materialized

    def append(self, record: ErrorRecord) -> None:
        self._classes.append(record.error_class)
        self._locations.append(record.location)
        self._timestamps.append(record.timestamp_s)
        self._workloads.append(record.workload)
        if self._materialized is not None:
            self._materialized.append(record)

    def extend(self, records: Iterable[ErrorRecord]) -> None:
        for record in records:
            self.append(record)

    def append_batch(
        self,
        error_classes: Sequence[ErrorClass],
        locations: Sequence[CellLocation],
        timestamp_s: float,
        workload: str = "",
    ) -> None:
        """Append one burst's events without per-event record objects.

        All events of a burst share one timestamp and workload, so the
        :class:`ErrorRecord` invariants are checked once for the whole
        batch.
        """
        if len(error_classes) != len(locations):
            raise ConfigurationError(
                "error_classes and locations must have equal length"
            )
        if timestamp_s < 0:
            raise ConfigurationError("timestamp_s must be non-negative")
        if any(cls is ErrorClass.NO_ERROR for cls in error_classes):
            raise ConfigurationError("ErrorRecord must describe an actual error")
        self._classes.extend(error_classes)
        self._locations.extend(locations)
        self._timestamps.extend([timestamp_s] * len(locations))
        self._workloads.extend([workload] * len(locations))
        self._materialized = None

    def clear(self) -> None:
        self._classes.clear()
        self._locations.clear()
        self._timestamps.clear()
        self._workloads.clear()
        self._materialized = None
        self._class_codes = None

    # -- queries -----------------------------------------------------------
    def records(self, error_class: Optional[ErrorClass] = None) -> List[ErrorRecord]:
        """All records, optionally filtered by error class."""
        if error_class is None:
            return list(self._all_records())
        return [r for r in self._all_records() if r.error_class is error_class]

    def count(self, error_class: Optional[ErrorClass] = None) -> int:
        if error_class is None:
            return len(self._classes)
        return int(np.count_nonzero(self._codes() == _CLASS_CODES[error_class]))

    def unique_word_locations(
        self, error_class: ErrorClass = ErrorClass.CORRECTED
    ) -> Set[CellLocation]:
        """Distinct 64-bit word locations affected by a given error class.

        WER counts *unique* erroneous word locations (Eq. 2), so repeated
        CEs at the same address contribute once.
        """
        return {
            loc
            for cls, loc in zip(self._classes, self._locations)
            if cls is error_class
        }

    def unique_words_by_rank(
        self, error_class: ErrorClass = ErrorClass.CORRECTED
    ) -> Dict[RankLocation, int]:
        """Number of distinct erroneous words per DIMM/rank (Fig. 8)."""
        per_rank: Dict[RankLocation, Set[CellLocation]] = {}
        for cls, loc in zip(self._classes, self._locations):
            if cls is error_class:
                per_rank.setdefault(loc.rank_location, set()).add(loc)
        return {rank: len(words) for rank, words in per_rank.items()}

    def counts_by_rank(self, error_class: ErrorClass) -> Dict[RankLocation, int]:
        """Raw event counts per DIMM/rank."""
        counter: Counter = Counter()
        for cls, loc in zip(self._classes, self._locations):
            if cls is error_class:
                counter[loc.rank_location] += 1
        return dict(counter)

    def has_uncorrectable(self) -> bool:
        """True when the log contains at least one UE (the run crashed)."""
        return bool(
            np.any(self._codes() == _CLASS_CODES[ErrorClass.UNCORRECTABLE])
        )

    def first_uncorrectable(self) -> Optional[ErrorRecord]:
        """The earliest UE in the log, if any."""
        best: Optional[int] = None
        for i, cls in enumerate(self._classes):
            if cls is ErrorClass.UNCORRECTABLE and (
                best is None or self._timestamps[i] < self._timestamps[best]
            ):
                best = i
        if best is None:
            return None
        return ErrorRecord(
            error_class=self._classes[best],
            location=self._locations[best],
            timestamp_s=self._timestamps[best],
            workload=self._workloads[best],
        )

    def timeline(
        self, error_class: ErrorClass = ErrorClass.CORRECTED, bucket_s: float = 600.0
    ) -> List[Tuple[float, int]]:
        """Cumulative unique erroneous words over time.

        Returns ``[(t, unique_words_up_to_t), ...]`` with one entry per
        ``bucket_s`` interval — the raw material of Fig. 2 and Fig. 4.
        """
        if bucket_s <= 0:
            raise ConfigurationError("bucket_s must be positive")
        relevant = sorted(
            (
                (t, loc)
                for cls, loc, t in zip(
                    self._classes, self._locations, self._timestamps
                )
                if cls is error_class
            ),
            key=lambda pair: pair[0],
        )
        if not relevant:
            return []
        end = relevant[-1][0]
        buckets: List[Tuple[float, int]] = []
        seen: Set[CellLocation] = set()
        index = 0
        t = bucket_s
        while t <= end + bucket_s:
            while index < len(relevant) and relevant[index][0] <= t:
                seen.add(relevant[index][1])
                index += 1
            buckets.append((t, len(seen)))
            if t > end:
                break
            t += bucket_s
        return buckets
