"""Error records and the error log maintained by the management processor.

On the X-Gene2, the SLIMpro management core reports every ECC event to
the kernel together with the DIMM, rank, bank, row and column where it
occurred.  :class:`ErrorLog` is the software equivalent: an append-only
log that the characterization framework queries to compute WER and PUE.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dram.ecc import ErrorClass
from repro.dram.geometry import CellLocation, RankLocation
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ErrorRecord:
    """One ECC event: what happened, where and when."""

    error_class: ErrorClass
    location: CellLocation
    timestamp_s: float
    workload: str = ""

    def __post_init__(self) -> None:
        if self.error_class is ErrorClass.NO_ERROR:
            raise ConfigurationError("ErrorRecord must describe an actual error")
        if self.timestamp_s < 0:
            raise ConfigurationError("timestamp_s must be non-negative")

    @property
    def rank_location(self) -> RankLocation:
        return self.location.rank_location


class ErrorLog:
    """Append-only log of ECC events with the queries the study needs."""

    def __init__(self) -> None:
        self._records: List[ErrorRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def append(self, record: ErrorRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[ErrorRecord]) -> None:
        for record in records:
            self.append(record)

    def clear(self) -> None:
        self._records.clear()

    # -- queries -----------------------------------------------------------
    def records(self, error_class: Optional[ErrorClass] = None) -> List[ErrorRecord]:
        """All records, optionally filtered by error class."""
        if error_class is None:
            return list(self._records)
        return [r for r in self._records if r.error_class is error_class]

    def count(self, error_class: Optional[ErrorClass] = None) -> int:
        return len(self.records(error_class))

    def unique_word_locations(
        self, error_class: ErrorClass = ErrorClass.CORRECTED
    ) -> Set[CellLocation]:
        """Distinct 64-bit word locations affected by a given error class.

        WER counts *unique* erroneous word locations (Eq. 2), so repeated
        CEs at the same address contribute once.
        """
        return {r.location for r in self._records if r.error_class is error_class}

    def unique_words_by_rank(
        self, error_class: ErrorClass = ErrorClass.CORRECTED
    ) -> Dict[RankLocation, int]:
        """Number of distinct erroneous words per DIMM/rank (Fig. 8)."""
        per_rank: Dict[RankLocation, Set[CellLocation]] = {}
        for record in self._records:
            if record.error_class is error_class:
                per_rank.setdefault(record.rank_location, set()).add(record.location)
        return {rank: len(words) for rank, words in per_rank.items()}

    def counts_by_rank(self, error_class: ErrorClass) -> Dict[RankLocation, int]:
        """Raw event counts per DIMM/rank."""
        counter: Counter = Counter()
        for record in self._records:
            if record.error_class is error_class:
                counter[record.rank_location] += 1
        return dict(counter)

    def has_uncorrectable(self) -> bool:
        """True when the log contains at least one UE (the run crashed)."""
        return any(r.error_class is ErrorClass.UNCORRECTABLE for r in self._records)

    def first_uncorrectable(self) -> Optional[ErrorRecord]:
        """The earliest UE in the log, if any."""
        ues = self.records(ErrorClass.UNCORRECTABLE)
        if not ues:
            return None
        return min(ues, key=lambda r: r.timestamp_s)

    def timeline(
        self, error_class: ErrorClass = ErrorClass.CORRECTED, bucket_s: float = 600.0
    ) -> List[Tuple[float, int]]:
        """Cumulative unique erroneous words over time.

        Returns ``[(t, unique_words_up_to_t), ...]`` with one entry per
        ``bucket_s`` interval — the raw material of Fig. 2 and Fig. 4.
        """
        if bucket_s <= 0:
            raise ConfigurationError("bucket_s must be positive")
        relevant = sorted(
            (r for r in self._records if r.error_class is error_class),
            key=lambda r: r.timestamp_s,
        )
        if not relevant:
            return []
        end = relevant[-1].timestamp_s
        buckets: List[Tuple[float, int]] = []
        seen: Set[CellLocation] = set()
        index = 0
        t = bucket_s
        while t <= end + bucket_s:
            while index < len(relevant) and relevant[index].timestamp_s <= t:
                seen.add(relevant[index].location)
                index += 1
            buckets.append((t, len(seen)))
            if t > end:
                break
            t += bucket_s
        return buckets
