"""DIMM-to-DIMM and rank-to-rank reliability variation.

The paper observes that WER varies by up to 188x across the eight
DIMM/ranks of the platform (Fig. 8) and that most UEs come from two
specific ranks while one rank never produces a UE (Fig. 9b).  This
module models that variation as a per-rank multiplicative factor on the
failure rate plus a per-rank share of multi-bit-vulnerable words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.dram.geometry import DramGeometry, RankLocation
from repro.errors import ConfigurationError

#: Default per-rank WER scale factors, ordered DIMM0/rank0 .. DIMM3/rank1.
#: Chosen so the strongest/weakest ratio is ~188x (Fig. 8) with DIMM2/rank0
#: the weakest (most error-prone) rank and DIMM3/rank1 the strongest.
DEFAULT_RANK_WER_FACTORS = (0.55, 1.30, 0.40, 0.18, 2.45, 0.75, 0.085, 0.013)

#: Default per-rank relative weights for hosting multi-bit (UE) words.
#: Matches Fig. 9b: DIMM2/rank0 and DIMM0/rank1 dominate, DIMM3/rank1 never
#: produces a UE.
DEFAULT_RANK_UE_WEIGHTS = (0.02, 0.24, 0.008, 0.007, 0.67, 0.05, 0.005, 0.0)


@dataclass
class RankProfile:
    """Reliability profile of one (dimm, rank)."""

    location: RankLocation
    wer_factor: float
    ue_weight: float

    def __post_init__(self) -> None:
        if self.wer_factor <= 0:
            raise ConfigurationError("wer_factor must be positive")
        if self.ue_weight < 0:
            raise ConfigurationError("ue_weight must be non-negative")


@dataclass
class VariationProfile:
    """Per-rank reliability variation for a whole platform."""

    geometry: DramGeometry
    ranks: Dict[RankLocation, RankProfile] = field(default_factory=dict)

    @classmethod
    def default(cls, geometry: Optional[DramGeometry] = None) -> "VariationProfile":
        """The calibrated 8-rank profile of the paper's platform."""
        geom = geometry or DramGeometry()
        locations = list(geom.iter_ranks())
        if len(locations) != len(DEFAULT_RANK_WER_FACTORS):
            # A non-default geometry: fall back to a sampled profile.
            return cls.sampled(geom, seed=2019)
        ranks = {
            loc: RankProfile(loc, DEFAULT_RANK_WER_FACTORS[i], DEFAULT_RANK_UE_WEIGHTS[i])
            for i, loc in enumerate(locations)
        }
        return cls(geometry=geom, ranks=ranks)

    @classmethod
    def sampled(
        cls,
        geometry: Optional[DramGeometry] = None,
        seed: Optional[int] = None,
        spread_sigma: float = 1.3,
    ) -> "VariationProfile":
        """Sample a random variation profile (lognormal WER factors)."""
        geom = geometry or DramGeometry()
        rng = np.random.default_rng(seed)
        locations = list(geom.iter_ranks())
        factors = np.exp(rng.normal(0.0, spread_sigma, size=len(locations)))
        factors /= factors.mean()
        ue_weights = rng.dirichlet(np.full(len(locations), 0.4))
        ranks = {
            loc: RankProfile(loc, float(factors[i]), float(ue_weights[i]))
            for i, loc in enumerate(locations)
        }
        return cls(geometry=geom, ranks=ranks)

    # ------------------------------------------------------------------
    def wer_factor(self, location: RankLocation) -> float:
        """Multiplicative WER factor of a rank (validates the location)."""
        self.geometry.validate_rank(location)
        return self.ranks[location].wer_factor

    def ue_weight(self, location: RankLocation) -> float:
        """Relative share of UE-vulnerable words hosted by a rank."""
        self.geometry.validate_rank(location)
        return self.ranks[location].ue_weight

    def normalized_ue_weights(self) -> Dict[RankLocation, float]:
        """UE weights normalised to sum to 1 (the Fig. 9b distribution)."""
        total = sum(p.ue_weight for p in self.ranks.values())
        if total <= 0:
            raise ConfigurationError("at least one rank must have a positive ue_weight")
        return {loc: p.ue_weight / total for loc, p in self.ranks.items()}

    def mean_wer_factor(self) -> float:
        """Average WER factor across ranks (used for whole-memory rates)."""
        return float(np.mean([p.wer_factor for p in self.ranks.values()]))

    def spread(self) -> float:
        """Max/min ratio of rank WER factors (the "188x" of Fig. 8)."""
        factors = [p.wer_factor for p in self.ranks.values()]
        return max(factors) / min(factors)
