"""Physical-address to DRAM-coordinate mapping.

The memory controller interleaves physical addresses across MCUs
(and hence DIMMs), ranks, banks, rows and columns.  The mapping below
follows the usual open-page-friendly layout: consecutive cache lines hit
the same row but rotate across channels, which is what spreads a
workload's footprint across every DIMM/rank — and why the paper can
report per-rank WER for every benchmark (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.dram.geometry import CellLocation, DramGeometry
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AddressMapper:
    """Map byte addresses to (dimm, rank, bank, row, column) word coordinates."""

    geometry: DramGeometry
    interleave_bytes: int = 256     #: contiguous bytes per channel before rotating

    def __post_init__(self) -> None:
        if self.interleave_bytes % units.WORD_BYTES != 0:
            raise ConfigurationError("interleave_bytes must be a multiple of the word size")
        if self.interleave_bytes <= 0:
            raise ConfigurationError("interleave_bytes must be positive")

    @property
    def words_per_interleave(self) -> int:
        return self.interleave_bytes // units.WORD_BYTES

    def map_address(self, byte_address: int) -> CellLocation:
        """Translate a physical byte address into DRAM word coordinates."""
        if byte_address < 0:
            raise ConfigurationError("byte_address must be non-negative")
        word = (byte_address // units.WORD_BYTES) % self.geometry.total_words

        chunk, offset = divmod(word, self.words_per_interleave)
        rank_index = chunk % self.geometry.num_ranks
        chunk_within_rank = chunk // self.geometry.num_ranks

        word_within_rank = chunk_within_rank * self.words_per_interleave + offset
        word_within_rank %= self.geometry.words_per_rank

        bank, rest = divmod(word_within_rank, self.geometry.words_per_bank)
        row, column = divmod(rest, self.geometry.columns_per_row)

        rank = self.geometry.rank_from_index(rank_index)
        return CellLocation(rank.dimm, rank.rank, bank, row, column)

    def map_word_index(self, word_index: int) -> CellLocation:
        """Translate a flat word index (address / 8) into coordinates."""
        return self.map_address(word_index * units.WORD_BYTES)

    def footprint_words_per_rank(self, footprint_bytes: int) -> dict:
        """How many words of a contiguous allocation land on each rank.

        The channel interleaving spreads large allocations essentially
        evenly, which matches the paper's observation that every DIMM/rank
        records errors for every benchmark.
        """
        if footprint_bytes < 0:
            raise ConfigurationError("footprint_bytes must be non-negative")
        total_words = footprint_bytes // units.WORD_BYTES
        chunks = total_words // self.words_per_interleave
        remainder_words = total_words % self.words_per_interleave

        base, extra = divmod(chunks, self.geometry.num_ranks)
        counts = {}
        for index, rank in enumerate(self.geometry.iter_ranks()):
            words = base * self.words_per_interleave
            if index < extra:
                words += self.words_per_interleave
            elif index == extra:
                words += remainder_words
            counts[rank] = words
        return counts
