"""DRAM geometry: DIMMs, ranks, banks, rows and columns.

The experimental platform has four DDR3 DIMMs (one per MCU), each with
two ranks of nine x8 chips (eight data chips plus one ECC chip).  The
geometry objects here provide the address arithmetic shared by the
cell-array simulator, the address mapper and the error log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class RankLocation:
    """A (dimm, rank) pair — the granularity of reliability variation."""

    dimm: int
    rank: int

    def __post_init__(self) -> None:
        if self.dimm < 0 or self.rank < 0:
            raise ConfigurationError("dimm and rank indices must be non-negative")

    @property
    def label(self) -> str:
        """Human readable label matching the paper's figures, e.g. ``DIMM2/rank0``."""
        return f"DIMM{self.dimm}/rank{self.rank}"

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class CellLocation:
    """Full coordinates of a 64-bit word (the ECC granularity)."""

    dimm: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def rank_location(self) -> RankLocation:
        return RankLocation(self.dimm, self.rank)


@dataclass(frozen=True)
class DramGeometry:
    """Shape of the memory system used for characterisation."""

    num_dimms: int = units.NUM_MCUS * units.DIMMS_PER_MCU
    ranks_per_dimm: int = units.RANKS_PER_DIMM
    banks_per_rank: int = 8
    rows_per_bank: int = 65536
    columns_per_row: int = 1024
    word_bytes: int = units.WORD_BYTES

    def __post_init__(self) -> None:
        for name in ("num_dimms", "ranks_per_dimm", "banks_per_rank", "rows_per_bank",
                     "columns_per_row", "word_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    # -- counts -----------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return self.num_dimms * self.ranks_per_dimm

    @property
    def words_per_row(self) -> int:
        return self.columns_per_row

    @property
    def words_per_bank(self) -> int:
        return self.rows_per_bank * self.columns_per_row

    @property
    def words_per_rank(self) -> int:
        return self.banks_per_rank * self.words_per_bank

    @property
    def total_words(self) -> int:
        return self.num_ranks * self.words_per_rank

    @property
    def total_bytes(self) -> int:
        return self.total_words * self.word_bytes

    # -- iteration / addressing --------------------------------------------
    def iter_ranks(self) -> Iterator[RankLocation]:
        """All (dimm, rank) pairs in platform order."""
        for dimm in range(self.num_dimms):
            for rank in range(self.ranks_per_dimm):
                yield RankLocation(dimm, rank)

    def rank_index(self, location: RankLocation) -> int:
        """Flat index of a rank (0 .. num_ranks-1)."""
        self.validate_rank(location)
        return location.dimm * self.ranks_per_dimm + location.rank

    def rank_from_index(self, index: int) -> RankLocation:
        """Inverse of :meth:`rank_index`."""
        if not 0 <= index < self.num_ranks:
            raise ConfigurationError(f"rank index {index} out of range")
        return RankLocation(index // self.ranks_per_dimm, index % self.ranks_per_dimm)

    def validate_rank(self, location: RankLocation) -> None:
        if location.dimm >= self.num_dimms or location.rank >= self.ranks_per_dimm:
            raise ConfigurationError(
                f"{location.label} outside geometry with {self.num_dimms} DIMMs x "
                f"{self.ranks_per_dimm} ranks"
            )

    def validate_cell(self, cell: CellLocation) -> None:
        self.validate_rank(cell.rank_location)
        if not 0 <= cell.bank < self.banks_per_rank:
            raise ConfigurationError(f"bank {cell.bank} out of range")
        if not 0 <= cell.row < self.rows_per_bank:
            raise ConfigurationError(f"row {cell.row} out of range")
        if not 0 <= cell.column < self.columns_per_row:
            raise ConfigurationError(f"column {cell.column} out of range")

    def word_index(self, cell: CellLocation) -> int:
        """Flat word index of a cell location within the whole memory."""
        self.validate_cell(cell)
        rank_idx = self.rank_index(cell.rank_location)
        within_rank = (
            cell.bank * self.words_per_bank
            + cell.row * self.columns_per_row
            + cell.column
        )
        return rank_idx * self.words_per_rank + within_rank

    def cell_from_word_index(self, index: int) -> CellLocation:
        """Inverse of :meth:`word_index`."""
        if not 0 <= index < self.total_words:
            raise ConfigurationError(f"word index {index} out of range")
        rank_idx, within_rank = divmod(index, self.words_per_rank)
        bank, rest = divmod(within_rank, self.words_per_bank)
        row, column = divmod(rest, self.columns_per_row)
        rank = self.rank_from_index(rank_idx)
        return CellLocation(rank.dimm, rank.rank, bank, row, column)


def small_geometry() -> DramGeometry:
    """A deliberately tiny geometry used by tests and cell-level examples."""
    return DramGeometry(
        num_dimms=2,
        ranks_per_dimm=2,
        banks_per_rank=2,
        rows_per_bank=64,
        columns_per_row=32,
    )
