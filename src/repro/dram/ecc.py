"""SECDED ECC (single-error-correct, double-error-detect) over 64-bit words.

The platform protects every 64-bit word with 8 check bits (a 72,64
extended Hamming code).  Errors are classified exactly as in Table I of
the paper:

* 1 corrupted bit   -> corrected            (CE)
* 2 corrupted bits  -> detected, uncorrected (UE)
* >2 corrupted bits -> may escape detection  (SDC)

The encoder/decoder below implements a real extended Hamming code so the
classification emerges from syndrome decoding rather than being assumed.

Packed codec layout
-------------------
The hot path is the bit-packed batch engine.  An ``(N, 72)`` codeword
block packs into ``(N, 2)`` uint64 *lanes*:

* lane 0 holds codeword bits 0..63 LSB-first (bit ``c`` of the codeword
  is bit ``c`` of lane 0), i.e. Hamming positions 1..64;
* lane 1 holds codeword bits 64..71 in its low byte: bits 0..6 are
  Hamming positions 65..71 and bit 7 is the overall parity bit
  (codeword index 71).  Bits 8..63 of lane 1 are always zero.

Byte order within a lane is little-endian (``<u8``), so the lanes are
exactly ``np.packbits(codewords, axis=1, bitorder="little")`` zero-padded
to 16 bytes per row.

Syndromes come from the XOR-popcount trick instead of a matmul: syndrome
bit ``b`` is the XOR of all codeword bits whose 1-indexed Hamming
position has bit ``b`` set, so with one precomputed 72-bit column mask
per syndrome bit the whole syndrome reduces to
``popcount(lane & mask) & 1`` per lane — 7 masked popcounts replace the
``(N, 71) @ (71, 7)`` int64 matmul, and the overall parity is one more
popcount.  Encoding scatters the 64 data bits into their Hamming
positions with six constant shift-and-mask runs (the data positions form
six contiguous runs between the power-of-two parity positions), computes
each parity bit as ``popcount(word & coverage_mask) & 1``, and decoding
gathers the data word back with the inverse shifts.

``SecdedCode(packed=False)`` retains the original unpacked byte-per-bit
engine as the in-repo oracle; both paths share one classifier and are
pinned bit-identical by ``tests/test_ecc_packed.py`` and the throughput
benchmarks.  :meth:`SecdedCode.encode_batch` / :meth:`SecdedCode.decode_batch`
keep their ``(N, 72)`` uint8 signatures (``decode_batch`` additionally
accepts ``(N, 2)`` uint64 lanes directly), and the scalar
:meth:`SecdedCode.encode` / :meth:`SecdedCode.decode` API remains a thin
wrapper over one-element batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro import units
from repro.errors import ConfigurationError


class ErrorClass(Enum):
    """Outcome of reading one ECC codeword."""

    NO_ERROR = "none"
    CORRECTED = "CE"
    UNCORRECTABLE = "UE"
    SILENT = "SDC"


#: Stable numeric codes used by the batch decoder; index into this tuple
#: to recover the enum (``ERROR_CLASS_ORDER[code]``).
ERROR_CLASS_ORDER: Tuple[ErrorClass, ...] = (
    ErrorClass.NO_ERROR,
    ErrorClass.CORRECTED,
    ErrorClass.UNCORRECTABLE,
    ErrorClass.SILENT,
)
ERROR_CLASS_CODES: Dict[ErrorClass, int] = {
    cls: code for code, cls in enumerate(ERROR_CLASS_ORDER)
}


def classify_bit_errors(num_corrupted_bits: int) -> ErrorClass:
    """Table I of the paper: classification by the number of corrupted bits."""
    if num_corrupted_bits < 0:
        raise ConfigurationError("num_corrupted_bits must be non-negative")
    if num_corrupted_bits == 0:
        return ErrorClass.NO_ERROR
    if num_corrupted_bits == 1:
        return ErrorClass.CORRECTED
    if num_corrupted_bits == 2:
        return ErrorClass.UNCORRECTABLE
    return ErrorClass.SILENT


_WORD_SHIFTS = np.arange(units.WORD_BITS, dtype=np.uint64)
#: bytes per packed codeword row: 9 payload bytes zero-padded to 2 lanes
_LANE_BYTES = 16
_CODEWORD_BYTES = (units.CODEWORD_BITS + 7) // 8

if hasattr(np, "bitwise_count"):
    _popcount_u64 = np.bitwise_count
else:  # numpy < 2.0: classic SWAR popcount on uint64
    def _popcount_u64(x: np.ndarray) -> np.ndarray:
        x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
        x = (x & np.uint64(0x3333333333333333)) + (
            (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)


def _coerce_words(words: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
    """Validate and return data words as a 1-D uint64 array."""
    try:
        src = np.asarray(words)
        if src.ndim == 1 and src.size == 0:
            return np.zeros(0, dtype=np.uint64)
        if np.issubdtype(src.dtype, np.floating):
            raise TypeError("floating-point data words")
        # Casting a signed array to uint64 would wrap negatives silently.
        if np.issubdtype(src.dtype, np.signedinteger) and src.size and int(src.min()) < 0:
            raise OverflowError("negative data word")
        arr = src if src.dtype == np.uint64 else src.astype(np.uint64)
    except (OverflowError, ValueError, TypeError) as exc:
        raise ConfigurationError(
            "data words must be 64-bit unsigned integers"
        ) from exc
    if arr.ndim != 1:
        raise ConfigurationError(f"expected a 1-D array of words, got shape {arr.shape}")
    return arr


def words_to_bits(words: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
    """Unpack an ``(N,)`` array of 64-bit words into ``(N, 64)`` LSB-first bits."""
    arr = _coerce_words(words)
    return ((arr[:, None] >> _WORD_SHIFTS[None, :]) & np.uint64(1)).astype(np.uint8)


def bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Pack ``(N, 64)`` LSB-first bit rows into an ``(N,)`` uint64 array."""
    src = np.asarray(bits)
    if src.ndim != 2 or src.shape[1] != units.WORD_BITS:
        raise ConfigurationError(
            f"expected an (N, {units.WORD_BITS}) bit array, got shape {src.shape}"
        )
    # Check values before the uint64 cast: a stray -1 or 2 would otherwise
    # wrap into a garbage word with no error.
    if np.any((src != 0) & (src != 1)):
        raise ConfigurationError("bit array entries must be 0 or 1")
    arr = src.astype(np.uint64)
    # Each column contributes a distinct power of two, so the sum is exact.
    return (arr << _WORD_SHIFTS[None, :]).sum(axis=1, dtype=np.uint64)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(N, 72)`` bit-plane into ``(N, 2)`` uint64 lanes.

    Nonzero entries count as 1 (``np.packbits`` semantics) — this is the
    unvalidated fast path used for internal masks; use
    :func:`pack_codewords` for value-checked codeword packing.
    """
    data = np.ascontiguousarray(bits, dtype=np.uint8)
    if data.ndim != 2 or data.shape[1] != units.CODEWORD_BITS:
        raise ConfigurationError(
            f"expected an (N, {units.CODEWORD_BITS}) bit array, got shape {data.shape}"
        )
    payload = np.packbits(data, axis=1, bitorder="little")
    lanes = np.zeros((data.shape[0], _LANE_BYTES), dtype=np.uint8)
    lanes[:, :_CODEWORD_BYTES] = payload
    return lanes.view("<u8")


def pack_codewords(codewords: np.ndarray) -> np.ndarray:
    """Pack an ``(N, 72)`` codeword block into ``(N, 2)`` uint64 lanes.

    See the module docstring for the lane layout.  Entries must be 0/1.
    """
    block = np.asarray(codewords)
    if block.ndim != 2 or block.shape[1] != units.CODEWORD_BITS:
        raise ConfigurationError(
            f"codeword block must have shape (N, {units.CODEWORD_BITS}), "
            f"got shape {block.shape}"
        )
    if np.any((block != 0) & (block != 1)):
        raise ConfigurationError("codeword bits must be 0 or 1")
    return pack_bits(block)


def unpack_codewords(lanes: np.ndarray) -> np.ndarray:
    """Unpack ``(N, 2)`` uint64 lanes back into an ``(N, 72)`` uint8 block."""
    arr = np.asarray(lanes)
    if arr.ndim != 2 or arr.shape[1] != 2 or arr.dtype != np.uint64:
        raise ConfigurationError(
            "packed codewords must be an (N, 2) uint64 array, got shape "
            f"{arr.shape} dtype {arr.dtype}"
        )
    as_bytes = np.ascontiguousarray(arr.astype("<u8", copy=False)).view(np.uint8)
    return np.unpackbits(
        as_bytes, axis=1, count=units.CODEWORD_BITS, bitorder="little"
    )


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one codeword."""

    data: np.ndarray                 #: the 64 decoded data bits
    error_class: ErrorClass
    corrected_bit: int = -1          #: codeword position corrected, -1 if none


class BatchDecodeResult:
    """Result of decoding ``N`` codewords at once.

    ``error_codes`` holds one entry of :data:`ERROR_CLASS_CODES` per
    codeword so downstream array code (masking, ``np.bincount``) never
    touches Python enums; :meth:`error_classes` and :meth:`result`
    rehydrate the object API where convenience matters more than speed.

    The decoded data is stored in whichever representation the engine
    produced — packed ``(N,)`` uint64 words from the packed kernel or an
    ``(N, 64)`` bit matrix from the unpacked oracle — and the other view
    is materialised lazily on first access, so a streamed million-word
    decode never pays for a bit matrix nobody reads.
    """

    __slots__ = ("error_codes", "corrected_bits", "_data_bits", "_data_words")

    def __init__(
        self,
        *,
        error_codes: np.ndarray,
        corrected_bits: np.ndarray,
        data_bits: Optional[np.ndarray] = None,
        data_words: Optional[np.ndarray] = None,
    ) -> None:
        if data_bits is None and data_words is None:
            raise ConfigurationError(
                "BatchDecodeResult requires data_bits or data_words"
            )
        #: (N,) uint8 codes into ERROR_CLASS_ORDER
        self.error_codes = error_codes
        #: (N,) corrected codeword position, -1 if none
        self.corrected_bits = corrected_bits
        self._data_bits = data_bits
        self._data_words = data_words

    def __len__(self) -> int:
        return int(self.error_codes.shape[0])

    @property
    def data_bits(self) -> np.ndarray:
        """The decoded data as an ``(N, 64)`` LSB-first bit matrix."""
        if self._data_bits is None:
            self._data_bits = words_to_bits(self._data_words)
        return self._data_bits

    @property
    def data_words(self) -> np.ndarray:
        """The decoded data as an ``(N,)`` uint64 array."""
        if self._data_words is None:
            self._data_words = bits_to_words(self._data_bits)
        return self._data_words

    def error_classes(self) -> np.ndarray:
        """The per-codeword :class:`ErrorClass` values (object array)."""
        lookup = np.array(ERROR_CLASS_ORDER, dtype=object)
        return lookup[self.error_codes]

    def counts(self) -> Dict[ErrorClass, int]:
        """Number of codewords per error class."""
        histogram = np.bincount(self.error_codes, minlength=len(ERROR_CLASS_ORDER))
        return {cls: int(histogram[code]) for code, cls in enumerate(ERROR_CLASS_ORDER)}

    def result(self, index: int) -> DecodeResult:
        """The scalar :class:`DecodeResult` view of one decoded codeword."""
        if self._data_bits is not None:
            data = self._data_bits[index]
        else:
            # One-word unpack: don't materialise the whole bit matrix for
            # a scalar view into a streamed result.
            data = words_to_bits(self._data_words[index:index + 1])[0]
        return DecodeResult(
            data=data,
            error_class=ERROR_CLASS_ORDER[int(self.error_codes[index])],
            corrected_bit=int(self.corrected_bits[index]),
        )


class SecdedCode:
    """A (72, 64) extended Hamming code.

    Layout: 71 Hamming positions numbered 1..71 where power-of-two
    positions hold check bits and the rest hold the 64 data bits, plus an
    overall parity bit appended at index 71 of the codeword array.

    ``packed=True`` (the default) routes the batch API through the
    uint64-lane kernels described in the module docstring;
    ``packed=False`` keeps the original unpacked byte-per-bit engine,
    retained as the equivalence oracle.
    """

    data_bits = units.WORD_BITS
    codeword_bits = units.CODEWORD_BITS

    def __init__(self, packed: bool = True) -> None:
        self.packed = bool(packed)
        positions = np.arange(1, 72)                      # Hamming positions 1..71
        self._parity_positions = np.array([1, 2, 4, 8, 16, 32, 64])
        self._data_positions = np.array(
            [p for p in positions if p not in set(self._parity_positions.tolist())]
        )
        if self._data_positions.shape[0] != self.data_bits:
            raise ConfigurationError("internal SECDED layout error")

        # GF(2) structure, precomputed once so batch encode/decode reduce to
        # integer matmuls followed by `& 1`:
        #   * syndrome matrix S (71 x 7): S[c, b] = bit b of Hamming position
        #     c+1, so syndrome_bits = hamming_bits @ S (mod 2) is the XOR of
        #     the 1-indexed positions of all set bits;
        #   * coverage matrix C (64 x 7): C[i, j] = 1 when data position i is
        #     covered by parity position 2^j, so parity_bits = data @ C (mod 2).
        bit_index = np.arange(7)
        self._syndrome_matrix = (
            (positions[:, None] >> bit_index[None, :]) & 1
        ).astype(np.int64)
        self._coverage_matrix = (
            (self._data_positions[:, None] & self._parity_positions[None, :]) != 0
        ).astype(np.int64)
        self._syndrome_weights = (1 << bit_index).astype(np.int64)

        self._build_packed_constants()

    def _build_packed_constants(self) -> None:
        """Lane masks and shift runs for the packed kernels (module docstring)."""
        mask64 = (1 << 64) - 1
        # Per-syndrome-bit column masks over the 71 Hamming bits, split into
        # the two lanes (lane 1 mask covers only its low 7 bits, so the
        # overall parity bit at lane-1 bit 7 never leaks into a syndrome).
        syn_lo, syn_hi = [], []
        for b in range(7):
            full = 0
            for pos in range(1, 72):
                if (pos >> b) & 1:
                    full |= 1 << (pos - 1)
            syn_lo.append(full & mask64)
            syn_hi.append(full >> 64)
        self._syn_mask_lo = np.array(syn_lo, dtype=np.uint64)
        self._syn_mask_hi = np.array(syn_hi, dtype=np.uint64)

        # Per-parity-bit coverage masks in data-word bit space.
        coverage = []
        for parity_pos in self._parity_positions.tolist():
            mask = 0
            for i, data_pos in enumerate(self._data_positions.tolist()):
                if data_pos & parity_pos:
                    mask |= 1 << i
            coverage.append(mask)
        self._coverage_masks = np.array(coverage, dtype=np.uint64)
        # Parity bits live at codeword indices 0,1,3,7,15,31,63 — all lane 0.
        self._parity_lane_shifts = (self._parity_positions - 1).astype(np.uint64)

        # Scatter/gather runs: the data positions form contiguous runs
        # between parity positions, so data bit i maps to codeword bit
        # i + offset with a constant offset per run.  Runs whose codeword
        # bits land in lane 0 become (data-space mask, shift) pairs; the
        # single lane-1 run (data bits 57..63 -> codeword bits 64..70)
        # gets its own right-shift.
        offsets = (self._data_positions - 1 - np.arange(self.data_bits)).tolist()
        runs: List[Tuple[int, int]] = []        # (data-space mask, offset)
        start = 0
        while start < self.data_bits:
            end = start
            while end < self.data_bits and offsets[end] == offsets[start]:
                end += 1
            mask = ((1 << (end - start)) - 1) << start
            runs.append((mask, offsets[start]))
            start = end
        self._lo_runs = [
            (np.uint64(mask), np.uint64(offset))
            for mask, offset in runs
            if (mask.bit_length() - 1) + offset < 64
        ]
        hi_runs = [
            (mask, offset)
            for mask, offset in runs
            if (mask.bit_length() - 1) + offset >= 64
        ]
        if len(hi_runs) != 1:
            raise ConfigurationError("internal SECDED layout error")
        hi_mask, hi_offset = hi_runs[0]
        # Lowest data bit of the lane-1 run; its codeword bit is 64 + 0.
        self._hi_run_start = np.uint64(64 - hi_offset)
        self._hi_run_mask = np.uint64(hi_mask)
        self._lane1_hamming_mask = np.uint64((1 << 7) - 1)

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _bits_to_int(bits: np.ndarray) -> int:
        return int(sum(int(b) << i for i, b in enumerate(bits)))

    def _as_data_bits(self, data: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
        """Accept either ``(N,)`` uint64 words or an ``(N, 64)`` bit matrix."""
        arr = np.asarray(data)
        if arr.ndim == 2:
            if arr.shape[1] != self.data_bits:
                raise ConfigurationError(
                    f"bit matrix must have {self.data_bits} columns, got {arr.shape[1]}"
                )
            bits = arr.astype(np.uint8)
            if np.any(bits > 1):
                raise ConfigurationError("bit matrix entries must be 0 or 1")
            return bits
        return words_to_bits(data)

    def _as_data_words(self, data: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
        """Accept either ``(N,)`` uint64 words or an ``(N, 64)`` bit matrix."""
        arr = np.asarray(data)
        if arr.ndim == 2:
            return bits_to_words(self._as_data_bits(arr))
        return _coerce_words(arr)

    # -- packed kernels ----------------------------------------------------
    def _encode_words_to_lanes(self, words: np.ndarray) -> np.ndarray:
        """Encode validated ``(N,)`` uint64 words into ``(N, 2)`` lanes."""
        lane0 = np.zeros(words.shape, dtype=np.uint64)
        for mask, shift in self._lo_runs:
            lane0 |= (words & mask) << shift
        lane1 = (words >> self._hi_run_start) & self._lane1_hamming_mask
        for j in range(7):
            parity = (_popcount_u64(words & self._coverage_masks[j]) & 1)
            lane0 |= parity.astype(np.uint64) << self._parity_lane_shifts[j]
        overall = (_popcount_u64(lane0) + _popcount_u64(lane1)) & 1
        lane1 = lane1 | (overall.astype(np.uint64) << np.uint64(7))
        return np.stack([lane0, lane1], axis=1)

    def _classify(
        self, syndrome: np.ndarray, parity_ok: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared Table-I classifier: (codes, corrected positions, in-code mask).

        Both engines route through this so the packed path can never
        drift from the unpacked oracle's classification.
        """
        zero_syndrome = syndrome == 0
        codes = np.empty(syndrome.shape[0], dtype=np.uint8)
        corrected = np.full(syndrome.shape[0], -1, dtype=np.int64)

        # syndrome == 0, parity consistent: clean word.
        codes[zero_syndrome & parity_ok] = ERROR_CLASS_CODES[ErrorClass.NO_ERROR]
        # syndrome == 0, parity violated: the overall parity bit itself flipped.
        parity_flip = zero_syndrome & ~parity_ok
        codes[parity_flip] = ERROR_CLASS_CODES[ErrorClass.CORRECTED]
        corrected[parity_flip] = 71
        # syndrome != 0, parity violated: odd error count, assume one and
        # correct it; a syndrome outside 1..71 points outside the code
        # (miscorrection risk -> silent).
        odd = ~zero_syndrome & ~parity_ok
        in_code = odd & (syndrome <= 71)
        codes[in_code] = ERROR_CLASS_CODES[ErrorClass.CORRECTED]
        corrected[in_code] = syndrome[in_code] - 1
        codes[odd & ~in_code] = ERROR_CLASS_CODES[ErrorClass.SILENT]
        # syndrome != 0, parity consistent: an even (>=2) error count.
        codes[~zero_syndrome & parity_ok] = ERROR_CLASS_CODES[ErrorClass.UNCORRECTABLE]
        return codes, corrected, in_code

    def _decode_lanes(self, lanes: np.ndarray) -> BatchDecodeResult:
        """Decode ``(N, 2)`` uint64 lanes via XOR-popcount syndromes."""
        lane0 = lanes[:, 0]
        lane1 = lanes[:, 1] & self._lane1_hamming_mask
        received = ((lanes[:, 1] >> np.uint64(7)) & np.uint64(1)).astype(np.int64)

        syndrome = np.zeros(lane0.shape, dtype=np.int64)
        for b in range(7):
            ones = _popcount_u64(lane0 & self._syn_mask_lo[b]) + _popcount_u64(
                lane1 & self._syn_mask_hi[b]
            )
            syndrome |= (ones & 1).astype(np.int64) << b
        overall = ((_popcount_u64(lane0) + _popcount_u64(lane1)) & 1).astype(np.int64)
        parity_ok = overall == received

        codes, corrected, in_code = self._classify(syndrome, parity_ok)

        if in_code.any():
            lane0 = lane0.copy()
            lane1 = lane1.copy()
            flip_lo = in_code & (syndrome <= 64)
            flip_hi = in_code & (syndrome > 64)
            lane0[flip_lo] ^= np.uint64(1) << (syndrome[flip_lo] - 1).astype(np.uint64)
            lane1[flip_hi] ^= np.uint64(1) << (syndrome[flip_hi] - 65).astype(np.uint64)

        words = (lane1 << self._hi_run_start) & self._hi_run_mask
        for mask, shift in self._lo_runs:
            words |= (lane0 >> shift) & mask
        return BatchDecodeResult(
            data_words=words, error_codes=codes, corrected_bits=corrected
        )

    def _decode_unpacked(self, block: np.ndarray) -> BatchDecodeResult:
        """The original byte-per-bit decode path, kept as the oracle."""
        hamming = block[:, :71].astype(np.int64)
        overall_received = block[:, 71].astype(np.int64)

        syndrome = ((hamming @ self._syndrome_matrix) & 1) @ self._syndrome_weights
        overall_computed = hamming.sum(axis=1) & 1
        parity_ok = overall_computed == overall_received

        codes, corrected, in_code = self._classify(syndrome, parity_ok)

        hamming_out = block[:, :71].copy()
        flip_rows = np.flatnonzero(in_code)
        if flip_rows.size:
            hamming_out[flip_rows, syndrome[flip_rows] - 1] ^= 1

        data_bits = hamming_out[:, self._data_positions - 1]
        return BatchDecodeResult(
            data_bits=data_bits, error_codes=codes, corrected_bits=corrected
        )

    # -- batch API ---------------------------------------------------------
    def encode_batch(self, data: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
        """Encode a batch of words into an ``(N, 72)`` codeword matrix.

        ``data`` is either an ``(N,)`` array of 64-bit unsigned integers
        or an already unpacked ``(N, 64)`` LSB-first bit matrix.
        """
        if self.packed:
            return unpack_codewords(self.encode_packed(data))
        bits = self._as_data_bits(data)
        n = bits.shape[0]
        hamming = np.zeros((n, 71), dtype=np.uint8)
        hamming[:, self._data_positions - 1] = bits
        parity = (bits.astype(np.int64) @ self._coverage_matrix) & 1
        hamming[:, self._parity_positions - 1] = parity.astype(np.uint8)
        codewords = np.empty((n, self.codeword_bits), dtype=np.uint8)
        codewords[:, :71] = hamming
        codewords[:, 71] = (hamming.sum(axis=1, dtype=np.int64) & 1).astype(np.uint8)
        return codewords

    def encode_packed(self, data: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
        """Encode a batch of words directly into ``(N, 2)`` uint64 lanes.

        The zero-unpack fast path of the streaming cell array: data words
        in, packed codewords out, no ``(N, 72)`` byte matrix anywhere.
        """
        return self._encode_words_to_lanes(self._as_data_words(data))

    def decode_batch(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Decode an ``(N, 72)`` block of possibly corrupted codewords.

        Also accepts ``(N, 2)`` uint64 lanes (see the module docstring),
        which is how the streaming cell array feeds its stored state
        without ever unpacking.  Classification is identical between the
        packed and unpacked engines, bit for bit.
        """
        block = np.asarray(codewords)
        if block.ndim == 2 and block.shape[1] == 2 and block.dtype == np.uint64:
            if self.packed:
                return self._decode_lanes(block)
            return self._decode_unpacked(unpack_codewords(block))
        block = np.asarray(block, dtype=np.uint8)
        if block.ndim != 2 or block.shape[1] != self.codeword_bits:
            raise ConfigurationError(
                f"codeword block must have shape (N, {self.codeword_bits}), "
                f"got shape {block.shape}"
            )
        if self.packed:
            return self._decode_lanes(pack_bits(block))
        return self._decode_unpacked(block)

    # -- scalar API (thin wrappers over one-element batches) ----------------
    def encode(self, data: int) -> np.ndarray:
        """Encode a 64-bit integer into a 72-bit codeword (numpy uint8 array)."""
        if not isinstance(data, (int, np.integer)) or isinstance(data, bool):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        if not 0 <= data < (1 << self.data_bits):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        return self.encode_batch(np.array([data], dtype=np.uint64))[0]

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a possibly corrupted codeword and classify the outcome."""
        word = np.asarray(codeword, dtype=np.uint8)
        if word.shape != (self.codeword_bits,):
            raise ConfigurationError(
                f"codeword must have {self.codeword_bits} bits, got shape {word.shape}"
            )
        return self.decode_batch(word[None, :]).result(0)

    def decode_to_int(self, codeword: np.ndarray) -> Tuple[int, ErrorClass]:
        """Decode and return the data as an integer together with the class."""
        result = self.decode(codeword)
        return self._bits_to_int(result.data), result.error_class

    def roundtrip_with_errors(
        self, data: int, flip_positions: Iterable[int]
    ) -> Tuple[int, ErrorClass]:
        """Encode, flip the given codeword bit positions, decode.

        Convenience used heavily in tests: returns (decoded data, class).
        """
        codeword = self.encode(data)
        for position in flip_positions:
            if not 0 <= position < self.codeword_bits:
                raise ConfigurationError("flip position out of range")
            codeword[position] ^= 1
        return self.decode_to_int(codeword)
