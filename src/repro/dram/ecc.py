"""SECDED ECC (single-error-correct, double-error-detect) over 64-bit words.

The platform protects every 64-bit word with 8 check bits (a 72,64
extended Hamming code).  Errors are classified exactly as in Table I of
the paper:

* 1 corrupted bit   -> corrected            (CE)
* 2 corrupted bits  -> detected, uncorrected (UE)
* >2 corrupted bits -> may escape detection  (SDC)

The encoder/decoder below implements a real extended Hamming code so the
classification emerges from syndrome decoding rather than being assumed.

The hot path is the batch engine: the parity-check structure is
precomputed as small GF(2) matrices once per :class:`SecdedCode`, and
:meth:`SecdedCode.encode_batch` / :meth:`SecdedCode.decode_batch`
encode or decode whole ``(N, 72)`` blocks with matmul-mod-2 operations.
The scalar :meth:`SecdedCode.encode` / :meth:`SecdedCode.decode` API is
kept as a thin wrapper over one-element batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Tuple, Union

import numpy as np

from repro import units
from repro.errors import ConfigurationError


class ErrorClass(Enum):
    """Outcome of reading one ECC codeword."""

    NO_ERROR = "none"
    CORRECTED = "CE"
    UNCORRECTABLE = "UE"
    SILENT = "SDC"


#: Stable numeric codes used by the batch decoder; index into this tuple
#: to recover the enum (``ERROR_CLASS_ORDER[code]``).
ERROR_CLASS_ORDER: Tuple[ErrorClass, ...] = (
    ErrorClass.NO_ERROR,
    ErrorClass.CORRECTED,
    ErrorClass.UNCORRECTABLE,
    ErrorClass.SILENT,
)
ERROR_CLASS_CODES: Dict[ErrorClass, int] = {
    cls: code for code, cls in enumerate(ERROR_CLASS_ORDER)
}


def classify_bit_errors(num_corrupted_bits: int) -> ErrorClass:
    """Table I of the paper: classification by the number of corrupted bits."""
    if num_corrupted_bits < 0:
        raise ConfigurationError("num_corrupted_bits must be non-negative")
    if num_corrupted_bits == 0:
        return ErrorClass.NO_ERROR
    if num_corrupted_bits == 1:
        return ErrorClass.CORRECTED
    if num_corrupted_bits == 2:
        return ErrorClass.UNCORRECTABLE
    return ErrorClass.SILENT


_WORD_SHIFTS = np.arange(units.WORD_BITS, dtype=np.uint64)


def words_to_bits(words: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
    """Unpack an ``(N,)`` array of 64-bit words into ``(N, 64)`` LSB-first bits."""
    try:
        src = np.asarray(words)
        if np.issubdtype(src.dtype, np.floating):
            raise TypeError("floating-point data words")
        # Casting a signed array to uint64 would wrap negatives silently.
        if np.issubdtype(src.dtype, np.signedinteger) and src.size and int(src.min()) < 0:
            raise OverflowError("negative data word")
        arr = src if src.dtype == np.uint64 else src.astype(np.uint64)
    except (OverflowError, ValueError, TypeError) as exc:
        raise ConfigurationError(
            "data words must be 64-bit unsigned integers"
        ) from exc
    if arr.ndim != 1:
        raise ConfigurationError(f"expected a 1-D array of words, got shape {arr.shape}")
    return ((arr[:, None] >> _WORD_SHIFTS[None, :]) & np.uint64(1)).astype(np.uint8)


def bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Pack ``(N, 64)`` LSB-first bit rows into an ``(N,)`` uint64 array."""
    src = np.asarray(bits)
    if src.ndim != 2 or src.shape[1] != units.WORD_BITS:
        raise ConfigurationError(
            f"expected an (N, {units.WORD_BITS}) bit array, got shape {src.shape}"
        )
    # Check values before the uint64 cast: a stray -1 or 2 would otherwise
    # wrap into a garbage word with no error.
    if np.any((src != 0) & (src != 1)):
        raise ConfigurationError("bit array entries must be 0 or 1")
    arr = src.astype(np.uint64)
    # Each column contributes a distinct power of two, so the sum is exact.
    return (arr << _WORD_SHIFTS[None, :]).sum(axis=1, dtype=np.uint64)


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one codeword."""

    data: np.ndarray                 #: the 64 decoded data bits
    error_class: ErrorClass
    corrected_bit: int = -1          #: codeword position corrected, -1 if none


@dataclass(frozen=True)
class BatchDecodeResult:
    """Result of decoding ``N`` codewords at once.

    ``error_codes`` holds one entry of :data:`ERROR_CLASS_CODES` per
    codeword so downstream array code (masking, ``np.bincount``) never
    touches Python enums; :meth:`error_classes` and :meth:`result`
    rehydrate the object API where convenience matters more than speed.
    """

    data_bits: np.ndarray            #: (N, 64) decoded data bits
    error_codes: np.ndarray          #: (N,) uint8 codes into ERROR_CLASS_ORDER
    corrected_bits: np.ndarray       #: (N,) corrected codeword position, -1 if none

    def __len__(self) -> int:
        return int(self.error_codes.shape[0])

    @property
    def data_words(self) -> np.ndarray:
        """The decoded data as an ``(N,)`` uint64 array."""
        return bits_to_words(self.data_bits)

    def error_classes(self) -> np.ndarray:
        """The per-codeword :class:`ErrorClass` values (object array)."""
        lookup = np.array(ERROR_CLASS_ORDER, dtype=object)
        return lookup[self.error_codes]

    def counts(self) -> Dict[ErrorClass, int]:
        """Number of codewords per error class."""
        histogram = np.bincount(self.error_codes, minlength=len(ERROR_CLASS_ORDER))
        return {cls: int(histogram[code]) for code, cls in enumerate(ERROR_CLASS_ORDER)}

    def result(self, index: int) -> DecodeResult:
        """The scalar :class:`DecodeResult` view of one decoded codeword."""
        return DecodeResult(
            data=self.data_bits[index],
            error_class=ERROR_CLASS_ORDER[int(self.error_codes[index])],
            corrected_bit=int(self.corrected_bits[index]),
        )


class SecdedCode:
    """A (72, 64) extended Hamming code.

    Layout: 71 Hamming positions numbered 1..71 where power-of-two
    positions hold check bits and the rest hold the 64 data bits, plus an
    overall parity bit appended at index 71 of the codeword array.
    """

    data_bits = units.WORD_BITS
    codeword_bits = units.CODEWORD_BITS

    def __init__(self) -> None:
        positions = np.arange(1, 72)                      # Hamming positions 1..71
        self._parity_positions = np.array([1, 2, 4, 8, 16, 32, 64])
        self._data_positions = np.array(
            [p for p in positions if p not in set(self._parity_positions.tolist())]
        )
        if self._data_positions.shape[0] != self.data_bits:
            raise ConfigurationError("internal SECDED layout error")

        # GF(2) structure, precomputed once so batch encode/decode reduce to
        # integer matmuls followed by `& 1`:
        #   * syndrome matrix S (71 x 7): S[c, b] = bit b of Hamming position
        #     c+1, so syndrome_bits = hamming_bits @ S (mod 2) is the XOR of
        #     the 1-indexed positions of all set bits;
        #   * coverage matrix C (64 x 7): C[i, j] = 1 when data position i is
        #     covered by parity position 2^j, so parity_bits = data @ C (mod 2).
        bit_index = np.arange(7)
        self._syndrome_matrix = (
            (positions[:, None] >> bit_index[None, :]) & 1
        ).astype(np.int64)
        self._coverage_matrix = (
            (self._data_positions[:, None] & self._parity_positions[None, :]) != 0
        ).astype(np.int64)
        self._syndrome_weights = (1 << bit_index).astype(np.int64)

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _bits_to_int(bits: np.ndarray) -> int:
        return int(sum(int(b) << i for i, b in enumerate(bits)))

    def _as_data_bits(self, data: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
        """Accept either ``(N,)`` uint64 words or an ``(N, 64)`` bit matrix."""
        arr = np.asarray(data)
        if arr.ndim == 2:
            if arr.shape[1] != self.data_bits:
                raise ConfigurationError(
                    f"bit matrix must have {self.data_bits} columns, got {arr.shape[1]}"
                )
            bits = arr.astype(np.uint8)
            if np.any(bits > 1):
                raise ConfigurationError("bit matrix entries must be 0 or 1")
            return bits
        return words_to_bits(data)

    # -- batch API ---------------------------------------------------------
    def encode_batch(self, data: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
        """Encode a batch of words into an ``(N, 72)`` codeword matrix.

        ``data`` is either an ``(N,)`` array of 64-bit unsigned integers
        or an already unpacked ``(N, 64)`` LSB-first bit matrix.
        """
        bits = self._as_data_bits(data)
        n = bits.shape[0]
        hamming = np.zeros((n, 71), dtype=np.uint8)
        hamming[:, self._data_positions - 1] = bits
        parity = (bits.astype(np.int64) @ self._coverage_matrix) & 1
        hamming[:, self._parity_positions - 1] = parity.astype(np.uint8)
        codewords = np.empty((n, self.codeword_bits), dtype=np.uint8)
        codewords[:, :71] = hamming
        codewords[:, 71] = (hamming.sum(axis=1, dtype=np.int64) & 1).astype(np.uint8)
        return codewords

    def decode_batch(self, codewords: np.ndarray) -> BatchDecodeResult:
        """Decode an ``(N, 72)`` block of possibly corrupted codewords.

        Pure array math: one syndrome matmul classifies every word, the
        correctable rows get their flagged bit flipped in place, and the
        error classes come out as numeric codes (see
        :class:`BatchDecodeResult`).  Classification is identical to the
        scalar :meth:`decode`, bit for bit.
        """
        block = np.asarray(codewords, dtype=np.uint8)
        if block.ndim != 2 or block.shape[1] != self.codeword_bits:
            raise ConfigurationError(
                f"codeword block must have shape (N, {self.codeword_bits}), "
                f"got shape {block.shape}"
            )
        hamming = block[:, :71].astype(np.int64)
        overall_received = block[:, 71].astype(np.int64)

        syndrome = ((hamming @ self._syndrome_matrix) & 1) @ self._syndrome_weights
        overall_computed = hamming.sum(axis=1) & 1
        parity_ok = overall_computed == overall_received
        zero_syndrome = syndrome == 0

        codes = np.empty(block.shape[0], dtype=np.uint8)
        corrected = np.full(block.shape[0], -1, dtype=np.int64)

        # syndrome == 0, parity consistent: clean word.
        codes[zero_syndrome & parity_ok] = ERROR_CLASS_CODES[ErrorClass.NO_ERROR]
        # syndrome == 0, parity violated: the overall parity bit itself flipped.
        parity_flip = zero_syndrome & ~parity_ok
        codes[parity_flip] = ERROR_CLASS_CODES[ErrorClass.CORRECTED]
        corrected[parity_flip] = 71
        # syndrome != 0, parity violated: odd error count, assume one and
        # correct it; a syndrome outside 1..71 points outside the code
        # (miscorrection risk -> silent).
        odd = ~zero_syndrome & ~parity_ok
        in_code = odd & (syndrome <= 71)
        codes[in_code] = ERROR_CLASS_CODES[ErrorClass.CORRECTED]
        corrected[in_code] = syndrome[in_code] - 1
        codes[odd & ~in_code] = ERROR_CLASS_CODES[ErrorClass.SILENT]
        # syndrome != 0, parity consistent: an even (>=2) error count.
        codes[~zero_syndrome & parity_ok] = ERROR_CLASS_CODES[ErrorClass.UNCORRECTABLE]

        hamming_out = block[:, :71].copy()
        flip_rows = np.flatnonzero(in_code)
        if flip_rows.size:
            hamming_out[flip_rows, syndrome[flip_rows] - 1] ^= 1

        data_bits = hamming_out[:, self._data_positions - 1]
        return BatchDecodeResult(
            data_bits=data_bits, error_codes=codes, corrected_bits=corrected
        )

    # -- scalar API (thin wrappers over one-element batches) ----------------
    def encode(self, data: int) -> np.ndarray:
        """Encode a 64-bit integer into a 72-bit codeword (numpy uint8 array)."""
        if not isinstance(data, (int, np.integer)) or isinstance(data, bool):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        if not 0 <= data < (1 << self.data_bits):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        return self.encode_batch(np.array([data], dtype=np.uint64))[0]

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a possibly corrupted codeword and classify the outcome."""
        word = np.asarray(codeword, dtype=np.uint8)
        if word.shape != (self.codeword_bits,):
            raise ConfigurationError(
                f"codeword must have {self.codeword_bits} bits, got shape {word.shape}"
            )
        return self.decode_batch(word[None, :]).result(0)

    def decode_to_int(self, codeword: np.ndarray) -> Tuple[int, ErrorClass]:
        """Decode and return the data as an integer together with the class."""
        result = self.decode(codeword)
        return self._bits_to_int(result.data), result.error_class

    def roundtrip_with_errors(self, data: int, flip_positions) -> Tuple[int, ErrorClass]:
        """Encode, flip the given codeword bit positions, decode.

        Convenience used heavily in tests: returns (decoded data, class).
        """
        codeword = self.encode(data)
        for position in flip_positions:
            if not 0 <= position < self.codeword_bits:
                raise ConfigurationError("flip position out of range")
            codeword[position] ^= 1
        return self.decode_to_int(codeword)
