"""SECDED ECC (single-error-correct, double-error-detect) over 64-bit words.

The platform protects every 64-bit word with 8 check bits (a 72,64
extended Hamming code).  Errors are classified exactly as in Table I of
the paper:

* 1 corrupted bit   -> corrected            (CE)
* 2 corrupted bits  -> detected, uncorrected (UE)
* >2 corrupted bits -> may escape detection  (SDC)

The encoder/decoder below implements a real extended Hamming code so the
classification emerges from syndrome decoding rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

from repro import units
from repro.errors import ConfigurationError


class ErrorClass(Enum):
    """Outcome of reading one ECC codeword."""

    NO_ERROR = "none"
    CORRECTED = "CE"
    UNCORRECTABLE = "UE"
    SILENT = "SDC"


def classify_bit_errors(num_corrupted_bits: int) -> ErrorClass:
    """Table I of the paper: classification by the number of corrupted bits."""
    if num_corrupted_bits < 0:
        raise ConfigurationError("num_corrupted_bits must be non-negative")
    if num_corrupted_bits == 0:
        return ErrorClass.NO_ERROR
    if num_corrupted_bits == 1:
        return ErrorClass.CORRECTED
    if num_corrupted_bits == 2:
        return ErrorClass.UNCORRECTABLE
    return ErrorClass.SILENT


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one codeword."""

    data: np.ndarray                 #: the 64 decoded data bits
    error_class: ErrorClass
    corrected_bit: int = -1          #: codeword position corrected, -1 if none


class SecdedCode:
    """A (72, 64) extended Hamming code.

    Layout: 71 Hamming positions numbered 1..71 where power-of-two
    positions hold check bits and the rest hold the 64 data bits, plus an
    overall parity bit appended at index 71 of the codeword array.
    """

    data_bits = units.WORD_BITS
    codeword_bits = units.CODEWORD_BITS

    def __init__(self) -> None:
        positions = np.arange(1, 72)                      # Hamming positions 1..71
        self._parity_positions = np.array([1, 2, 4, 8, 16, 32, 64])
        self._data_positions = np.array(
            [p for p in positions if p not in set(self._parity_positions.tolist())]
        )
        if self._data_positions.shape[0] != self.data_bits:
            raise ConfigurationError("internal SECDED layout error")

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _int_to_bits(value: int, width: int) -> np.ndarray:
        return np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)

    @staticmethod
    def _bits_to_int(bits: np.ndarray) -> int:
        return int(sum(int(b) << i for i, b in enumerate(bits)))

    def _hamming_syndrome(self, hamming_bits: np.ndarray) -> int:
        """Syndrome of the 71 Hamming positions (1-indexed positions)."""
        syndrome = 0
        for position in np.flatnonzero(hamming_bits) + 1:
            syndrome ^= int(position)
        return syndrome

    # -- API ---------------------------------------------------------------
    def encode(self, data: int) -> np.ndarray:
        """Encode a 64-bit integer into a 72-bit codeword (numpy uint8 array)."""
        if not 0 <= data < (1 << self.data_bits):
            raise ConfigurationError("data must be a 64-bit unsigned integer")
        data_bits = self._int_to_bits(data, self.data_bits)

        hamming = np.zeros(71, dtype=np.uint8)
        hamming[self._data_positions - 1] = data_bits
        # Each parity bit covers the positions whose index has that bit set.
        for parity_position in self._parity_positions:
            covered = [
                p for p in range(1, 72)
                if (p & parity_position) and p != parity_position
            ]
            hamming[parity_position - 1] = np.bitwise_xor.reduce(
                hamming[np.array(covered) - 1]
            )
        overall = np.bitwise_xor.reduce(hamming)
        return np.concatenate([hamming, [overall]]).astype(np.uint8)

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a possibly corrupted codeword and classify the outcome."""
        word = np.asarray(codeword, dtype=np.uint8)
        if word.shape != (self.codeword_bits,):
            raise ConfigurationError(
                f"codeword must have {self.codeword_bits} bits, got shape {word.shape}"
            )
        hamming = word[:71].copy()
        overall_received = int(word[71])
        syndrome = self._hamming_syndrome(hamming)
        overall_computed = int(np.bitwise_xor.reduce(hamming))
        parity_ok = overall_computed == overall_received

        corrected_bit = -1
        if syndrome == 0 and parity_ok:
            error_class = ErrorClass.NO_ERROR
        elif syndrome == 0 and not parity_ok:
            # The overall parity bit itself flipped: correctable.
            error_class = ErrorClass.CORRECTED
            corrected_bit = 71
        elif syndrome != 0 and not parity_ok:
            # Odd number of errors; assume one and correct it.
            error_class = ErrorClass.CORRECTED
            if 1 <= syndrome <= 71:
                hamming[syndrome - 1] ^= 1
                corrected_bit = syndrome - 1
            else:   # syndrome points outside the code: miscorrection risk
                error_class = ErrorClass.SILENT
        else:
            # syndrome != 0 and parity consistent: an even (>=2) error count.
            error_class = ErrorClass.UNCORRECTABLE

        data_bits = hamming[self._data_positions - 1]
        return DecodeResult(data=data_bits, error_class=error_class,
                            corrected_bit=corrected_bit)

    def decode_to_int(self, codeword: np.ndarray) -> Tuple[int, ErrorClass]:
        """Decode and return the data as an integer together with the class."""
        result = self.decode(codeword)
        return self._bits_to_int(result.data), result.error_class

    def roundtrip_with_errors(self, data: int, flip_positions) -> Tuple[int, ErrorClass]:
        """Encode, flip the given codeword bit positions, decode.

        Convenience used heavily in tests: returns (decoded data, class).
        """
        codeword = self.encode(data)
        for position in flip_positions:
            if not 0 <= position < self.codeword_bits:
                raise ConfigurationError("flip position out of range")
            codeword[position] ^= 1
        return self.decode_to_int(codeword)
