"""Calibration constants of the DRAM reliability model.

The paper measures error rates on real hardware; this reproduction uses
a retention-failure model whose constants are *calibrated* so that the
simulated platform reproduces the published magnitudes and trends:

* WER grows exponentially with TREFP (Fig. 7f) and with temperature,
  covering roughly ``1e-10 .. 1e-5`` across the studied range;
* WER varies ~8x across workloads at a fixed operating point (Fig. 7e);
* WER varies up to ~188x across DIMM/ranks (Fig. 8);
* UEs appear only at 70 C for TREFP >= 1.45 s, the mean PUE grows by
  ~2.15x from 1.45 s to 1.727 s and saturates at 2.283 s (Fig. 9a);
* lowering VDD from 1.5 V to 1.428 V has a negligible effect (Sec. V).

The model: each DRAM cell's retention time is lognormally distributed
across the population.  A bit fails when its retention time is shorter
than the *effective* refresh interval it experiences (the configured
TREFP, unless the running program re-accesses the word more often).
Raising the temperature shifts the retention distribution down
(retention roughly halves every 10 C, consistent with [19]); a high
memory-access rate adds disturbance (cell-to-cell interference)
failures.  Data patterns with higher entropy expose more vulnerable
charge states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetentionCalibration:
    """Constants of the lognormal retention-failure model.

    ``ln`` of a cell's retention time (seconds) at the reference
    temperature is Normal(``log_median_retention_50c``, ``log_sigma``).
    """

    #: natural log of the median cell retention time at 50 C, in seconds
    log_median_retention_50c: float = 8.45
    #: lognormal shape parameter of the retention-time distribution
    log_sigma: float = 1.35
    #: retention degradation per degree Celsius (ln units); 0.08/°C halves
    #: retention roughly every 9 C, consistent with Hamamoto et al. [19]
    temperature_slope_per_c: float = 0.08
    #: reference temperature of the calibration (deg C)
    reference_temperature_c: float = 50.0
    #: ln-units retention loss per volt of VDD reduction below nominal;
    #: small, because the paper found the 1.5 V -> 1.428 V drop negligible
    vdd_slope_per_volt: float = 0.6
    #: nominal DDR3 supply voltage
    nominal_vdd_v: float = 1.5

    def __post_init__(self) -> None:
        if self.log_sigma <= 0:
            raise ConfigurationError("log_sigma must be positive")
        if self.temperature_slope_per_c < 0:
            raise ConfigurationError("temperature_slope_per_c must be non-negative")


@dataclass(frozen=True)
class WorkloadEffectCalibration:
    """Constants of the workload-dependent modulation terms."""

    #: residual failure probability retained by implicitly-refreshed words;
    #: re-reading a word recharges it, but VRT cells can still fail
    implicit_refresh_residual: float = 0.03
    #: lognormal spread (in ln units) of per-word reuse times around the
    #: workload's mean Treuse; a wide spread means even a workload whose mean
    #: reuse time is below TREFP still leaves part of its footprint
    #: un-refreshed (and vice versa), which compresses the WER spread across
    #: workloads to the ~8x the paper reports
    reuse_spread_sigma: float = 1.4
    #: strength of the access-rate-driven disturbance (interference) term,
    #: expressed as an equivalent multiple of the retention failure rate
    #: per (memory access per kilo-cycle)
    interference_per_access_per_kcycle: float = 0.03
    #: minimum data-pattern vulnerability factor (entropy = 0, solid pattern)
    entropy_floor: float = 0.35
    #: additional vulnerability per bit of data entropy (max entropy = 32 bits)
    entropy_slope: float = 0.70 / 32.0
    #: lognormal sigma of the per-(workload, rank) idiosyncratic factor the
    #: features cannot explain; this bounds the best achievable model accuracy
    idiosyncratic_sigma: float = 0.10
    #: lognormal sigma of run-to-run variation (variable retention time)
    run_to_run_sigma: float = 0.04


@dataclass(frozen=True)
class UeCalibration:
    """Constants of the uncorrectable-error (multi-bit) model."""

    #: fraction of multi-bit-vulnerable words actually touched (and hence
    #: detected as UE -> crash) during a 2-hour run
    scrub_coverage: float = 0.55
    #: clustering factor: neighbouring bits do not fail independently, which
    #: boosts the 2-bit-per-word probability relative to the i.i.d. estimate
    clustering_factor: float = 1.6
    #: extra super-quadratic growth of multi-bit failures with the refresh
    #: period: clustered weak cells in the same word share the exposure
    #: window, so the observed PUE rises from "rare below 1.45 s" to
    #: "certain at 2.283 s" (Fig. 9a) faster than independent bits would
    trefp_exponent: float = 4.0
    #: reference refresh period for the super-quadratic term (seconds)
    trefp_reference_s: float = 1.45
    #: extra exponential temperature sensitivity (per deg C, referenced to
    #: 70 C) of multi-bit failures: the VRT-activated weak-cell clusters that
    #: produce UEs only open up near the top of the studied temperature
    #: range, which is why the paper observes UEs exclusively at 70 C
    temperature_boost_per_c: float = 0.30
    #: reference temperature of the boost term (deg C)
    temperature_reference_c: float = 70.0


@dataclass(frozen=True)
class DramCalibration:
    """Aggregate calibration bundle used by the statistical model."""

    retention: RetentionCalibration = RetentionCalibration()
    workload: WorkloadEffectCalibration = WorkloadEffectCalibration()
    ue: UeCalibration = UeCalibration()
    #: timescale (seconds) of WER convergence during a characterization run;
    #: chosen so the last-10-minute change of a 2-hour run is < 3 % (Sec. V.A)
    convergence_tau_s: float = 1800.0


DEFAULT_CALIBRATION = DramCalibration()
