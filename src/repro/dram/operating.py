"""Operating point of the DRAM subsystem.

An operating point bundles the two circuit parameters the study scales
(refresh period ``TREFP`` and supply voltage ``VDD``) with the DIMM
temperature imposed by the thermal testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OperatingPoint:
    """DRAM circuit parameters plus the environmental temperature."""

    trefp_s: float = units.NOMINAL_TREFP_S
    vdd_v: float = units.NOMINAL_VDD_V
    temperature_c: float = units.NOMINAL_TEMP_C

    def __post_init__(self) -> None:
        if self.trefp_s <= 0:
            raise ConfigurationError("trefp_s must be positive")
        if not units.NOMINAL_TREFP_S <= self.trefp_s <= units.MAX_TREFP_S + 1e-9:
            raise ConfigurationError(
                f"trefp_s={self.trefp_s} outside the configurable range "
                f"[{units.NOMINAL_TREFP_S}, {units.MAX_TREFP_S}] of the platform"
            )
        if not units.MIN_VDD_V - 1e-9 <= self.vdd_v <= units.NOMINAL_VDD_V + 1e-9:
            raise ConfigurationError(
                f"vdd_v={self.vdd_v} outside the stable range "
                f"[{units.MIN_VDD_V}, {units.NOMINAL_VDD_V}] found in the paper"
            )
        if not 20.0 <= self.temperature_c <= units.MAX_TEMP_C + 1e-9:
            raise ConfigurationError(
                f"temperature_c={self.temperature_c} outside the studied range "
                f"[20, {units.MAX_TEMP_C}]"
            )

    # -- convenience constructors ------------------------------------------
    @classmethod
    def nominal(cls) -> "OperatingPoint":
        """JEDEC-nominal refresh and voltage at ambient temperature."""
        return cls()

    @classmethod
    def relaxed(cls, trefp_s: float, temperature_c: float = 50.0) -> "OperatingPoint":
        """Scaled refresh period with the lowered VDD used throughout Sec. V."""
        return cls(trefp_s=trefp_s, vdd_v=units.MIN_VDD_V, temperature_c=temperature_c)

    def with_temperature(self, temperature_c: float) -> "OperatingPoint":
        return replace(self, temperature_c=temperature_c)

    def with_trefp(self, trefp_s: float) -> "OperatingPoint":
        return replace(self, trefp_s=trefp_s)

    @property
    def refresh_scaling(self) -> float:
        """How many times longer than nominal the refresh period is."""
        return self.trefp_s / units.NOMINAL_TREFP_S

    @property
    def is_relaxed(self) -> bool:
        """True when either circuit parameter deviates from nominal."""
        return (
            self.trefp_s > units.NOMINAL_TREFP_S + 1e-12
            or self.vdd_v < units.NOMINAL_VDD_V - 1e-12
        )
