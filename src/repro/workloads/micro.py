"""Data-pattern micro-benchmarks.

The conventional way to characterise DRAM retention is to write a
worst-case data pattern (typically random data [39]) across the whole
array, wait, and read it back.  The paper uses exactly such a random
data-pattern micro-benchmark as the baseline that the workload-aware
model is compared against (Fig. 2 and Fig. 13).  A solid (all-zeros)
pattern variant is included for data-pattern ablations.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.workloads.base import TraceRecorder, Workload


class DataPatternWorkload(Workload):
    """Write a data pattern over the footprint, idle, then sweep-read it."""

    name = "data-pattern"
    suite = "micro"
    description = "Conventional retention-characterization micro-benchmark"

    def __init__(self, threads: int = 1, seed: int = 31, words: int = 4096,
                 sweeps: int = 3, pattern: str = "random",
                 idle_instructions: int = 400_000, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        if pattern not in ("random", "solid", "checkerboard"):
            raise ValueError(f"unknown pattern {pattern!r}")
        self.words = words
        self.sweeps = sweeps
        self.pattern = pattern
        self.idle_instructions = idle_instructions

    @property
    def display_name(self) -> str:
        return f"data-pattern-{self.pattern}"

    def _pattern_value(self, index: int, rng: np.random.Generator) -> float:
        if self.pattern == "random":
            # A random 52-bit mantissa pattern: maximum data entropy.
            return float(rng.integers(0, 2 ** 52))
        if self.pattern == "solid":
            return 0.0
        # checkerboard
        return float(0x5555555555555 if index % 2 == 0 else 0xAAAAAAAAAAAAA)

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        buffer = recorder.alloc(self.words, "pattern_buffer")

        for index in range(self.words):
            buffer.write(index, self._pattern_value(index, rng))
            recorder.compute(1)

        for _sweep in range(self.sweeps):
            # The micro-benchmark spends most of its time waiting for cells to
            # decay; compute-only instructions model that idle period.
            recorder.compute(self.idle_instructions)
            for index in range(self.words):
                buffer.read(index)
                recorder.compute(1)


def random_data_pattern(**kwargs: Any) -> DataPatternWorkload:
    """The random data-pattern micro-benchmark used in Fig. 2 / Fig. 13."""
    kwargs.setdefault("pattern", "random")
    return DataPatternWorkload(**kwargs)


def solid_data_pattern(**kwargs: Any) -> DataPatternWorkload:
    """An all-zeros pattern: the least stressful data pattern."""
    kwargs.setdefault("pattern", "solid")
    return DataPatternWorkload(**kwargs)
