"""LULESH-style shock-hydrodynamics proxy with two compiler variants.

Section VI.C of the paper uses ``lulesh`` compiled with default (-O2)
and aggressive (-F) optimizations to show that compiler flags implicitly
change DRAM error behaviour (about 29 % difference in WER).  The two
variants below model that: the aggressively optimised build executes
fewer arithmetic instructions per memory access (vectorisation/fusion),
so its memory-access *rate* is higher and its run time shorter.
"""

from __future__ import annotations

from repro.workloads.base import TraceRecorder, Workload


class LuleshWorkload(Workload):
    """Explicit hydrodynamics time-stepping over a 3-D structured mesh."""

    name = "lulesh"
    suite = "hpc"
    description = "Stencil-heavy hydrodynamics proxy (Fig. 13 case study)"

    #: arithmetic instructions accounted per stencil point for each variant
    COMPUTE_PER_POINT = {"O2": 14, "F": 5}

    def __init__(self, threads: int = 8, seed: int = 37, edge: int = 9,
                 steps: int = 4, optimization: str = "O2", **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        if optimization not in self.COMPUTE_PER_POINT:
            raise ValueError(f"unknown optimization level {optimization!r}")
        self.edge = edge
        self.steps = steps
        self.optimization = optimization

    @property
    def display_name(self) -> str:
        return f"lulesh({self.optimization})"

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        n = self.edge
        num_elements = n * n * n
        energy = recorder.alloc(num_elements, "energy")
        pressure = recorder.alloc(num_elements, "pressure")
        volume = recorder.alloc(num_elements, "volume")
        compute_cost = self.COMPUTE_PER_POINT[self.optimization]

        for i in range(num_elements):
            energy.write(i, abs(rng.normal()) + 1.0)
            volume.write(i, 1.0)

        def element(x: int, y: int, z: int) -> int:
            return (x * n + y) * n + z

        for _step in range(self.steps):
            schedule = self.interleaved_schedule(n)
            for x, thread in schedule:
                for y in range(n):
                    for z in range(n):
                        index = element(x, y, z)
                        local_energy = energy.read(index, thread)
                        neighbours = 0.0
                        for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                           (0, -1, 0), (0, 0, 1), (0, 0, -1)):
                            nx = min(max(x + dx, 0), n - 1)
                            ny = min(max(y + dy, 0), n - 1)
                            nz = min(max(z + dz, 0), n - 1)
                            neighbours += energy.read(element(nx, ny, nz), thread)
                        recorder.compute(compute_cost)
                        new_pressure = 0.4 * local_energy + 0.05 * neighbours
                        pressure.write(index, new_pressure, thread)
                        volume.write(index, volume.read(index, thread) *
                                     (1.0 - 0.001 * new_pressure), thread)
            # Lagrange nodal update sweep.
            schedule = self.interleaved_schedule(n)
            for x, thread in schedule:
                for y in range(n):
                    for z in range(n):
                        index = element(x, y, z)
                        energy.write(index, energy.read(index, thread) -
                                     0.01 * pressure.read(index, thread), thread)
                        recorder.compute(compute_cost // 2 + 1)
            if self.threads > 1:
                recorder.compute(80 * self.threads)
