"""Compute-intensive benchmarks (Rodinia / Parsec miniatures).

Each class re-implements the algorithmic core of the original benchmark
on instrumented arrays: ``backprop`` (neural-network training), ``kmeans``
(clustering), ``nw`` (Needleman-Wunsch sequence alignment), ``srad``
(speckle-reducing anisotropic diffusion stencil) and ``fmm`` (an
N-body solver with a far-field cell approximation).  Every benchmark has
a single-threaded and an 8-thread ``(par)`` variant, selected through the
``threads`` constructor argument exactly as in the paper.
"""

from __future__ import annotations

import math

from repro.workloads.base import TraceRecorder, Workload


class BackpropWorkload(Workload):
    """Two-layer perceptron training (Rodinia ``backprop``)."""

    name = "backprop"
    suite = "rodinia"
    description = "MLP forward/backward passes over a synthetic data set"

    def __init__(self, threads: int = 1, seed: int = 7,
                 input_size: int = 12, hidden_size: int = 16,
                 samples: int = 28, epochs: int = 2, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.samples = samples
        self.epochs = epochs

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        inputs = recorder.alloc(self.samples * self.input_size, "inputs")
        targets = recorder.alloc(self.samples, "targets")
        w_hidden = recorder.alloc(self.input_size * self.hidden_size, "w_hidden")
        w_out = recorder.alloc(self.hidden_size, "w_out")
        hidden = recorder.alloc(self.samples * self.hidden_size, "hidden")

        # Initialisation phase (data set + weights).
        for i in range(self.samples * self.input_size):
            inputs.write(i, rng.normal())
            recorder.compute(2)
        for i in range(self.samples):
            targets.write(i, rng.random())
        for i in range(self.input_size * self.hidden_size):
            w_hidden.write(i, rng.normal() * 0.1)
        for i in range(self.hidden_size):
            w_out.write(i, rng.normal() * 0.1)

        learning_rate = 0.05
        for _epoch in range(self.epochs):
            schedule = self.interleaved_schedule(self.samples)
            for sample, thread in schedule:
                # Forward pass: hidden = sigmoid(W_h . x)
                for h in range(self.hidden_size):
                    acc = 0.0
                    for i in range(self.input_size):
                        acc += (
                            inputs.read(sample * self.input_size + i, thread)
                            * w_hidden.read(i * self.hidden_size + h, thread)
                        )
                        recorder.compute(2)
                    activation = 1.0 / (1.0 + math.exp(-max(min(acc, 30.0), -30.0)))
                    hidden.write(sample * self.hidden_size + h, activation, thread)
                    recorder.compute(4)
                # Output + backward pass on the output layer.
                output = 0.0
                for h in range(self.hidden_size):
                    output += hidden.read(sample * self.hidden_size + h, thread) * \
                        w_out.read(h, thread)
                    recorder.compute(2)
                error = targets.read(sample, thread) - output
                recorder.compute(3)
                for h in range(self.hidden_size):
                    gradient = error * hidden.read(sample * self.hidden_size + h, thread)
                    w_out.write(h, w_out.read(h, thread) + learning_rate * gradient, thread)
                    recorder.compute(4)


class KmeansWorkload(Workload):
    """K-means clustering (Rodinia ``kmeans``)."""

    name = "kmeans"
    suite = "rodinia"
    description = "Lloyd iterations over a synthetic point cloud"

    def __init__(self, threads: int = 1, seed: int = 11,
                 points: int = 360, dims: int = 4, clusters: int = 5,
                 iterations: int = 3, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        self.points = points
        self.dims = dims
        self.clusters = clusters
        self.iterations = iterations

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        data = recorder.alloc(self.points * self.dims, "points")
        centroids = recorder.alloc(self.clusters * self.dims, "centroids")
        assignments = recorder.alloc(self.points, "assignments")
        sums = recorder.alloc(self.clusters * self.dims, "sums")
        counts = recorder.alloc(self.clusters, "counts")

        for i in range(self.points * self.dims):
            data.write(i, rng.normal())
        for i in range(self.clusters * self.dims):
            centroids.write(i, rng.normal())

        for _iteration in range(self.iterations):
            for i in range(self.clusters * self.dims):
                sums.write(i, 0.0)
            for c in range(self.clusters):
                counts.write(c, 0.0)

            schedule = self.interleaved_schedule(self.points)
            for point, thread in schedule:
                best_cluster = 0
                best_distance = float("inf")
                for c in range(self.clusters):
                    distance = 0.0
                    for d in range(self.dims):
                        diff = data.read(point * self.dims + d, thread) - \
                            centroids.read(c * self.dims + d, thread)
                        distance += diff * diff
                        recorder.compute(3)
                    if distance < best_distance:
                        best_distance = distance
                        best_cluster = c
                    recorder.compute(2)
                assignments.write(point, float(best_cluster), thread)
                counts.write(best_cluster, counts.read(best_cluster, thread) + 1.0, thread)
                for d in range(self.dims):
                    index = best_cluster * self.dims + d
                    sums.write(index, sums.read(index, thread) +
                               data.read(point * self.dims + d, thread), thread)
                    recorder.compute(1)

            # Centroid update (done by one thread after a barrier).
            recorder.compute(200 * self.threads)   # barrier / reduction overhead
            for c in range(self.clusters):
                count = max(counts.read(c), 1.0)
                for d in range(self.dims):
                    index = c * self.dims + d
                    centroids.write(index, sums.read(index) / count)
                    recorder.compute(2)


class NeedlemanWunschWorkload(Workload):
    """Needleman-Wunsch dynamic-programming alignment (Rodinia ``nw``)."""

    name = "nw"
    suite = "rodinia"
    description = "DP matrix fill for global sequence alignment"

    def __init__(self, threads: int = 1, seed: int = 13, length: int = 88,
                 gap_penalty: float = 2.0, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        self.length = length
        self.gap_penalty = gap_penalty

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        n = self.length
        seq_a = recorder.alloc(n, "seq_a")
        seq_b = recorder.alloc(n, "seq_b")
        matrix = recorder.alloc((n + 1) * (n + 1), "dp_matrix")
        reference = recorder.alloc((n + 1) * (n + 1), "reference")

        # Rodinia's nw fills both the similarity (reference) matrix and the DP
        # matrix with initial values before the wavefront starts; the long gap
        # between this initialisation and the later use of each cell is what
        # gives nw the largest average DRAM reuse time of the suite (Table II).
        for i in range(n):
            seq_a.write(i, float(rng.integers(0, 4)))
            seq_b.write(i, float(rng.integers(0, 4)))
        for i in range((n + 1) * (n + 1)):
            reference.write(i, float(rng.integers(-2, 3)))
            matrix.write(i, 0.0)
            recorder.compute(1)
        for i in range(n + 1):
            matrix.write(i * (n + 1), -self.gap_penalty * i)
            matrix.write(i, -self.gap_penalty * i)

        # Anti-diagonal wavefront: the unit of parallel work in Rodinia's nw.
        for diagonal in range(2, 2 * n + 1):
            cells = [
                (i, diagonal - i)
                for i in range(max(1, diagonal - n), min(n, diagonal - 1) + 1)
            ]
            schedule = self.interleaved_schedule(len(cells)) if self.threads > 1 else \
                [(k, 0) for k in range(len(cells))]
            for cell_index, thread in schedule:
                i, j = cells[cell_index]
                match = 1.0 if seq_a.read(i - 1, thread) == seq_b.read(j - 1, thread) else -1.0
                match += reference.read(i * (n + 1) + j, thread)
                recorder.compute(2)
                diag = matrix.read((i - 1) * (n + 1) + (j - 1), thread) + match
                up = matrix.read((i - 1) * (n + 1) + j, thread) - self.gap_penalty
                left = matrix.read(i * (n + 1) + (j - 1), thread) - self.gap_penalty
                matrix.write(i * (n + 1) + j, max(diag, up, left), thread)
                recorder.compute(4)
            if self.threads > 1:
                recorder.compute(50 * self.threads)   # wavefront barrier


class SradWorkload(Workload):
    """Speckle-reducing anisotropic diffusion stencil (Rodinia ``srad``)."""

    name = "srad"
    suite = "rodinia"
    description = "Iterative 4-point diffusion stencil over a 2-D image"

    def __init__(self, threads: int = 1, seed: int = 17, rows: int = 44,
                 cols: int = 44, iterations: int = 3, lam: float = 0.5, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        self.rows = rows
        self.cols = cols
        self.iterations = iterations
        self.lam = lam

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        image = recorder.alloc(self.rows * self.cols, "image")
        coefficients = recorder.alloc(self.rows * self.cols, "coefficients")

        for i in range(self.rows * self.cols):
            image.write(i, abs(rng.normal()) + 1.0)

        for _iteration in range(self.iterations):
            schedule = self.interleaved_schedule(self.rows)
            for row, thread in schedule:
                for col in range(self.cols):
                    index = row * self.cols + col
                    center = image.read(index, thread)
                    north = image.read(max(row - 1, 0) * self.cols + col, thread)
                    south = image.read(min(row + 1, self.rows - 1) * self.cols + col, thread)
                    west = image.read(row * self.cols + max(col - 1, 0), thread)
                    east = image.read(row * self.cols + min(col + 1, self.cols - 1), thread)
                    gradient = (north + south + west + east) - 4.0 * center
                    coefficient = 1.0 / (1.0 + abs(gradient) / max(center, 1e-6))
                    coefficients.write(index, coefficient, thread)
                    recorder.compute(8)
            schedule = self.interleaved_schedule(self.rows)
            for row, thread in schedule:
                for col in range(self.cols):
                    index = row * self.cols + col
                    update = coefficients.read(index, thread) * self.lam
                    image.write(index, image.read(index, thread) * (1.0 - 0.1 * update), thread)
                    recorder.compute(4)
            if self.threads > 1:
                recorder.compute(50 * self.threads)   # per-iteration barrier


class FmmWorkload(Workload):
    """N-body solver with a far-field cell approximation (Parsec ``fmm``)."""

    name = "fmm"
    suite = "parsec"
    description = "Particle-particle near field plus particle-cell far field"

    def __init__(self, threads: int = 1, seed: int = 19, particles: int = 176,
                 grid: int = 6, steps: int = 2, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        self.particles = particles
        self.grid = grid
        self.steps = steps

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        n = self.particles
        positions = recorder.alloc(n * 2, "positions")
        masses = recorder.alloc(n, "masses")
        forces = recorder.alloc(n * 2, "forces")
        num_cells = self.grid * self.grid
        cell_mass = recorder.alloc(num_cells, "cell_mass")
        cell_center = recorder.alloc(num_cells * 2, "cell_center")

        for i in range(n):
            positions.write(i * 2, rng.random())
            positions.write(i * 2 + 1, rng.random())
            masses.write(i, rng.random() + 0.5)

        for _step in range(self.steps):
            # Upward pass: aggregate particles into cells.
            for c in range(num_cells):
                cell_mass.write(c, 0.0)
                cell_center.write(c * 2, 0.0)
                cell_center.write(c * 2 + 1, 0.0)
            for i in range(n):
                x = positions.read(i * 2)
                y = positions.read(i * 2 + 1)
                cell = min(int(x * self.grid), self.grid - 1) * self.grid + \
                    min(int(y * self.grid), self.grid - 1)
                mass = masses.read(i)
                cell_mass.write(cell, cell_mass.read(cell) + mass)
                cell_center.write(cell * 2, cell_center.read(cell * 2) + x * mass)
                cell_center.write(cell * 2 + 1, cell_center.read(cell * 2 + 1) + y * mass)
                recorder.compute(8)

            # Force evaluation: far field from cells, near field from the
            # particle's own cell neighbours.
            schedule = self.interleaved_schedule(n)
            for i, thread in schedule:
                x = positions.read(i * 2, thread)
                y = positions.read(i * 2 + 1, thread)
                fx = fy = 0.0
                for c in range(num_cells):
                    mass = cell_mass.read(c, thread)
                    if mass <= 0.0:
                        recorder.compute(1)
                        continue
                    cx = cell_center.read(c * 2, thread) / mass
                    cy = cell_center.read(c * 2 + 1, thread) / mass
                    dx, dy = cx - x, cy - y
                    dist_sq = dx * dx + dy * dy + 1e-3
                    fx += mass * dx / dist_sq
                    fy += mass * dy / dist_sq
                    recorder.compute(10)
                for j in range(max(0, i - 2), min(n, i + 3)):
                    if j == i:
                        continue
                    dx = positions.read(j * 2, thread) - x
                    dy = positions.read(j * 2 + 1, thread) - y
                    dist_sq = dx * dx + dy * dy + 1e-3
                    fx += masses.read(j, thread) * dx / dist_sq
                    fy += masses.read(j, thread) * dy / dist_sq
                    recorder.compute(10)
                forces.write(i * 2, fx, thread)
                forces.write(i * 2 + 1, fy, thread)

            # Position update.
            for i in range(n):
                positions.write(i * 2, min(max(positions.read(i * 2) +
                                               1e-4 * forces.read(i * 2), 0.0), 1.0))
                positions.write(i * 2 + 1, min(max(positions.read(i * 2 + 1) +
                                                   1e-4 * forces.read(i * 2 + 1), 0.0), 1.0))
                recorder.compute(6)
