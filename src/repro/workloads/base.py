"""Workload abstraction and the instrumentation layer.

The paper instruments real benchmarks with DynamoRIO to capture every
memory access (address, read/write, written data) and the dynamic
instruction count.  Here each benchmark is re-implemented as a miniature
Python kernel operating on :class:`InstrumentedArray` objects: real
computations produce a real access trace with real data values, from
which the profiler derives the program-inherent features
(Section III.D).

Footprints are miniature (tens of kilobytes instead of the paper's 8 GB)
so that traces stay tractable; the profiler scales footprint-dependent
quantities (reuse time, footprint words) up to the workload's
``nominal_footprint_bytes`` — a documented modelling substitution, see
DESIGN.md.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

import numpy as np

from repro import units
from repro.errors import WorkloadError
from repro.memsys.access import AccessType, MemoryAccess


def float_to_word(value: float) -> int:
    """Raw 64-bit pattern of a float — what actually sits in DRAM."""
    return struct.unpack("<Q", struct.pack("<d", float(value)))[0]


class InstrumentedArray:
    """A heap allocation whose every element access is recorded.

    Elements are 64-bit words (one float or integer each), matching the
    ECC protection granularity used for the WER metric.
    """

    def __init__(self, recorder: "TraceRecorder", base_address: int, length: int,
                 name: str = "") -> None:
        if length <= 0:
            raise WorkloadError("array length must be positive")
        self._recorder = recorder
        self.base_address = base_address
        self.length = length
        self.name = name
        self._data = np.zeros(length, dtype=float)

    def __len__(self) -> int:
        return self.length

    def _address(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise WorkloadError(
                f"index {index} out of bounds for array {self.name!r} of length {self.length}"
            )
        return self.base_address + index * units.WORD_BYTES

    def read(self, index: int, thread_id: int = 0) -> float:
        """Load one element, recording the access."""
        address = self._address(index)
        value = float(self._data[index])
        self._recorder.record_access(address, AccessType.READ, float_to_word(value), thread_id)
        return value

    def write(self, index: int, value: float, thread_id: int = 0) -> None:
        """Store one element, recording the access and the written data."""
        address = self._address(index)
        self._data[index] = float(value)
        self._recorder.record_access(
            address, AccessType.WRITE, float_to_word(float(value)), thread_id
        )

    def raw(self) -> np.ndarray:
        """Un-instrumented view of the data (for result verification only)."""
        return self._data


class TraceRecorder:
    """Collects the dynamic memory-access trace and instruction count."""

    #: virtual base address of the instrumented heap
    HEAP_BASE = 0x1000_0000

    def __init__(self) -> None:
        self.accesses: List[MemoryAccess] = []
        self.instruction_count = 0
        self.allocated_bytes = 0
        self._next_address = self.HEAP_BASE

    # -- allocation ---------------------------------------------------------
    def alloc(self, num_words: int, name: str = "") -> InstrumentedArray:
        """Allocate an instrumented array of ``num_words`` 64-bit words."""
        array = InstrumentedArray(self, self._next_address, num_words, name=name)
        size = num_words * units.WORD_BYTES
        self._next_address += size
        # Keep allocations page-aligned like a real allocator would.
        remainder = self._next_address % 4096
        if remainder:
            self._next_address += 4096 - remainder
        self.allocated_bytes += size
        return array

    # -- event recording ------------------------------------------------------
    def record_access(self, address: int, access_type: AccessType, value: int,
                      thread_id: int = 0) -> None:
        self.instruction_count += 1
        self.accesses.append(
            MemoryAccess(
                address=address,
                access_type=access_type,
                instruction_index=self.instruction_count,
                value=value,
                thread_id=thread_id,
            )
        )

    def compute(self, instructions: int = 1) -> None:
        """Account non-memory (ALU/branch) instructions."""
        if instructions < 0:
            raise WorkloadError("instruction count cannot be negative")
        self.instruction_count += instructions

    # -- summary ------------------------------------------------------------
    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def memory_instruction_fraction(self) -> float:
        if self.instruction_count == 0:
            return 0.0
        return self.num_accesses / self.instruction_count


@dataclass(frozen=True)
class WorkloadMetadata:
    """Static description of a workload."""

    name: str
    suite: str                      #: e.g. "rodinia", "parsec", "cloud", "graph", "micro"
    threads: int = 1
    nominal_footprint_bytes: int = units.BENCHMARK_FOOTPRINT_BYTES
    description: str = ""

    @property
    def is_parallel(self) -> bool:
        return self.threads > 1


class Workload(ABC):
    """A benchmark that can be executed to produce an instrumented trace."""

    #: subclasses set these
    name: str = "workload"
    suite: str = "generic"
    description: str = ""
    #: whether the parallel variant is labelled "(par)" in figures; the cloud
    #: and graph benchmarks always run with 8 threads and keep their plain name
    suffix_parallel: bool = True

    def __init__(self, threads: int = 1, seed: int = 7,
                 nominal_footprint_bytes: int = units.BENCHMARK_FOOTPRINT_BYTES) -> None:
        if threads < 1:
            raise WorkloadError("threads must be >= 1")
        self.threads = threads
        self.seed = seed
        self.nominal_footprint_bytes = nominal_footprint_bytes
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    def metadata(self) -> WorkloadMetadata:
        return WorkloadMetadata(
            name=self.display_name,
            suite=self.suite,
            threads=self.threads,
            nominal_footprint_bytes=self.nominal_footprint_bytes,
            description=self.description,
        )

    @property
    def display_name(self) -> str:
        """Name as used in the paper's figures, e.g. ``backprop(par)``."""
        if self.threads > 1 and self.suffix_parallel:
            return f"{self.name}(par)"
        return self.name

    @abstractmethod
    def run(self, recorder: TraceRecorder) -> None:
        """Execute the kernel, emitting accesses into ``recorder``."""

    def record_trace(self) -> TraceRecorder:
        """Run the workload from scratch and return the filled recorder."""
        recorder = TraceRecorder()
        self._rng = np.random.default_rng(self.seed)
        self.run(recorder)
        if recorder.num_accesses == 0:
            raise WorkloadError(f"workload {self.display_name} produced no memory accesses")
        return recorder

    # -- helpers for parallel kernels ----------------------------------------
    def thread_chunks(self, num_items: int) -> List[range]:
        """Split ``num_items`` work items into one contiguous chunk per thread."""
        if num_items <= 0:
            raise WorkloadError("num_items must be positive")
        base, extra = divmod(num_items, self.threads)
        chunks = []
        start = 0
        for thread in range(self.threads):
            size = base + (1 if thread < extra else 0)
            chunks.append(range(start, start + size))
            start += size
        return chunks

    def interleaved_schedule(self, num_items: int, block: int = 8) -> List[tuple]:
        """Round-robin (item, thread) schedule approximating parallel execution.

        Parallel threads execute simultaneously; in the single global
        dynamic instruction stream this shows up as their accesses being
        interleaved block by block, which is what shortens the reuse
        distance of shared data structures for the ``(par)`` versions.
        """
        chunks = self.thread_chunks(num_items)
        positions = [0] * self.threads
        schedule: List[tuple] = []
        remaining = num_items
        while remaining > 0:
            for thread, chunk in enumerate(chunks):
                taken = 0
                while positions[thread] < len(chunk) and taken < block:
                    schedule.append((chunk[positions[thread]], thread))
                    positions[thread] += 1
                    taken += 1
                    remaining -= 1
        return schedule
