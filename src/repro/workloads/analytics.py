"""Graph-analytics benchmarks: pagerank, bfs and betweenness centrality.

The paper runs these with the Ligra/GraphGrind frameworks on 8 GB
inputs; here they operate on synthetic scale-free graphs (generated with
networkx) stored in instrumented CSR arrays, so the access trace has the
irregular, index-chasing character of real graph analytics.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import networkx as nx

from repro.workloads.base import TraceRecorder, Workload


def _build_csr(graph: nx.Graph) -> Tuple[List[int], List[int]]:
    """Row-pointer / column-index CSR arrays of an undirected graph."""
    nodes = sorted(graph.nodes())
    index_of = {node: i for i, node in enumerate(nodes)}
    row_ptr = [0]
    col_idx: List[int] = []
    for node in nodes:
        neighbours = sorted(index_of[n] for n in graph.neighbors(node))
        col_idx.extend(neighbours)
        row_ptr.append(len(col_idx))
    return row_ptr, col_idx


class _GraphWorkload(Workload):
    """Shared CSR setup for the graph benchmarks."""

    suite = "graph"
    suffix_parallel = False   #: always run with 8 threads under their plain name

    def __init__(self, threads: int = 1, seed: int = 23, nodes: int = 320,
                 attach_edges: int = 3, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        self.nodes = nodes
        self.attach_edges = attach_edges

    def _load_graph(self, recorder: TraceRecorder):
        """Generate the graph and store it into instrumented CSR arrays."""
        graph = nx.barabasi_albert_graph(self.nodes, self.attach_edges, seed=self.seed)
        row_ptr, col_idx = _build_csr(graph)

        row_array = recorder.alloc(len(row_ptr), "row_ptr")
        col_array = recorder.alloc(max(len(col_idx), 1), "col_idx")
        for i, value in enumerate(row_ptr):
            row_array.write(i, float(value))
        for i, value in enumerate(col_idx):
            col_array.write(i, float(value))
        return row_array, col_array

    def _neighbors(self, row_array, col_array, node: int, thread: int) -> List[int]:
        start = int(row_array.read(node, thread))
        end = int(row_array.read(node + 1, thread))
        return [int(col_array.read(i, thread)) for i in range(start, end)]


class PagerankWorkload(_GraphWorkload):
    """Power-iteration PageRank."""

    name = "pagerank"
    description = "Push-style PageRank power iterations over a scale-free graph"

    def __init__(self, threads: int = 8, iterations: int = 4, damping: float = 0.85,
                 **kwargs: int) -> None:
        super().__init__(threads=threads, **kwargs)
        self.iterations = iterations
        self.damping = damping

    def run(self, recorder: TraceRecorder) -> None:
        row_array, col_array = self._load_graph(recorder)
        ranks = recorder.alloc(self.nodes, "ranks")
        new_ranks = recorder.alloc(self.nodes, "new_ranks")
        degrees = recorder.alloc(self.nodes, "degrees")

        for node in range(self.nodes):
            ranks.write(node, 1.0 / self.nodes)
            start = int(row_array.read(node))
            end = int(row_array.read(node + 1))
            degrees.write(node, float(max(end - start, 1)))
            recorder.compute(3)

        for _iteration in range(self.iterations):
            for node in range(self.nodes):
                new_ranks.write(node, (1.0 - self.damping) / self.nodes)
            schedule = self.interleaved_schedule(self.nodes)
            for node, thread in schedule:
                contribution = self.damping * ranks.read(node, thread) / \
                    degrees.read(node, thread)
                recorder.compute(3)
                for neighbour in self._neighbors(row_array, col_array, node, thread):
                    new_ranks.write(neighbour,
                                    new_ranks.read(neighbour, thread) + contribution,
                                    thread)
                    recorder.compute(2)
            for node in range(self.nodes):
                ranks.write(node, new_ranks.read(node))
            if self.threads > 1:
                recorder.compute(100 * self.threads)


class BfsWorkload(_GraphWorkload):
    """Breadth-first search from a single source."""

    name = "bfs"
    description = "Level-synchronous BFS over a scale-free graph"

    def __init__(self, threads: int = 8, **kwargs: int) -> None:
        super().__init__(threads=threads, **kwargs)

    def run(self, recorder: TraceRecorder) -> None:
        row_array, col_array = self._load_graph(recorder)
        distances = recorder.alloc(self.nodes, "distances")
        for node in range(self.nodes):
            distances.write(node, -1.0)

        distances.write(0, 0.0)
        frontier = [0]
        level = 0
        while frontier:
            next_frontier: List[int] = []
            schedule = self.interleaved_schedule(len(frontier))
            for index, thread in schedule:
                node = frontier[index]
                for neighbour in self._neighbors(row_array, col_array, node, thread):
                    if distances.read(neighbour, thread) < 0.0:
                        distances.write(neighbour, float(level + 1), thread)
                        next_frontier.append(neighbour)
                    recorder.compute(2)
            frontier = next_frontier
            level += 1
            if self.threads > 1:
                recorder.compute(60 * self.threads)


class BetweennessCentralityWorkload(_GraphWorkload):
    """Brandes betweenness centrality from a sample of source vertices."""

    name = "bc"
    description = "Brandes BC accumulation from sampled sources"

    def __init__(self, threads: int = 8, sources: int = 5, **kwargs: int) -> None:
        kwargs.setdefault("nodes", 220)
        super().__init__(threads=threads, **kwargs)
        self.sources = sources

    def run(self, recorder: TraceRecorder) -> None:
        row_array, col_array = self._load_graph(recorder)
        centrality = recorder.alloc(self.nodes, "centrality")
        sigma = recorder.alloc(self.nodes, "sigma")
        distance = recorder.alloc(self.nodes, "distance")
        delta = recorder.alloc(self.nodes, "delta")

        for node in range(self.nodes):
            centrality.write(node, 0.0)

        source_nodes = list(range(0, self.nodes, max(1, self.nodes // self.sources)))[: self.sources]
        schedule = self.interleaved_schedule(len(source_nodes))
        for source_index, thread in schedule:
            source = source_nodes[source_index]
            stack: List[int] = []
            predecessors: List[List[int]] = [[] for _ in range(self.nodes)]
            for node in range(self.nodes):
                sigma.write(node, 0.0, thread)
                distance.write(node, -1.0, thread)
                delta.write(node, 0.0, thread)
            sigma.write(source, 1.0, thread)
            distance.write(source, 0.0, thread)

            queue = deque([source])
            while queue:
                node = queue.popleft()
                stack.append(node)
                node_distance = distance.read(node, thread)
                node_sigma = sigma.read(node, thread)
                for neighbour in self._neighbors(row_array, col_array, node, thread):
                    if distance.read(neighbour, thread) < 0.0:
                        distance.write(neighbour, node_distance + 1.0, thread)
                        queue.append(neighbour)
                    if distance.read(neighbour, thread) == node_distance + 1.0:
                        sigma.write(neighbour, sigma.read(neighbour, thread) + node_sigma,
                                    thread)
                        predecessors[neighbour].append(node)
                    recorder.compute(4)

            while stack:
                node = stack.pop()
                for predecessor in predecessors[node]:
                    share = (sigma.read(predecessor, thread) /
                             max(sigma.read(node, thread), 1.0)) * \
                        (1.0 + delta.read(node, thread))
                    delta.write(predecessor, delta.read(predecessor, thread) + share, thread)
                    recorder.compute(4)
                if node != source:
                    centrality.write(node, centrality.read(node, thread) +
                                     delta.read(node, thread), thread)
