"""Caching workload: a memcached-style key-value store.

``memcached`` is the paper's lowest-WER workload: its hot keys are
re-accessed so frequently (Treuse = 0.09 s in Table II) that memory
accesses implicitly refresh most of its footprint.  The miniature
version reproduces that behaviour with a Zipf-distributed request stream
over an open-addressing hash table.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import TraceRecorder, Workload


class MemcachedWorkload(Workload):
    """GET/SET request stream against an open-addressing hash table."""

    name = "memcached"
    suite = "cloud"
    description = "Zipfian GET/SET mix against a key-value hash table"
    suffix_parallel = False   #: always run with 8 threads under its plain name

    def __init__(self, threads: int = 8, seed: int = 29, table_slots: int = 512,
                 keys: int = 300, requests: int = 6000, get_fraction: float = 0.9,
                 zipf_exponent: float = 1.2, **kwargs: int) -> None:
        super().__init__(threads=threads, seed=seed, **kwargs)
        self.table_slots = table_slots
        self.keys = keys
        self.requests = requests
        self.get_fraction = get_fraction
        self.zipf_exponent = zipf_exponent

    def _zipf_key(self, rng: np.random.Generator) -> int:
        ranks = np.arange(1, self.keys + 1, dtype=float)
        weights = 1.0 / np.power(ranks, self.zipf_exponent)
        weights /= weights.sum()
        return int(rng.choice(self.keys, p=weights))

    def run(self, recorder: TraceRecorder) -> None:
        rng = self._rng
        # key slot -> (stored key, stored value); two words per slot.  Keys
        # start at 1 so an untouched slot (0.0) reads as "empty" — the table
        # is populated lazily, exactly like a cache warming up, so there is
        # no bulk initialisation phase separating allocation from use.
        table_keys = recorder.alloc(self.table_slots, "table_keys")
        table_values = recorder.alloc(self.table_slots, "table_values")
        statistics = recorder.alloc(4, "stats")

        # Pre-compute the Zipfian popularity distribution once.
        ranks = np.arange(1, self.keys + 1, dtype=float)
        weights = 1.0 / np.power(ranks, self.zipf_exponent)
        weights /= weights.sum()
        key_stream = rng.choice(self.keys, size=self.requests, p=weights) + 1
        op_stream = rng.random(self.requests) < self.get_fraction

        schedule = self.interleaved_schedule(self.requests)
        for request_index, thread in schedule:
            key = int(key_stream[request_index])
            is_get = bool(op_stream[request_index])
            slot = (key * 2654435761) % self.table_slots
            recorder.compute(6)   # hashing + request parsing

            # Linear probing.  Slots hold integer keys (or the 0.0
            # empty sentinel) stored verbatim — no arithmetic ever touches
            # them, so exact float equality is the hash-table contract here.
            for probe in range(8):
                probe_slot = (slot + probe) % self.table_slots
                stored = table_keys.read(probe_slot, thread)
                recorder.compute(2)
                if stored == float(key):  # repro-lint: disable=REP004
                    if is_get:
                        table_values.read(probe_slot, thread)
                        statistics.write(0, statistics.read(0, thread) + 1.0, thread)
                    else:
                        table_values.write(probe_slot, float(key) * 3.0 + 1.0, thread)
                        statistics.write(1, statistics.read(1, thread) + 1.0, thread)
                    break
                if stored == 0.0:  # repro-lint: disable=REP004
                    # Miss: insert the key (memcached stores on miss-then-set).
                    table_keys.write(probe_slot, float(key), thread)
                    table_values.write(probe_slot, float(key) * 3.0 + 1.0, thread)
                    statistics.write(2, statistics.read(2, thread) + 1.0, thread)
                    break
            recorder.compute(4)   # response formatting
