"""Instrumented miniature implementations of the paper's benchmarks."""

from repro.workloads.analytics import (
    BetweennessCentralityWorkload,
    BfsWorkload,
    PagerankWorkload,
)
from repro.workloads.base import (
    InstrumentedArray,
    TraceRecorder,
    Workload,
    WorkloadMetadata,
    float_to_word,
)
from repro.workloads.caching import MemcachedWorkload
from repro.workloads.compute import (
    BackpropWorkload,
    FmmWorkload,
    KmeansWorkload,
    NeedlemanWunschWorkload,
    SradWorkload,
)
from repro.workloads.lulesh import LuleshWorkload
from repro.workloads.micro import DataPatternWorkload, random_data_pattern, solid_data_pattern
from repro.workloads.registry import (
    ALL_WORKLOADS,
    CAMPAIGN_WORKLOADS,
    EXTRA_WORKLOADS,
    available_workloads,
    campaign_workload_names,
    create_workload,
)

__all__ = [
    "BetweennessCentralityWorkload",
    "BfsWorkload",
    "PagerankWorkload",
    "InstrumentedArray",
    "TraceRecorder",
    "Workload",
    "WorkloadMetadata",
    "float_to_word",
    "MemcachedWorkload",
    "BackpropWorkload",
    "FmmWorkload",
    "KmeansWorkload",
    "NeedlemanWunschWorkload",
    "SradWorkload",
    "LuleshWorkload",
    "DataPatternWorkload",
    "random_data_pattern",
    "solid_data_pattern",
    "ALL_WORKLOADS",
    "CAMPAIGN_WORKLOADS",
    "EXTRA_WORKLOADS",
    "available_workloads",
    "campaign_workload_names",
    "create_workload",
]
