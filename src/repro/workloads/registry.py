"""Workload registry: every benchmark of the characterization campaign.

The paper's campaign covers five Rodinia/Parsec compute benchmarks in
single-threaded and 8-thread versions, plus memcached, pagerank, bfs and
bc run with 8 threads (Section IV.C) — 14 workloads in total.  The
registry also exposes the lulesh variants and the data-pattern
micro-benchmarks used by Fig. 2 and Fig. 13.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkloadError
from repro.workloads.analytics import (
    BetweennessCentralityWorkload,
    BfsWorkload,
    PagerankWorkload,
)
from repro.workloads.base import Workload
from repro.workloads.caching import MemcachedWorkload
from repro.workloads.compute import (
    BackpropWorkload,
    FmmWorkload,
    KmeansWorkload,
    NeedlemanWunschWorkload,
    SradWorkload,
)
from repro.workloads.lulesh import LuleshWorkload
from repro.workloads.micro import DataPatternWorkload

WorkloadFactory = Callable[[], Workload]

#: The 14 benchmarks of the main characterization campaign (Fig. 4/7/8/9/11).
CAMPAIGN_WORKLOADS: Dict[str, WorkloadFactory] = {
    "backprop": lambda: BackpropWorkload(threads=1),
    "backprop(par)": lambda: BackpropWorkload(threads=8),
    "kmeans": lambda: KmeansWorkload(threads=1),
    "kmeans(par)": lambda: KmeansWorkload(threads=8),
    "nw": lambda: NeedlemanWunschWorkload(threads=1),
    "nw(par)": lambda: NeedlemanWunschWorkload(threads=8),
    "srad": lambda: SradWorkload(threads=1),
    "srad(par)": lambda: SradWorkload(threads=8),
    "fmm": lambda: FmmWorkload(threads=1),
    "fmm(par)": lambda: FmmWorkload(threads=8),
    "memcached": lambda: MemcachedWorkload(threads=8),
    "pagerank": lambda: PagerankWorkload(threads=8),
    "bfs": lambda: BfsWorkload(threads=8),
    "bc": lambda: BetweennessCentralityWorkload(threads=8),
}

#: Additional workloads used by specific experiments.
EXTRA_WORKLOADS: Dict[str, WorkloadFactory] = {
    "lulesh(O2)": lambda: LuleshWorkload(optimization="O2"),
    "lulesh(F)": lambda: LuleshWorkload(optimization="F"),
    "data-pattern-random": lambda: DataPatternWorkload(pattern="random"),
    "data-pattern-solid": lambda: DataPatternWorkload(pattern="solid"),
}

ALL_WORKLOADS: Dict[str, WorkloadFactory] = {**CAMPAIGN_WORKLOADS, **EXTRA_WORKLOADS}


def campaign_workload_names() -> List[str]:
    """Names of the 14 campaign benchmarks, in the paper's figure order."""
    return list(CAMPAIGN_WORKLOADS.keys())


def available_workloads() -> List[str]:
    """Every workload name known to the registry."""
    return list(ALL_WORKLOADS.keys())


def create_workload(name: str) -> Workload:
    """Instantiate a workload by its registry name."""
    try:
        factory = ALL_WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(ALL_WORKLOADS)}"
        ) from None
    workload = factory()
    if workload.display_name != name:
        raise WorkloadError(
            f"registry name {name!r} does not match workload display name "
            f"{workload.display_name!r}"
        )
    return workload
