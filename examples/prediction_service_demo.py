#!/usr/bin/env python3
"""Prediction-as-a-service: registry round-trip + cached serving facade.

The paper's end product is a fitted WER/PUE predictor; this demo shows
the serving layer that keeps it alive past the training process:

1. train a predictor on a reduced characterization campaign;
2. persist it to a versioned on-disk model registry
   (``<root>/<name>/v<N>/{manifest.json, arrays.npz}``) and load it back
   — predictions survive the round-trip bit-identically;
3. sweep a whole operating-point grid in one batched ``predict_grid``
   call (the columnar path, >=10x the per-point oracle);
4. stand up a :class:`~repro.serving.PredictionService` over the loaded
   model: an LRU cache answers repeated operating points, concurrent
   misses coalesce into one batched model call.
"""

import tempfile
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import (
    ModelRegistry,
    OperatingPoint,
    PredictionService,
    PredictRequest,
    WorkloadAwarePredictor,
)
from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign

WORKLOADS = ("backprop", "backprop(par)", "kmeans", "srad(par)", "memcached", "bfs")
TREFPS = (1.173, 1.450, 2.283)
TEMPERATURES = (50.0, 60.0, 70.0)


def main() -> None:
    print("== 1. Train ==")
    config = CampaignConfig(workloads=WORKLOADS)
    campaign = CharacterizationCampaign(config=config, seed=7).run()
    predictor = WorkloadAwarePredictor().fit(campaign)
    print(f"  fitted per-rank WER models: {len(predictor.ranks)}")

    with tempfile.TemporaryDirectory() as root:
        print("\n== 2. Registry round-trip ==")
        registry = ModelRegistry(root)
        version = registry.save("wer-pue", predictor)
        bundle = registry.path("wer-pue")
        print(f"  saved as wer-pue/{version}/ "
              f"({', '.join(sorted(p.name for p in bundle.iterdir()))})")
        loaded = registry.load("wer-pue")
        op = OperatingPoint.relaxed(TREFPS[-1], TEMPERATURES[0])
        original = predictor.predict(WORKLOADS[0], op)
        restored = loaded.predict(WORKLOADS[0], op)
        exact = original.wer_by_rank == restored.wer_by_rank
        print(f"  reloaded predictions bit-identical: {exact}")

        print("\n== 3. Batched grid sweep ==")
        grid = loaded.predict_grid(WORKLOADS, TREFPS, TEMPERATURES)
        print(f"  {grid.num_predictions} predictions in {grid.latency_s * 1000:.1f} ms "
              f"(grid shape {grid.shape})")
        surface = grid.memory_wer  # (workload, trefp, temperature, vdd)
        for index, name in enumerate(grid.workloads):
            worst = float(np.max(surface[index]))
            print(f"  {name:15s} worst-case WER over the grid: {worst:.3e}")

        print("\n== 4. Serving facade ==")
        requests = [
            PredictRequest.at(name, OperatingPoint.relaxed(trefp, temp))
            for name in WORKLOADS
            for trefp in TREFPS
            for temp in TEMPERATURES
        ]
        with PredictionService(loaded, batch_window_s=0.002) as service:
            # A concurrent cold burst: every miss coalesces into few
            # batched model calls.
            with ThreadPoolExecutor(max_workers=8) as pool:
                cold = list(pool.map(service.predict_many, [requests] * 2))
            print(f"  cold burst: {service.stats().requests} requests -> "
                  f"{service.stats().batches} model call(s) "
                  f"(max batch {service.stats().max_batch_size})")
            # A warm pass over the same points: the LRU cache answers.
            warm = service.predict_many(requests)
            stats = service.stats()
        assert cold[0][0].wer == cold[1][0].wer == warm[0].wer
        print(f"  warm pass: all {len(warm)} answered from cache "
              f"(hit rate now {stats.hit_rate:.0%}, "
              f"{stats.predictions} model predictions total)")


if __name__ == "__main__":
    main()
