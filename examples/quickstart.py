#!/usr/bin/env python3
"""Quickstart: characterize, train and predict in a few lines.

This walks the full pipeline of the paper on a reduced campaign:

1. profile a few workloads (program-inherent features, Section III.D);
2. characterize the simulated X-Gene2 server under relaxed refresh
   period / lowered VDD / elevated temperature (Section V);
3. train the workload-aware KNN error model (Section VI);
4. predict the WER and PUE of a workload the model has, and has not,
   seen — in milliseconds instead of a 2-hour characterization run.
"""

from repro import OperatingPoint, WorkloadAwarePredictor, profile_workload
from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign

WORKLOADS = ("backprop", "backprop(par)", "kmeans", "srad(par)", "memcached", "bfs", "pagerank")


def main() -> None:
    print("== 1. Profiling workloads (DynamoRIO + perf equivalent) ==")
    for name in WORKLOADS:
        profile = profile_workload(name)
        summary = profile.summary()
        print(f"  {name:15s} Treuse={summary['treuse']:8.3f}s  HDP={summary['hdp']:5.2f}b  "
              f"mem-accesses/cycle={summary['memory_accesses_per_cycle']:.4f}  "
              f"wait-cycles={summary['wait_cycles']:.2f}")

    print("\n== 2. Characterization campaign (simulated X-Gene2, 8 GB per benchmark) ==")
    config = CampaignConfig(workloads=WORKLOADS)
    campaign = CharacterizationCampaign(config=config, seed=7).run()
    for trefp in (0.618, 2.283):
        per_workload = campaign.wer_by_workload(trefp, 50.0)
        worst = max(per_workload, key=per_workload.get)
        best = min(per_workload, key=per_workload.get)
        print(f"  TREFP={trefp:5.3f}s @50C: WER spans {per_workload[best]:.2e} ({best}) "
              f"to {per_workload[worst]:.2e} ({worst})")
    print(f"  mean PUE @70C, TREFP=1.45s : {campaign.mean_pue(1.450):.2f}")
    print(f"  mean PUE @70C, TREFP=2.283s: {campaign.mean_pue(2.283):.2f}")

    print("\n== 3. Training the workload-aware model (KNN, input set 1) ==")
    predictor = WorkloadAwarePredictor().fit(campaign)
    print(f"  trained per-rank WER models: {len(predictor._wer_models)}")

    print("\n== 4. Predictions ==")
    # 1.45 s at 70 C: the operating point where PUE starts to vary across
    # workloads (Fig. 9a), so both predictions are informative.
    op = OperatingPoint.relaxed(1.450, 70.0)
    for name in ("memcached", "srad(par)", "fmm(par)"):
        result = predictor.predict(name, op)
        print(f"  {name:12s} @ {op.trefp_s}s/{op.temperature_c:.0f}C -> "
              f"WER={result.memory_wer:.3e}  PUE={result.pue:.2f}  "
              f"({result.latency_s * 1000:.1f} ms)")
    print("\n(fmm(par) was never part of the training campaign: the model predicts it "
          "purely from its program features.)")


if __name__ == "__main__":
    main()
