#!/usr/bin/env python3
"""Mechanism-level demo: retention failures and SECDED ECC on a small cell array.

The campaign-scale experiments use the calibrated statistical model, but
the library also ships an explicit cell-array simulator (sampled
retention times, variable retention time, true/anti-cells, row-hammer
disturbance and a real (72,64) SECDED code).  This example stores data
under a relaxed refresh period at 70 C, lets the cells leak, and shows
how the ECC machinery classifies what it reads back — the same CE / UE /
SDC taxonomy as Table I of the paper.

Everything below runs through the batch engine: one ``write_batch``
stores all 4096 codewords via a single matrix encode, and one
``read_batch`` applies decay, syndrome decoding, scrub-on-read and error
logging to the whole sweep at once.
"""

import time
from collections import Counter

from repro.dram.calibration import DramCalibration, RetentionCalibration
from repro.dram.cells import CellArrayConfig, CellArraySimulator
from repro.dram.ecc import ErrorClass
from repro.dram.geometry import small_geometry


def main() -> None:
    # A deliberately weak cell population so a small array shows failures.
    calibration = DramCalibration(
        retention=RetentionCalibration(log_median_retention_50c=3.0, log_sigma=1.3)
    )
    config = CellArrayConfig(
        geometry=small_geometry(),
        trefp_s=2.283,
        temperature_c=70.0,
        calibration=calibration,
        seed=1,
    )
    simulator = CellArraySimulator(config)
    print(f"cell array: {config.geometry.total_words} words "
          f"({config.geometry.total_words * 72} cells), TREFP={config.trefp_s}s, "
          f"{config.temperature_c:.0f}C")

    print("\n== Writing a dense data pattern over 4096 words (one batch encode) ==")
    locations = [simulator.geometry.cell_from_word_index(i) for i in range(4096)]
    start = time.perf_counter()
    simulator.write_batch(locations, [0xFFFFFFFFFFFFFFFF] * 4096)
    write_s = time.perf_counter() - start

    print("== Letting the array sit for 10 minutes under auto-refresh only ==")
    simulator.idle(600.0)

    print("== Reading everything back through SECDED ECC (one batch decode) ==")
    start = time.perf_counter()
    sweep = simulator.read_batch(locations, workload="demo")
    read_s = time.perf_counter() - start
    counts = sweep.counts()
    total = sum(count for cls, count in counts.items() if cls is not ErrorClass.NO_ERROR)
    print(f"   corrected (CE):            {counts[ErrorClass.CORRECTED]}")
    print(f"   uncorrectable (UE):        {counts[ErrorClass.UNCORRECTABLE]}")
    print(f"   silent corruption (SDC):   {counts[ErrorClass.SILENT]}")
    print(f"   measured WER:              {simulator.measured_wer(4096):.3e}")
    print(f"   batch throughput:          {4096 / write_s:,.0f} writes/s, "
          f"{4096 / read_s:,.0f} reads/s")

    print("\n== Where did the errors land? (error log, SLIMpro style) ==")
    by_rank = Counter(record.rank_location.label for record in simulator.error_log)
    for rank, count in sorted(by_rank.items()):
        print(f"   {rank}: {count} events")

    print(f"\ntotal ECC events logged: {total}; scrub-on-read corrected every CE in place, "
          "so a second sweep reads clean for those words.")
    second = simulator.sweep_read(locations, workload="demo-second-pass")
    print(f"second sweep CEs: {second[ErrorClass.CORRECTED]} "
          "(only cells that leaked again during the sweep itself)")


if __name__ == "__main__":
    main()
