#!/usr/bin/env python3
"""Case study: do compiler optimizations change DRAM reliability?

Reproduces the Section VI.C use case: the lulesh proxy application is
"compiled" with default (-O2) and aggressive (-F) optimizations, both
variants are profiled, and the workload-aware model predicts their WER
under relaxed refresh — without any new characterization run.  The
conventional constant-rate model (calibrated with a random data-pattern
micro-benchmark) is shown for comparison.
"""

from repro import OperatingPoint, profile_workload
from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign
from repro.core.conventional import ConventionalErrorModel
from repro.core.dataset import ErrorDataset, build_wer_dataset
from repro.core.model import DramErrorModel, ModelConfig
from repro.workloads.registry import campaign_workload_names

TARGET_OP = OperatingPoint.relaxed(0.618, 70.0)
VARIANTS = ("lulesh(O2)", "lulesh(F)")


def main() -> None:
    print("== Characterizing the training workloads (plus the data-pattern micro) ==")
    config = CampaignConfig(
        workloads=tuple(campaign_workload_names()) + VARIANTS + ("data-pattern-random",),
        temperatures_c=(50.0, 60.0, 70.0),
    )
    campaign = CharacterizationCampaign(config=config, seed=7).run(include_ue_study=False)
    dataset = build_wer_dataset(campaign)

    measured = campaign.wer_by_workload(TARGET_OP.trefp_s, TARGET_OP.temperature_c)

    print("\n== Training per-rank KNN models without the lulesh variants ==")
    training = ErrorDataset(samples=[s for s in dataset if s.workload not in VARIANTS])
    models = {}
    for rank in training.ranks():
        model = DramErrorModel(ModelConfig(family="knn", feature_set="set1"))
        model.fit(training.filter_rank(rank))
        models[rank] = model

    conventional = ConventionalErrorModel().fit(dataset)

    print(f"\n== WER at TREFP={TARGET_OP.trefp_s}s, {TARGET_OP.temperature_c:.0f}C ==")
    for variant in VARIANTS:
        profile = profile_workload(variant)
        predicted = sum(
            model.predict(TARGET_OP, profile.features) for model in models.values()
        ) / len(models)
        constant = conventional.predict(TARGET_OP)
        error = abs(predicted - measured[variant]) / measured[variant] * 100
        constant_error = abs(constant - measured[variant]) / measured[variant] * 100
        print(f"  {variant:11s} measured={measured[variant]:.3e}  "
              f"workload-aware={predicted:.3e} ({error:.0f}% off)  "
              f"conventional={constant:.3e} ({constant_error:.0f}% off)")

    o2, aggressive = measured["lulesh(O2)"], measured["lulesh(F)"]
    delta = abs(o2 - aggressive) / min(o2, aggressive) * 100
    print(f"\nCompiler flags change the measured WER by {delta:.0f}% "
          "(the paper reports ~29%): software-level decisions do affect DRAM reliability, "
          "and the workload-aware model resolves the difference without re-characterizing.")


if __name__ == "__main__":
    main()
