#!/usr/bin/env python3
"""Case study: workload-aware refresh-rate scaling for energy savings.

One of the motivations of the paper (Section I, use case iv) is to guide
the relaxation of DRAM circuit parameters: refresh consumes a growing
share of DRAM power, and the refresh period can be stretched much
further for workloads that are intrinsically resilient (short reuse
times, low access rates) than for error-prone ones.

This example trains the workload-aware model once and then, for every
benchmark, picks the longest refresh period whose predicted WER stays
below a reliability budget — reporting the refresh-energy saving that
the workload-aware choice unlocks compared with a single conservative
platform-wide setting.
"""

from repro import OperatingPoint, WorkloadAwarePredictor
from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign

#: reliability budget: predicted WER must stay below this value
WER_BUDGET = 5e-8
#: candidate refresh periods (s); 0.064 is the JEDEC nominal setting
CANDIDATE_TREFP = (0.618, 1.173, 1.727, 2.283)
TEMPERATURE_C = 50.0

WORKLOADS = (
    "memcached", "pagerank", "bfs", "bc",
    "backprop", "backprop(par)", "kmeans", "kmeans(par)", "srad", "srad(par)",
)


def refresh_power_fraction(trefp_s: float) -> float:
    """Relative refresh power vs. the nominal 64 ms period (inversely prop.)."""
    return 0.064 / trefp_s


def main() -> None:
    print("== Training the workload-aware model ==")
    campaign = CharacterizationCampaign(
        config=CampaignConfig(workloads=WORKLOADS), seed=7
    ).run(include_ue_study=False)
    predictor = WorkloadAwarePredictor().fit(campaign)

    print(f"\n== Longest safe TREFP per workload (WER budget {WER_BUDGET:.0e}, "
          f"{TEMPERATURE_C:.0f}C) ==")
    conservative = CANDIDATE_TREFP[0]
    savings = []
    for name in WORKLOADS:
        chosen = None
        predicted = None
        for trefp in CANDIDATE_TREFP:
            wer = predictor.predict_wer(name, OperatingPoint.relaxed(trefp, TEMPERATURE_C))
            if wer <= WER_BUDGET:
                chosen, predicted = trefp, wer
        if chosen is None:
            chosen = 0.064
            predicted = 0.0
        saving = 1.0 - refresh_power_fraction(chosen) / refresh_power_fraction(conservative)
        savings.append(saving)
        print(f"  {name:15s} TREFP={chosen:5.3f}s  predicted WER={predicted:.2e}  "
              f"refresh energy vs {conservative}s baseline: -{saving * 100:.0f}%")

    print(f"\nAverage additional refresh-energy saving from workload-aware scaling: "
          f"{sum(savings) / len(savings) * 100:.0f}% "
          "(a single platform-wide setting must assume the most error-prone workload).")


if __name__ == "__main__":
    main()
