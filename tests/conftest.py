"""Shared fixtures for the test suite.

Heavyweight artefacts (workload profiles, a characterization campaign and
the datasets built from it) are session-scoped: they are deterministic,
so every test can share them without re-running the simulation.
"""

from __future__ import annotations

import os

import pytest

from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign
from repro.core.dataset import build_pue_dataset, build_wer_dataset
from repro.profiling.profiler import profile_workload
from repro.telemetry import RunReport, telemetry_session

#: A representative subset of the campaign benchmarks used by fast tests.
SMALL_WORKLOAD_SET = (
    "backprop",
    "backprop(par)",
    "kmeans",
    "srad(par)",
    "memcached",
    "bfs",
)


@pytest.fixture(scope="session")
def small_profiles():
    """Profiles of the small workload set (plus the random micro-benchmark)."""
    names = SMALL_WORKLOAD_SET + ("data-pattern-random",)
    return {name: profile_workload(name) for name in names}


@pytest.fixture(scope="session")
def small_campaign(small_profiles):
    """A reduced but complete campaign: 6 workloads, 2 TREFP, 2 temperatures."""
    config = CampaignConfig(
        workloads=SMALL_WORKLOAD_SET,
        trefp_values_s=(1.173, 2.283),
        temperatures_c=(50.0, 60.0),
        ue_trefp_values_s=(1.450, 2.283),
        ue_repetitions=4,
    )
    campaign = CharacterizationCampaign(config=config, seed=11)
    # The fixture doubles as the tier-1 run report: set RUN_REPORT_JSON to
    # capture the campaign's telemetry as a JSON artifact (CI uploads it).
    with telemetry_session() as telemetry:
        result = campaign.run(include_ue_study=True)
    report_path = os.environ.get("RUN_REPORT_JSON")
    if report_path:
        RunReport.capture(telemetry).write_json(report_path)
    return result


@pytest.fixture(scope="session")
def small_wer_dataset(small_campaign, small_profiles):
    return build_wer_dataset(small_campaign, small_profiles)


@pytest.fixture(scope="session")
def small_pue_dataset(small_campaign, small_profiles):
    return build_pue_dataset(small_campaign, small_profiles)


@pytest.fixture(scope="session")
def backprop_profile(small_profiles):
    return small_profiles["backprop"]


@pytest.fixture(scope="session")
def memcached_profile(small_profiles):
    return small_profiles["memcached"]
