"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.ecc import ErrorClass, SecdedCode
from repro.dram.geometry import DramGeometry, small_geometry
from repro.dram.operating import OperatingPoint
from repro.dram.retention import bit_failure_probability
from repro.dram.statistical import StatisticalErrorModel, WorkloadBehavior
from repro.ml.metrics import mean_percentage_error, prediction_ratio, spearman_correlation
from repro.ml.scaling import StandardScaler
from repro.profiling.entropy import shannon_entropy_bits

CODE = SecdedCode()
MODEL = StatisticalErrorModel()


# --------------------------------------------------------------------------
# SECDED ECC
# --------------------------------------------------------------------------
@given(data=st.integers(min_value=0, max_value=2 ** 64 - 1))
@settings(max_examples=60, deadline=None)
def test_ecc_clean_round_trip_property(data):
    decoded, cls = CODE.roundtrip_with_errors(data, [])
    assert decoded == data
    assert cls is ErrorClass.NO_ERROR


@given(
    data=st.integers(min_value=0, max_value=2 ** 64 - 1),
    position=st.integers(min_value=0, max_value=71),
)
@settings(max_examples=80, deadline=None)
def test_ecc_corrects_any_single_bit_flip(data, position):
    decoded, cls = CODE.roundtrip_with_errors(data, [position])
    assert cls is ErrorClass.CORRECTED
    assert decoded == data


@given(
    data=st.integers(min_value=0, max_value=2 ** 64 - 1),
    positions=st.sets(st.integers(min_value=0, max_value=71), min_size=2, max_size=2),
)
@settings(max_examples=80, deadline=None)
def test_ecc_detects_any_double_bit_flip(data, positions):
    _decoded, cls = CODE.roundtrip_with_errors(data, sorted(positions))
    assert cls is ErrorClass.UNCORRECTABLE


@given(
    words=st.lists(st.integers(min_value=0, max_value=2 ** 64 - 1),
                   min_size=1, max_size=8),
    flip_sets=st.lists(
        st.sets(st.integers(min_value=0, max_value=71), min_size=0, max_size=5),
        min_size=8, max_size=8,
    ),
)
@settings(max_examples=60, deadline=None)
def test_batch_codec_matches_scalar_codec_bit_for_bit(words, flip_sets):
    """encode_batch/decode_batch agree with the scalar API on every word.

    Flip counts 0..5 cover every Table I class — none / 1-bit (including
    the overall-parity bit at position 71) / 2-bit / multi-bit — and the
    known-answer cases are additionally pinned against the flip count.
    """
    data = np.array(words, dtype=np.uint64)
    codewords = CODE.encode_batch(data)
    for row, word in enumerate(words):
        assert np.array_equal(codewords[row], CODE.encode(word))
        for position in flip_sets[row]:
            codewords[row, position] ^= 1

    batch = CODE.decode_batch(codewords)
    for row, word in enumerate(words):
        scalar = CODE.decode(codewords[row])
        view = batch.result(row)
        assert view.error_class is scalar.error_class
        assert view.corrected_bit == scalar.corrected_bit
        assert np.array_equal(batch.data_bits[row], scalar.data)
        num_flips = len(flip_sets[row])
        if num_flips == 0:
            assert scalar.error_class is ErrorClass.NO_ERROR
            assert int(batch.data_words[row]) == word
        elif num_flips == 1:
            assert scalar.error_class is ErrorClass.CORRECTED
            assert int(batch.data_words[row]) == word
        elif num_flips == 2:
            assert scalar.error_class is ErrorClass.UNCORRECTABLE


# --------------------------------------------------------------------------
# Geometry
# --------------------------------------------------------------------------
@given(word_index=st.integers(min_value=0))
@settings(max_examples=80, deadline=None)
def test_geometry_word_index_round_trip(word_index):
    geometry = small_geometry()
    index = word_index % geometry.total_words
    assert geometry.word_index(geometry.cell_from_word_index(index)) == index


@given(dimms=st.integers(1, 4), ranks=st.integers(1, 2), banks=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_geometry_counts_are_consistent(dimms, ranks, banks):
    geometry = DramGeometry(num_dimms=dimms, ranks_per_dimm=ranks, banks_per_rank=banks,
                            rows_per_bank=16, columns_per_row=8)
    assert geometry.total_words == dimms * ranks * banks * 16 * 8
    assert len(list(geometry.iter_ranks())) == geometry.num_ranks


# --------------------------------------------------------------------------
# Retention physics / statistical model
# --------------------------------------------------------------------------
@given(
    t1=st.floats(min_value=0.1, max_value=2.0),
    scale=st.floats(min_value=1.05, max_value=2.0),
    temperature=st.floats(min_value=30.0, max_value=70.0),
)
@settings(max_examples=60, deadline=None)
def test_bit_failure_probability_is_monotone_in_refresh_period(t1, scale, temperature):
    p_short = bit_failure_probability(t1, temperature)
    p_long = bit_failure_probability(t1 * scale, temperature)
    assert 0.0 <= p_short <= p_long <= 1.0


@given(
    accesses=st.floats(min_value=1e-5, max_value=0.2),
    reuse=st.floats(min_value=0.01, max_value=100.0),
    entropy=st.floats(min_value=0.0, max_value=32.0),
    trefp=st.sampled_from([0.618, 1.173, 1.727, 2.283]),
    temperature=st.sampled_from([50.0, 60.0, 70.0]),
)
@settings(max_examples=60, deadline=None)
def test_statistical_model_outputs_are_valid_probabilities(accesses, reuse, entropy, trefp,
                                                           temperature):
    behavior = WorkloadBehavior(
        accesses_per_cycle=accesses,
        reuse_time_s=reuse,
        data_entropy_bits=entropy,
        footprint_words=10 ** 9,
    )
    op = OperatingPoint.relaxed(trefp, temperature)
    wer = MODEL.expected_wer(op, behavior)
    pue = MODEL.probability_of_ue(op, behavior)
    assert 0.0 <= wer <= 1.0
    assert 0.0 <= pue <= 1.0
    fraction = MODEL.implicit_refresh_fraction(behavior, op)
    assert 0.0 <= fraction <= 1.0


@given(
    reuse_short=st.floats(min_value=0.01, max_value=1.0),
    factor=st.floats(min_value=1.5, max_value=50.0),
)
@settings(max_examples=40, deadline=None)
def test_more_frequent_reuse_never_increases_wer(reuse_short, factor):
    op = OperatingPoint.relaxed(2.283, 60.0)
    common = dict(accesses_per_cycle=0.01, data_entropy_bits=16.0, footprint_words=10 ** 9)
    frequent = WorkloadBehavior(reuse_time_s=reuse_short, **common)
    rare = WorkloadBehavior(reuse_time_s=reuse_short * factor, **common)
    assert MODEL.expected_wer(op, frequent) <= MODEL.expected_wer(op, rare)


# --------------------------------------------------------------------------
# ML utilities
# --------------------------------------------------------------------------
@given(
    values=st.lists(
        st.tuples(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3), st.floats(-1e3, 1e3)),
        min_size=3, max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_standard_scaler_output_is_centred(values):
    X = np.asarray(values, dtype=float)
    Z = StandardScaler().fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-6)
    assert np.all(Z.std(axis=0) <= 1.0 + 1e-6)


@given(
    y=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=30)
)
@settings(max_examples=50, deadline=None)
def test_perfect_predictions_have_zero_error(y):
    assert mean_percentage_error(y, y) == pytest.approx(0.0)
    assert prediction_ratio(y, y) == pytest.approx(1.0)


@given(
    x=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=3, max_size=50,
               unique=True),
)
@settings(max_examples=50, deadline=None)
def test_spearman_is_bounded_and_symmetric_under_monotone_map(x):
    values = np.asarray(x, dtype=float)
    target = 3.0 * values + 1.0
    rs = spearman_correlation(values, target)
    assert -1.0 <= rs <= 1.0
    assert rs == pytest.approx(1.0)


@given(counts=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_entropy_bounds(counts):
    entropy = shannon_entropy_bits(counts)
    assert 0.0 <= entropy <= np.log2(len(counts)) + 1e-9
