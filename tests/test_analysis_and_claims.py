"""Tests for the analysis helpers and the paper's headline claims.

These integration tests run on the reduced session campaign (6 workloads)
and check the qualitative shape of every major claim; the benchmark
harness repeats them at full scale.
"""

import pytest

from repro.analysis.figures import (
    convergence_check,
    exponential_growth_factor,
    fig2_wer_over_time,
    fig7f_mean_wer_curve,
    fig8_wer_per_rank,
    fig9a_pue_bars,
    fig9b_ue_rank_distribution,
)
from repro.analysis.tables import table1_error_classes, table2_reuse_times, table3_input_sets
from repro.characterization.experiment import CharacterizationExperiment


class TestTables:
    def test_table1_rows(self):
        rows = table1_error_classes()
        assert [row["abbreviation"] for row in rows] == ["CE", "UE", "SDC"]

    def test_table2_reuse_times_subset(self):
        table = table2_reuse_times(["backprop", "backprop(par)", "memcached"])
        assert table["backprop"] > table["backprop(par)"]
        assert table["memcached"] < table["backprop"]

    def test_table3_lists_three_sets(self):
        rows = table3_input_sets()
        assert [row["input_set"] for row in rows] == ["set1", "set2", "set3"]
        assert int(rows[2]["num_inputs"]) == 252


class TestFigureHelpers:
    def test_fig2_time_series_converges(self):
        series = fig2_wer_over_time(
            workloads=("memcached", "backprop(par)"), trefp_s=2.283, temperature_c=50.0,
        )
        for workload, points in series.items():
            assert len(points) == 12
            assert convergence_check(points) < 0.03, workload

    def test_fig7f_growth_is_exponential(self, small_campaign):
        curves = fig7f_mean_wer_curve(small_campaign, temperatures_c=(50.0,),
                                      trefp_values_s=(1.173, 2.283))
        growth = exponential_growth_factor(curves[50.0])
        assert growth > 1.0   # WER grows by more than e per extra second of TREFP

    def test_fig8_rank_table_shape(self, small_campaign):
        table = fig8_wer_per_rank(small_campaign, trefp_s=2.283, temperature_c=50.0)
        assert set(table) == set(small_campaign.config.resolved_workloads())
        assert all(len(ranks) == 8 for ranks in table.values())

    def test_fig9_helpers(self, small_campaign):
        bars = fig9a_pue_bars(small_campaign, trefp_values_s=(1.450, 2.283))
        assert set(bars) == {1.450, 2.283}
        distribution = fig9b_ue_rank_distribution(small_campaign)
        assert sum(distribution.values()) == pytest.approx(1.0)


class TestPaperClaims:
    def test_wer_varies_across_workloads(self, small_campaign):
        """Section V.A: WER varies severalfold across workloads (8x in the paper)."""
        assert small_campaign.workload_spread(2.283, 50.0) > 3.0

    def test_wer_varies_strongly_across_ranks(self, small_campaign):
        """Section V.A / Fig. 8: up to ~188x variation across DIMM/ranks."""
        assert small_campaign.rank_spread(2.283, 50.0) > 50.0

    def test_no_ue_at_50c(self):
        """Section V.B: no uncorrectable errors at 50 C."""
        from repro.dram.operating import OperatingPoint

        experiment = CharacterizationExperiment(seed=2)
        for repetition in range(3):
            result = experiment.run("srad(par)", OperatingPoint.relaxed(2.283, 50.0),
                                    repetition=repetition)
            assert not result.crashed

    def test_pue_grows_with_trefp_and_saturates(self, small_campaign):
        """Fig. 9a: mean PUE grows with TREFP and reaches ~1 at 2.283 s."""
        assert small_campaign.mean_pue(1.450) < small_campaign.mean_pue(2.283)
        assert small_campaign.mean_pue(2.283) > 0.9

    def test_serial_backprop_more_error_prone_than_parallel(self, small_campaign):
        """Section V.A: backprop(serial) has a higher WER than backprop(par)."""
        per_workload = small_campaign.wer_by_workload(2.283, 50.0)
        assert per_workload["backprop"] > per_workload["backprop(par)"]

    def test_temperature_dominates_wer(self, small_campaign):
        """Fig. 7: raising the DIMM temperature by 10 C raises WER severalfold."""
        assert small_campaign.mean_wer(2.283, 60.0) > 5 * small_campaign.mean_wer(2.283, 50.0)
