"""Equivalence harness for the bit-packed SECDED engine and streamed arrays.

The packed uint64-lane codec (`SecdedCode(packed=True)`, the default) is
~an order of magnitude faster than the original byte-per-bit engine; the
byte-per-bit path is retained as the in-repo oracle and these tests pin
the two bit-identical — data bits, error codes, corrected-bit indices —
so the fast path can never silently drift.  The second half pins the
streamed `CellArraySimulator`: block-size invariance, the word-index
addressing fast path, the memory-budget guard, and a slow-marked
million-word stress test with a closed-form WER tolerance and a
tracemalloc peak-allocation budget.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.dram.calibration import DramCalibration, RetentionCalibration
from repro.dram.cells import BatchReadResult, CellArrayConfig, CellArraySimulator
from repro.dram.ecc import (
    BatchDecodeResult,
    ErrorClass,
    SecdedCode,
    pack_codewords,
    unpack_codewords,
)
from repro.dram.geometry import DramGeometry, small_geometry
from repro.dram.retention import bit_failure_probability
from repro.errors import ConfigurationError

PACKED = SecdedCode(packed=True)
ORACLE = SecdedCode(packed=False)


# --------------------------------------------------------------------------
# Packed <-> unpacked codec equivalence
# --------------------------------------------------------------------------
@given(
    words=st.lists(
        st.integers(min_value=0, max_value=2 ** 64 - 1), min_size=1, max_size=16
    ),
    flip_sets=st.lists(
        st.sets(st.integers(min_value=0, max_value=71), min_size=0, max_size=4),
        min_size=16,
        max_size=16,
    ),
)
@settings(max_examples=80, deadline=None)
def test_packed_decode_bit_identical_to_unpacked_oracle(words, flip_sets):
    """Random words, random 0-4 flips: both engines agree bit for bit."""
    data = np.array(words, dtype=np.uint64)
    codewords = ORACLE.encode_batch(data)
    assert np.array_equal(PACKED.encode_batch(data), codewords)

    for row in range(len(words)):
        for position in flip_sets[row]:
            codewords[row, position] ^= 1

    packed = PACKED.decode_batch(codewords)
    oracle = ORACLE.decode_batch(codewords)
    assert np.array_equal(packed.error_codes, oracle.error_codes)
    assert np.array_equal(packed.corrected_bits, oracle.corrected_bits)
    assert np.array_equal(packed.data_bits, oracle.data_bits)
    assert np.array_equal(packed.data_words, oracle.data_words)

    # The lane layout round-trips, and both engines accept lanes directly.
    lanes = pack_codewords(codewords)
    assert np.array_equal(unpack_codewords(lanes), codewords)
    from_lanes = PACKED.decode_batch(lanes)
    assert np.array_equal(from_lanes.error_codes, oracle.error_codes)
    assert np.array_equal(from_lanes.data_words, oracle.data_words)
    oracle_from_lanes = ORACLE.decode_batch(lanes)
    assert np.array_equal(oracle_from_lanes.error_codes, oracle.error_codes)


def test_encode_packed_matches_packed_encode_batch():
    rng = np.random.default_rng(11)
    words = rng.integers(0, 2 ** 63, size=257, dtype=np.uint64)
    words[0] = 0
    words[1] = np.uint64(2 ** 64 - 1)
    lanes = PACKED.encode_packed(words)
    assert lanes.shape == (257, 2) and lanes.dtype == np.uint64
    assert np.array_equal(unpack_codewords(lanes), ORACLE.encode_batch(words))
    # Lane 1 only ever uses its low byte (7 Hamming bits + overall parity).
    assert int(lanes[:, 1].max()) < 256


class TestPackHelpers:
    def test_round_trip(self):
        rng = np.random.default_rng(23)
        block = rng.integers(0, 2, size=(50, 72), dtype=np.uint8)
        assert np.array_equal(unpack_codewords(pack_codewords(block)), block)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_codewords(np.zeros((3, 71), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            unpack_codewords(np.zeros((3, 3), dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            unpack_codewords(np.zeros((3, 2), dtype=np.int64))

    def test_non_bit_entries_rejected(self):
        block = np.zeros((2, 72), dtype=np.uint8)
        block[1, 5] = 2
        with pytest.raises(ConfigurationError):
            pack_codewords(block)


class TestEmptyBatches:
    """Regression: N=0 batches used to trip shape/validation errors."""

    @pytest.mark.parametrize("code", [PACKED, ORACLE], ids=["packed", "oracle"])
    def test_empty_encode(self, code):
        assert code.encode_batch(np.zeros(0, dtype=np.uint64)).shape == (0, 72)
        assert code.encode_batch([]).shape == (0, 72)
        lanes = code.encode_packed(np.zeros(0, dtype=np.uint64))
        assert lanes.shape == (0, 2) and lanes.dtype == np.uint64

    @pytest.mark.parametrize("code", [PACKED, ORACLE], ids=["packed", "oracle"])
    def test_empty_decode(self, code):
        for block in (
            np.zeros((0, 72), dtype=np.uint8),
            np.zeros((0, 2), dtype=np.uint64),
        ):
            result = code.decode_batch(block)
            assert isinstance(result, BatchDecodeResult)
            assert len(result) == 0
            assert result.error_codes.shape == (0,)
            assert result.corrected_bits.shape == (0,)
            assert result.data_words.shape == (0,)
            assert result.data_bits.shape == (0, 64)
            assert result.counts()[ErrorClass.NO_ERROR] == 0


class TestLazyBatchDecodeResult:
    def test_words_view_materialises_from_bits(self):
        bits = np.zeros((2, 64), dtype=np.uint8)
        bits[0, 0] = 1
        bits[1, 63] = 1
        result = BatchDecodeResult(
            data_bits=bits,
            error_codes=np.zeros(2, dtype=np.uint8),
            corrected_bits=np.full(2, -1, dtype=np.int64),
        )
        assert result.data_words.tolist() == [1, 2 ** 63]

    def test_bits_view_materialises_from_words(self):
        result = BatchDecodeResult(
            data_words=np.array([5], dtype=np.uint64),
            error_codes=np.zeros(1, dtype=np.uint8),
            corrected_bits=np.full(1, -1, dtype=np.int64),
        )
        assert result.data_bits[0, :3].tolist() == [1, 0, 1]
        assert result.result(0).data[:3].tolist() == [1, 0, 1]

    def test_requires_some_data_representation(self):
        with pytest.raises(ConfigurationError):
            BatchDecodeResult(
                error_codes=np.zeros(1, dtype=np.uint8),
                corrected_bits=np.full(1, -1, dtype=np.int64),
            )


# --------------------------------------------------------------------------
# Streamed cell array
# --------------------------------------------------------------------------
def weak_calibration(log_median=4.0, log_sigma=1.2) -> DramCalibration:
    return DramCalibration(
        retention=RetentionCalibration(
            log_median_retention_50c=log_median, log_sigma=log_sigma
        )
    )


def tiny_config(**overrides) -> CellArrayConfig:
    defaults = dict(
        geometry=small_geometry(),
        trefp_s=2.283,
        temperature_c=70.0,
        calibration=weak_calibration(),
        seed=13,
    )
    defaults.update(overrides)
    return CellArrayConfig(**defaults)


class TestBlockStreaming:
    def test_results_invariant_to_block_size(self):
        """Streaming is exact: any block_words gives bit-identical results."""
        outputs = []
        for block_words in (7, 600, 65536):
            sim = CellArraySimulator(tiny_config(block_words=block_words))
            n = 1500
            words = np.arange(n)
            sim.write_batch(words, np.full(n, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64))
            sim.idle(600.0)
            sweep = sim.read_batch(words, workload="wl")
            outputs.append(
                (
                    sweep.decode.error_codes,
                    sweep.decode.corrected_bits,
                    sweep.decode.data_words,
                    sim.codewords[:n].copy(),
                    [(r.location, r.error_class) for r in sim.error_log],
                )
            )
        for other in outputs[1:]:
            for got, want in zip(other[:4], outputs[0][:4]):
                assert np.array_equal(got, want)
            assert other[4] == outputs[0][4]
        # The sweep really exercised multiple blocks and produced errors.
        assert (outputs[0][0] != 0).any()

    def test_index_addressing_matches_cell_locations(self):
        """Word-index batches behave exactly like CellLocation batches."""
        sim_idx = CellArraySimulator(tiny_config(block_words=400))
        sim_loc = CellArraySimulator(tiny_config(block_words=400))
        n = 1000
        values = np.arange(n, dtype=np.uint64) | np.uint64(0xFF00FF00FF00FF00)
        locations = [sim_loc.geometry.cell_from_word_index(i) for i in range(n)]

        sim_idx.write_batch(np.arange(n), values)
        sim_loc.write_batch(locations, values)
        for sim in (sim_idx, sim_loc):
            sim.idle(600.0)
        by_index = sim_idx.read_batch(np.arange(n), workload="wl")
        by_location = sim_loc.read_batch(locations, workload="wl")

        assert np.array_equal(
            by_index.decode.error_codes, by_location.decode.error_codes
        )
        assert np.array_equal(
            by_index.decode.data_words, by_location.decode.data_words
        )
        # Logged locations are identical CellLocation values either way.
        assert [r.location for r in sim_idx.error_log] == [
            r.location for r in sim_loc.error_log
        ]

    def test_index_out_of_range_rejected(self):
        sim = CellArraySimulator(tiny_config())
        sim.write_batch(np.arange(4), np.arange(4, dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            sim.read_batch(np.array([0, sim.geometry.total_words]))
        with pytest.raises(ConfigurationError):
            sim.write_batch(np.array([-1]), np.array([0], dtype=np.uint64))

    def test_invalid_block_words_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_config(block_words=0)


class TestErrorLocations:
    def test_list_backed_locations_return_cell_locations(self):
        sim = CellArraySimulator(tiny_config())
        locations = sim.fill([0xFFFFFFFFFFFFFFFF] * 800)
        sim.idle(600.0)
        sweep = sim.read_batch(locations, workload="wl")
        errors = sweep.error_locations()
        assert errors and all(loc in locations for loc in errors)
        assert set(errors) == {record.location for record in sim.error_log}

    def test_ndarray_backed_locations_use_fancy_indexing(self):
        sim = CellArraySimulator(tiny_config())
        n = 800
        words = np.arange(n)
        sim.write_batch(words, np.full(n, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64))
        sim.idle(600.0)
        sweep = sim.read_batch(words, workload="wl")
        assert isinstance(sweep.locations, np.ndarray)
        errors = sweep.error_locations()
        expected_rows = np.flatnonzero(
            sweep.decode.error_codes
            != 0  # ERROR_CLASS_CODES[ErrorClass.NO_ERROR] == 0
        )
        assert len(errors) == expected_rows.size > 0
        assert [int(e) for e in errors] == expected_rows.tolist()
        # The logged CellLocations correspond to exactly these word indices.
        as_cells = [
            sim.geometry.cell_from_word_index(int(word)) for word in errors
        ]
        assert as_cells == [record.location for record in sim.error_log]

    def test_error_locations_with_synthetic_ndarray_sequence(self):
        decode = BatchDecodeResult(
            data_words=np.zeros(3, dtype=np.uint64),
            error_codes=np.array([0, 1, 2], dtype=np.uint8),
            corrected_bits=np.full(3, -1, dtype=np.int64),
        )
        as_array = BatchReadResult(locations=np.array([10, 20, 30]), decode=decode)
        assert [int(x) for x in as_array.error_locations()] == [20, 30]
        as_list = BatchReadResult(locations=["a", "b", "c"], decode=decode)
        assert as_list.error_locations() == ["b", "c"]


class TestMemoryBudget:
    def test_full_scale_geometry_rejected_by_budget(self):
        with pytest.raises(ConfigurationError):
            CellArraySimulator(CellArrayConfig(geometry=DramGeometry()))

    def test_tiny_budget_rejects_small_geometry(self):
        with pytest.raises(ConfigurationError):
            CellArraySimulator(tiny_config(memory_budget_bytes=1024))

    def test_budget_can_be_raised(self):
        sim = CellArraySimulator(
            tiny_config(memory_budget_bytes=64 * 1024 ** 2)
        )
        sim.write_batch(np.arange(2), np.arange(2, dtype=np.uint64))
        assert sim.read_batch(np.arange(2)).counts()[ErrorClass.NO_ERROR] == 2


# --------------------------------------------------------------------------
# Million-word stress (slow)
# --------------------------------------------------------------------------
@pytest.mark.slow
def test_million_word_array_wer_and_memory_budget():
    """A 1,048,576-word (75.5M-cell) array: WER inside the closed-form
    tolerance and peak temporary allocation bounded by the block budget.

    With ``true_cell_fraction=0.5`` every cell flips visibly with the same
    probability ``p = 0.5 * (0.99 * F(e) + 0.01 * F(10 e))`` regardless of
    the stored pattern (``F`` the retention-failure CDF at exposure ``e``,
    the VRT term an order-of-magnitude retention collapse), so the
    corrected-word rate is bracketed by exact binomials:
    ``B(1) <= E[CE-WER] <= B(1) + P(k >= 3)`` — single flips are always
    corrected, even flip counts are UEs, odd counts >= 3 are at worst
    miscorrected into the CE tally.
    """
    geometry = DramGeometry(
        num_dimms=1,
        ranks_per_dimm=1,
        banks_per_rank=1,
        rows_per_bank=1024,
        columns_per_row=1024,
    )
    n_words = geometry.total_words
    assert n_words == 1_048_576
    assert n_words * units.CODEWORD_BITS >= 72_000_000

    block_words = 65536
    config = CellArrayConfig(
        geometry=geometry,
        trefp_s=2.283,
        temperature_c=70.0,
        interference_strength=0.0,
        true_cell_fraction=0.5,
        calibration=weak_calibration(log_median=7.0, log_sigma=1.3),
        seed=2019,
        block_words=block_words,
    )
    sim = CellArraySimulator(config)

    rng = np.random.default_rng(7)
    values = rng.integers(0, 2 ** 64, size=n_words, dtype=np.uint64)
    words = np.arange(n_words)
    idle_s = 600.0

    tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    sim.write_batch(words, values)
    sim.idle(idle_s)
    sweep = sim.read_batch(words, workload="stress")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # -- memory: streaming keeps temporaries proportional to block_words,
    # far under the ~604 MB a single all-cell float64 retention slab
    # (n_words * 72 * 8 bytes) would cost, even counting the per-word
    # result columns and the value/index inputs.
    peak_extra = peak - before
    unstreamed_slab = n_words * units.CODEWORD_BITS * 8
    assert peak_extra < unstreamed_slab / 3
    per_block_budget = block_words * units.CODEWORD_BITS * 8 * 4  # 151 MB
    result_columns = n_words * (8 + 8 + 1 + 8)                    # ~26 MB
    assert peak_extra < per_block_budget + result_columns

    # -- WER: measured corrected-word rate inside the closed-form band.
    exposure = min(idle_s, config.trefp_s)
    cal = config.calibration.retention
    p_leak = 0.99 * bit_failure_probability(
        exposure, config.temperature_c, config.vdd_v, calibration=cal
    ) + 0.01 * bit_failure_probability(
        10.0 * exposure, config.temperature_c, config.vdd_v, calibration=cal
    )
    p = 0.5 * p_leak
    bits = units.CODEWORD_BITS
    b0 = (1.0 - p) ** bits
    b1 = bits * p * (1.0 - p) ** (bits - 1)
    b2 = bits * (bits - 1) / 2.0 * p * p * (1.0 - p) ** (bits - 2)
    sigma = np.sqrt(b1 * (1.0 - b1) / n_words)

    measured = sim.measured_wer(n_words)
    assert b1 - 6.0 * sigma <= measured <= b1 + (1.0 - b0 - b1 - b2) + 6.0 * sigma

    # The sweep really produced a dense error population, and the decode
    # classification is consistent with the log-based WER.
    counts = sweep.counts()
    assert counts[ErrorClass.CORRECTED] > 10_000
    assert measured == pytest.approx(counts[ErrorClass.CORRECTED] / n_words)
