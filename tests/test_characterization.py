"""Tests for SLIMpro, the server model, experiments and campaigns."""

import pytest

from repro import units
from repro.characterization.campaign import (
    CampaignConfig,
    CampaignResult,
    CharacterizationCampaign,
)
from repro.characterization.experiment import CharacterizationExperiment
from repro.characterization.metrics import (
    PueSummary,
    UeObservation,
    WerMeasurement,
    probability_of_uncorrectable,
    rank_ue_distribution,
    word_error_rate,
)
from repro.characterization.server import XGene2Server
from repro.characterization.slimpro import Slimpro
from repro.dram.ecc import ErrorClass
from repro.dram.geometry import CellLocation, RankLocation
from repro.dram.operating import OperatingPoint
from repro.errors import CharacterizationError, ConfigurationError, DataError


class TestMetrics:
    def test_word_error_rate(self):
        assert word_error_rate(5, 1000) == pytest.approx(0.005)

    def test_word_error_rate_validation(self):
        with pytest.raises(DataError):
            word_error_rate(10, 0)
        with pytest.raises(DataError):
            word_error_rate(11, 10)

    def test_probability_of_uncorrectable(self):
        assert probability_of_uncorrectable(3, 10) == pytest.approx(0.3)
        with pytest.raises(DataError):
            probability_of_uncorrectable(5, 4)

    def test_ue_observation_consistency(self):
        with pytest.raises(DataError):
            UeObservation("w", 1.45, 70.0, crashed=True, rank=None)
        with pytest.raises(DataError):
            UeObservation("w", 1.45, 70.0, crashed=False, rank=RankLocation(0, 0))

    def test_pue_summary_accumulates(self):
        summary = PueSummary("w", 1.45, 70.0)
        summary.add(UeObservation("w", 1.45, 70.0, True, RankLocation(2, 0)))
        summary.add(UeObservation("w", 1.45, 70.0, False))
        assert summary.pue == pytest.approx(0.5)
        assert summary.crashes_by_rank[RankLocation(2, 0)] == 1

    def test_pue_summary_rejects_foreign_observation(self):
        summary = PueSummary("w", 1.45, 70.0)
        with pytest.raises(DataError):
            summary.add(UeObservation("other", 1.45, 70.0, False))

    def test_rank_ue_distribution_normalises(self):
        s1 = PueSummary("a", 1.45, 70.0)
        s1.add(UeObservation("a", 1.45, 70.0, True, RankLocation(2, 0)))
        s2 = PueSummary("b", 1.45, 70.0)
        s2.add(UeObservation("b", 1.45, 70.0, True, RankLocation(0, 1)))
        dist = rank_ue_distribution([s1, s2])
        assert sum(dist.values()) == pytest.approx(1.0)


class TestSlimpro:
    def test_parameter_limits_enforced(self):
        slimpro = Slimpro()
        with pytest.raises(ConfigurationError):
            slimpro.set_refresh_period(3.0)
        with pytest.raises(ConfigurationError):
            slimpro.set_supply_voltage(1.3)

    def test_operating_point_reflects_configuration(self):
        slimpro = Slimpro()
        slimpro.set_refresh_period(2.283)
        slimpro.set_supply_voltage(1.428)
        for dimm in range(4):
            slimpro.record_dimm_temperature(dimm, 60.0)
        op = slimpro.operating_point
        assert op.trefp_s == pytest.approx(2.283)
        assert op.temperature_c == pytest.approx(60.0)

    def test_error_reporting_with_location(self):
        slimpro = Slimpro()
        record = slimpro.report_error(
            ErrorClass.CORRECTED, CellLocation(1, 0, 2, 100, 5), timestamp_s=12.0,
            workload="backprop",
        )
        assert record.rank_location == RankLocation(1, 0)
        assert slimpro.errors_for_rank(RankLocation(1, 0)) == 1
        assert slimpro.errors_for_rank(RankLocation(0, 0)) == 0

    def test_invalid_error_location_rejected(self):
        with pytest.raises(ConfigurationError):
            Slimpro().report_error(ErrorClass.CORRECTED,
                                   CellLocation(9, 0, 0, 0, 0), 0.0)


class TestServer:
    def test_describe_matches_platform(self):
        info = XGene2Server().describe()
        assert info["dram_chips"] == 72
        assert info["dimms"] == 4
        assert info["total_memory_gib"] == pytest.approx(32.0)

    def test_configure_applies_operating_point(self):
        server = XGene2Server()
        op = OperatingPoint.relaxed(1.727, 60.0)
        configured = server.configure(op)
        assert configured.trefp_s == pytest.approx(1.727)
        assert configured.temperature_c == pytest.approx(60.0)

    def test_configure_with_thermal_settling(self):
        server = XGene2Server()
        configured = server.configure(OperatingPoint.relaxed(1.173, 50.0),
                                      settle_thermals=True)
        assert configured.temperature_c == pytest.approx(50.0, abs=1.5)


class TestExperiment:
    def test_run_produces_per_rank_wer(self):
        experiment = CharacterizationExperiment(seed=1)
        result = experiment.run("backprop", OperatingPoint.relaxed(2.283, 50.0))
        assert len(result.rank_wer) == 8
        assert result.memory_wer > 0
        assert not result.crashed   # UEs do not occur at 50 C

    def test_runs_are_reproducible(self):
        a = CharacterizationExperiment(seed=3).run("kmeans", OperatingPoint.relaxed(2.283, 50.0))
        b = CharacterizationExperiment(seed=3).run("kmeans", OperatingPoint.relaxed(2.283, 50.0))
        assert a.memory_wer == pytest.approx(b.memory_wer)

    def test_repetitions_differ(self):
        experiment = CharacterizationExperiment(seed=3)
        op = OperatingPoint.relaxed(2.283, 50.0)
        a = experiment.run("kmeans", op, repetition=0)
        b = experiment.run("kmeans", op, repetition=1)
        assert a.memory_wer != pytest.approx(b.memory_wer)

    def test_shorter_run_sees_fewer_errors(self):
        experiment = CharacterizationExperiment(seed=5)
        op = OperatingPoint.relaxed(2.283, 50.0)
        short = experiment.run("srad(par)", op, duration_s=20 * units.MINUTE)
        full = experiment.run("srad(par)", op, duration_s=2 * units.HOUR)
        assert short.memory_wer < full.memory_wer

    def test_time_series_collection(self):
        experiment = CharacterizationExperiment(seed=5)
        result = experiment.run("memcached", OperatingPoint.relaxed(2.283, 50.0),
                                collect_time_series=True)
        assert len(result.wer_time_series) == 12
        values = [v for _t, v in sorted(result.wer_time_series.items())]
        assert values == sorted(values)

    def test_crash_at_extreme_operating_point(self):
        experiment = CharacterizationExperiment(seed=5)
        result = experiment.run("srad(par)", OperatingPoint.relaxed(2.283, 70.0))
        assert result.crashed
        assert result.ue_observation().rank is not None

    def test_invalid_duration_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationExperiment().run("backprop", OperatingPoint.nominal(),
                                             duration_s=0.0)


class TestCampaign:
    def test_small_campaign_covers_grid(self, small_campaign):
        config = small_campaign.config
        expected_rows = (
            len(config.resolved_workloads())
            * len(config.trefp_values_s) * len(config.temperatures_c) * 8
            + len(config.resolved_workloads()) * len(config.ue_trefp_values_s) * 8
        )
        assert len(small_campaign.wer_measurements) == expected_rows

    def test_wer_by_workload_has_every_benchmark(self, small_campaign):
        per_workload = small_campaign.wer_by_workload(2.283, 50.0)
        assert set(per_workload) == set(small_campaign.config.resolved_workloads())
        assert all(v > 0 for v in per_workload.values())

    def test_memcached_is_least_error_prone(self, small_campaign):
        per_workload = small_campaign.wer_by_workload(2.283, 50.0)
        assert min(per_workload, key=per_workload.get) == "memcached"

    def test_mean_wer_grows_with_trefp(self, small_campaign):
        assert small_campaign.mean_wer(2.283, 50.0) > small_campaign.mean_wer(1.173, 50.0)

    def test_mean_wer_grows_with_temperature(self, small_campaign):
        assert small_campaign.mean_wer(2.283, 60.0) > small_campaign.mean_wer(2.283, 50.0)

    def test_pue_by_workload(self, small_campaign):
        pue = small_campaign.pue_by_workload(2.283)
        assert all(0.0 <= v <= 1.0 for v in pue.values())
        assert small_campaign.mean_pue(2.283) > small_campaign.mean_pue(1.450)

    def test_ue_rank_distribution_skips_immune_rank(self, small_campaign):
        distribution = small_campaign.ue_rank_distribution()
        assert distribution, "expected at least one UE in the small campaign"
        assert RankLocation(3, 1) not in distribution

    def test_unknown_operating_point_rejected(self, small_campaign):
        with pytest.raises(CharacterizationError):
            small_campaign.wer_by_workload(0.1, 50.0)

    def test_campaign_without_ue_study(self):
        config = CampaignConfig(workloads=("memcached",), trefp_values_s=(2.283,),
                                temperatures_c=(50.0,))
        result = CharacterizationCampaign(config=config).run(include_ue_study=False)
        assert result.pue_summaries == []
        assert len(result.wer_measurements) == 8


class TestSpreadAggregations:
    @staticmethod
    def _result(workload_wers):
        result = CampaignResult(config=CampaignConfig())
        for workload, wer in workload_wers:
            result.wer_measurements.append(WerMeasurement(
                workload=workload, trefp_s=0.618, vdd_v=units.MIN_VDD_V,
                temperature_c=50.0, rank=RankLocation(0, 0), wer=wer,
            ))
        return result

    def test_workload_spread_ratio(self):
        result = self._result([("a", 1e-6), ("b", 8e-6), ("c", 2e-6)])
        assert result.workload_spread(0.618, 50.0) == pytest.approx(8.0)

    def test_workload_spread_ignores_zero_wer_workloads(self):
        # Regression: a workload measuring WER = 0 at a mild operating point
        # used to raise ZeroDivisionError; the ratio is taken over the
        # measurable workloads instead.
        result = self._result([("a", 0.0), ("b", 2e-6), ("c", 6e-6)])
        assert result.workload_spread(0.618, 50.0) == pytest.approx(3.0)

    def test_workload_spread_undefined_without_two_positive(self):
        result = self._result([("a", 0.0), ("b", 2e-6)])
        with pytest.raises(CharacterizationError):
            result.workload_spread(0.618, 50.0)
        all_zero = self._result([("a", 0.0), ("b", 0.0)])
        with pytest.raises(CharacterizationError):
            all_zero.workload_spread(0.618, 50.0)


class TestMechanismCheck:
    def test_mechanism_check_observes_real_ecc_events(self):
        experiment = CharacterizationExperiment(seed=5)
        op = OperatingPoint.relaxed(2.283, 70.0)
        check = experiment.mechanism_check(op, num_words=2048)
        assert check.words == 2048
        assert sum(check.counts.values()) == 2048
        assert check.counts[ErrorClass.CORRECTED] > 0
        assert 0.0 < check.measured_wer <= 1.0

    def test_mechanism_check_entropy_sensitivity(self):
        # A zero-entropy pattern stores mostly discharge-polarity bits, so
        # fewer decays are visible than for a dense pattern (Fig. 5 trend).
        # A stronger-than-default cell population keeps the tiny array away
        # from saturation, where every word errors regardless of pattern.
        from repro.dram.calibration import DramCalibration, RetentionCalibration
        from repro.dram.statistical import WorkloadBehavior
        experiment = CharacterizationExperiment(seed=5)
        op = OperatingPoint.relaxed(2.283, 70.0)
        calibration = DramCalibration(
            retention=RetentionCalibration(log_median_retention_50c=5.0, log_sigma=1.3)
        )
        low = WorkloadBehavior(accesses_per_cycle=0.01, reuse_time_s=1.0,
                               data_entropy_bits=0.0, footprint_words=10 ** 6)
        sparse = experiment.mechanism_check(op, behavior=low, num_words=2048,
                                            calibration=calibration)
        dense = experiment.mechanism_check(op, num_words=2048,
                                           calibration=calibration)
        def total(check):
            return sum(
                count for cls, count in check.counts.items()
                if cls is not ErrorClass.NO_ERROR
            )
        assert total(sparse) < 0.6 * total(dense)

    def test_mechanism_check_validates_arguments(self):
        experiment = CharacterizationExperiment()
        op = OperatingPoint.relaxed(2.283, 70.0)
        with pytest.raises(CharacterizationError):
            experiment.mechanism_check(op, num_words=0)
        with pytest.raises(CharacterizationError):
            experiment.mechanism_check(op, idle_s=0.0)
