"""Tests for the platform constants and unit helpers."""

import pytest

from repro import units


class TestUnits:
    def test_word_geometry(self):
        assert units.WORD_BYTES == 8
        assert units.WORD_BITS == 64
        assert units.CODEWORD_BITS == 72

    def test_platform_matches_paper(self):
        assert units.NUM_MCUS == 4
        assert units.RANKS_PER_DIMM == 2
        # 4 DIMMs x 2 ranks x 9 chips = 72 characterized DRAM chips.
        assert units.NUM_MCUS * units.DIMMS_PER_MCU * units.RANKS_PER_DIMM * \
            units.CHIPS_PER_RANK == 72

    def test_trefp_range(self):
        assert units.NOMINAL_TREFP_S == pytest.approx(0.064)
        assert units.MAX_TREFP_S == pytest.approx(2.283)
        assert units.TREFP_SWEEP_S == (0.618, 1.173, 1.727, 2.283)
        assert units.TREFP_UE_SWEEP_S == (1.450, 1.727, 2.283)

    def test_voltage_range(self):
        assert units.MIN_VDD_V == pytest.approx(1.428)
        assert units.NOMINAL_VDD_V == pytest.approx(1.5)
        # The paper scales VDD down by ~5 %.
        assert (1 - units.MIN_VDD_V / units.NOMINAL_VDD_V) == pytest.approx(0.048, abs=0.01)

    def test_celsius_to_kelvin(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.celsius_to_kelvin(70.0) == pytest.approx(343.15)

    def test_words_in(self):
        assert units.words_in(0) == 0
        assert units.words_in(8) == 1
        assert units.words_in(units.GIB) == units.GIB // 8

    def test_words_in_rejects_negative(self):
        with pytest.raises(ValueError):
            units.words_in(-1)

    def test_characterization_duration_is_two_hours(self):
        assert units.CHARACTERIZATION_DURATION_S == pytest.approx(7200.0)
