"""Tests for the metrics, cross-validation splitters, pipeline and selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.ml.cross_validation import (
    KFold,
    LeaveOneGroupOut,
    cross_val_predict_groups,
    group_scores,
)
from repro.ml.knn import KNeighborsRegressor
from repro.ml.metrics import (
    mean_absolute_error,
    mean_percentage_error,
    pearson_correlation,
    prediction_ratio,
    r2_score,
    root_mean_squared_error,
    spearman_correlation,
)
from repro.ml.pipeline import Pipeline, make_model_pipeline
from repro.ml.scaling import StandardScaler
from repro.ml.selection import SpearmanFeatureRanker, select_top_features


class TestMetrics:
    def test_mean_percentage_error_basic(self):
        assert mean_percentage_error([1.0, 2.0], [1.1, 1.8]) == pytest.approx(10.0)

    def test_mean_percentage_error_zero_target_with_zero_prediction(self):
        assert mean_percentage_error([0.0], [0.0]) == pytest.approx(0.0)

    def test_mean_percentage_error_zero_target_with_floor(self):
        # A prediction of 0.05 against a zero target with floor 0.05 is 100 %.
        assert mean_percentage_error([0.0], [0.05], floor=0.05) == pytest.approx(100.0)

    def test_prediction_ratio_symmetric(self):
        assert prediction_ratio([1.0], [2.9]) == pytest.approx(2.9)
        assert prediction_ratio([2.9], [1.0]) == pytest.approx(2.9)

    def test_prediction_ratio_rejects_non_positive(self):
        with pytest.raises(DataError):
            prediction_ratio([0.0], [1.0])

    def test_rmse_and_mae(self):
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))
        assert mean_absolute_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(3.5)

    def test_r2_perfect_and_mean_predictor(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_spearman_detects_nonlinear_monotonic(self):
        x = np.linspace(1, 10, 20)
        assert spearman_correlation(x, x ** 3) == pytest.approx(1.0)
        assert spearman_correlation(x, -np.log(x)) == pytest.approx(-1.0)

    def test_spearman_constant_input_is_zero(self):
        assert spearman_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_pearson_linear(self):
        x = np.linspace(0, 1, 30)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            mean_percentage_error([1.0], [1.0, 2.0])


class TestSplitters:
    def test_leave_one_group_out_covers_every_group(self):
        groups = ["a", "a", "b", "c", "c", "c"]
        splitter = LeaveOneGroupOut()
        folds = list(splitter.split(range(6), groups))
        assert len(folds) == 3
        for train, test in folds:
            test_groups = {groups[i] for i in test}
            train_groups = {groups[i] for i in train}
            assert len(test_groups) == 1
            assert test_groups.isdisjoint(train_groups)

    def test_leave_one_group_out_needs_two_groups(self):
        with pytest.raises(DataError):
            list(LeaveOneGroupOut().split([1, 2], ["x", "x"]))

    def test_leave_one_group_out_accepts_integer_group_codes(self):
        # Columnar datasets hand over dictionary-encoded group codes; the
        # folds must be identical to splitting on the decoded names.
        names = ["a", "a", "b", "c", "c", "c"]
        codes = [0, 0, 1, 2, 2, 2]
        by_name = list(LeaveOneGroupOut().split(range(6), names))
        by_code = list(LeaveOneGroupOut().split(range(6), codes))
        assert len(by_name) == len(by_code) == 3
        for (train_n, test_n), (train_c, test_c) in zip(by_name, by_code):
            assert train_n.tolist() == train_c.tolist()
            assert test_n.tolist() == test_c.tolist()

    def test_kfold_partitions_everything_once(self):
        splitter = KFold(n_splits=4)
        seen = []
        for _train, test in splitter.split(range(10)):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(10))

    def test_kfold_rejects_too_few_samples(self):
        with pytest.raises(DataError):
            list(KFold(n_splits=5).split(range(3)))

    def test_kfold_shuffle_reproducible(self):
        a = [t.tolist() for _tr, t in KFold(3, shuffle=True, random_state=1).split(range(9))]
        b = [t.tolist() for _tr, t in KFold(3, shuffle=True, random_state=1).split(range(9))]
        assert a == b

    def test_cross_val_predict_groups_never_uses_own_group(self):
        # Targets are constant within a group; with 1-NN, a leaked prediction
        # would be exact, an honest one cannot be.
        X = np.array([[0.0], [0.01], [1.0], [1.01]])
        y = np.array([0.0, 0.0, 5.0, 5.0])
        groups = ["g0", "g0", "g1", "g1"]
        preds = cross_val_predict_groups(KNeighborsRegressor(n_neighbors=1), X, y, groups)
        assert np.all(np.abs(preds - y) > 1.0)

    def test_group_scores_returns_one_entry_per_group(self):
        scores = group_scores([1.0, 2.0, 3.0], [1.0, 2.0, 4.0], ["a", "a", "b"],
                              mean_absolute_error)
        assert dict(scores)["a"] == pytest.approx(0.0)
        assert dict(scores)["b"] == pytest.approx(1.0)


class TestPipeline:
    def test_pipeline_scales_before_fitting(self):
        X = np.array([[0.0, 1000.0], [1.0, 2000.0], [2.0, 3000.0]])
        y = np.array([0.0, 1.0, 2.0])
        pipeline = make_model_pipeline(KNeighborsRegressor(n_neighbors=1))
        pipeline.fit(X, y)
        assert pipeline.predict([[1.0, 2000.0]])[0] == pytest.approx(1.0)

    def test_pipeline_clone_is_deep(self):
        pipeline = make_model_pipeline(KNeighborsRegressor(n_neighbors=2))
        clone = pipeline.clone()
        assert clone is not pipeline
        assert clone.named_steps["model"] is not pipeline.named_steps["model"]

    def test_pipeline_requires_transformers_before_model(self):
        with pytest.raises(ConfigurationError):
            Pipeline([("model", KNeighborsRegressor()), ("scaler", StandardScaler())])

    def test_pipeline_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            Pipeline([("a", StandardScaler()), ("a", KNeighborsRegressor())])


class TestFeatureRanking:
    def test_ranker_orders_by_strength(self):
        rng = np.random.default_rng(0)
        informative = np.linspace(0, 1, 50)
        noise = rng.normal(size=50)
        X = np.column_stack([noise, informative])
        y = informative ** 2
        ranked = SpearmanFeatureRanker().rank(X, y, ["noise", "informative"])
        assert ranked[0].feature == "informative"
        assert ranked[0].strength > ranked[1].strength

    def test_select_top_features(self):
        ranked = SpearmanFeatureRanker().rank(
            np.column_stack([np.arange(10), np.ones(10)]), np.arange(10), ["a", "b"]
        )
        assert select_top_features(ranked, 1) == ["a"]

    def test_feature_name_mismatch_raises(self):
        with pytest.raises(DataError):
            SpearmanFeatureRanker().rank(np.zeros((3, 2)), np.zeros(3), ["only-one"])
