"""Workload-parallel campaign execution: bit-identity with the sequential sweep.

``CharacterizationCampaign.run(parallel=n)`` fans the per-workload grid
sweeps across a process pool and merges the returned columnar blocks in
workload order.  Because every workload consumes independent keyed RNG
streams, the merged record must be *bit-identical* to the sequential
sweep for any worker count — including ``parallel=1``, which still goes
through the pool machinery (picklable specs, worker-side experiments,
block merge) at trivial width.
"""

import pytest

from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
    WorkloadSweepSpec,
    _run_workload_sweep,
)
from repro.errors import CharacterizationError

CONFIG = CampaignConfig(
    workloads=("backprop", "memcached", "bfs"),
    trefp_values_s=(1.173, 2.283),
    temperatures_c=(50.0,),
    ue_trefp_values_s=(2.283,),
    ue_repetitions=3,
)


@pytest.fixture(scope="module")
def sequential_result():
    return CharacterizationCampaign(config=CONFIG, seed=23).run()


class TestParallelBitIdentity:
    def test_single_worker_pool_matches_sequential(self, sequential_result):
        result = CharacterizationCampaign(config=CONFIG, seed=23).run(parallel=1)
        assert result.wer_measurements == sequential_result.wer_measurements
        assert result.pue_summaries == sequential_result.pue_summaries

    def test_many_worker_pool_matches_sequential(self, sequential_result):
        result = CharacterizationCampaign(config=CONFIG, seed=23).run(parallel=3)
        assert result.wer_measurements == sequential_result.wer_measurements
        assert result.pue_summaries == sequential_result.pue_summaries

    def test_parallel_aggregations_match_sequential(self, sequential_result):
        result = CharacterizationCampaign(config=CONFIG, seed=23).run(parallel=2)
        assert result.wer_by_workload(2.283, 50.0) == (
            sequential_result.wer_by_workload(2.283, 50.0)
        )
        assert result.wer_by_rank(1.173, 50.0) == (
            sequential_result.wer_by_rank(1.173, 50.0)
        )

    def test_parallel_without_ue_study(self):
        sequential = CharacterizationCampaign(config=CONFIG, seed=5).run(
            include_ue_study=False
        )
        parallel = CharacterizationCampaign(config=CONFIG, seed=5).run(
            include_ue_study=False, parallel=2
        )
        assert parallel.wer_measurements == sequential.wer_measurements
        assert parallel.pue_summaries == []


class TestParallelArguments:
    def test_zero_workers_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationCampaign(config=CONFIG).run(parallel=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationCampaign(config=CONFIG).run(parallel=-2)

    def test_non_integer_workers_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacterizationCampaign(config=CONFIG).run(parallel=2.5)


class TestWorkerUnit:
    """The pool worker itself, run in-process on a picklable spec."""

    def test_worker_reproduces_sequential_blocks(self):
        campaign = CharacterizationCampaign(config=CONFIG, seed=23)
        spec = campaign._workload_specs(include_ue_study=True)[0]
        assert isinstance(spec, WorkloadSweepSpec)
        outcome = _run_workload_sweep(spec)
        assert outcome.workload == CONFIG.workloads[0]
        # CE block: points x repetitions x 8 ranks; UE block: repetition 0 only.
        assert len(outcome.wer_block) == 2 * CONFIG.repetitions * 8
        assert len(outcome.ue_block) == len(CONFIG.ue_trefp_values_s) * 8
        assert [s.total_runs for s in outcome.pue_summaries] == (
            [CONFIG.ue_repetitions] * len(CONFIG.ue_trefp_values_s)
        )

    def test_spec_is_picklable(self):
        import pickle

        campaign = CharacterizationCampaign(config=CONFIG, seed=23)
        specs = campaign._workload_specs(include_ue_study=True)
        restored = pickle.loads(pickle.dumps(specs))
        assert [s.workload for s in restored] == list(CONFIG.workloads)
