"""Tests for the ``tools.repro_lint`` static analyzer.

The fixture corpus under ``tests/lint_fixtures/`` is self-describing:
each file carries a ``# repro-lint-fixture: path=...`` header giving the
virtual repo path it should be linted as, and bad fixtures add an
``# expect: REPxxx:LINE ...`` header listing every expected violation.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from tools.repro_lint import RULES, json_report, lint_paths, lint_source
from tools.repro_lint.__main__ import main
from tools.repro_lint.report import REPORT_SCHEMA

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_DIR = Path(__file__).resolve().parent / "lint_fixtures"

_FIXTURE_PATH_RE = re.compile(r"#\s*repro-lint-fixture:\s*path=(\S+)")
_EXPECT_RE = re.compile(r"#\s*expect:\s*(.+)")


def _load_fixture(fixture: Path):
    """Return (source, virtual_path, expected [(rule, line), ...])."""
    source = fixture.read_text(encoding="utf-8")
    path_match = _FIXTURE_PATH_RE.search(source)
    assert path_match, f"{fixture.name} lacks a repro-lint-fixture header"
    expected = []
    expect_match = _EXPECT_RE.search(source)
    if expect_match:
        for token in expect_match.group(1).split():
            rule_id, line = token.split(":")
            expected.append((rule_id, int(line)))
    return source, path_match.group(1), sorted(expected)


def _fixture_files():
    files = sorted(FIXTURE_DIR.glob("*.py"))
    assert files, "fixture corpus is empty"
    return files


@pytest.mark.parametrize(
    "fixture", _fixture_files(), ids=lambda p: p.name
)
def test_fixture_matches_expectations(fixture):
    source, virtual_path, expected = _load_fixture(fixture)
    result = lint_source(source, virtual_path)
    assert not result.errors
    got = sorted((v.rule_id, v.line) for v in result.violations)
    assert got == expected


def test_every_rule_has_fixture_coverage():
    """Each registered rule needs a bad and a good fixture, and the bad
    fixture must actually expect at least one violation of that rule."""
    for rule_id in RULES:
        stem = rule_id.lower()
        bad = FIXTURE_DIR / f"{stem}_bad.py"
        good = FIXTURE_DIR / f"{stem}_good.py"
        assert bad.exists(), f"missing bad fixture for {rule_id}"
        assert good.exists(), f"missing good fixture for {rule_id}"
        _, _, expected = _load_fixture(bad)
        assert any(rid == rule_id for rid, _ in expected), (
            f"{bad.name} does not expect any {rule_id} violation"
        )
        _, _, good_expected = _load_fixture(good)
        assert good_expected == [], f"{good.name} must expect no violations"


def test_rule_ids_are_canonical():
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert re.fullmatch(r"REP\d{3}", rule_id)
        assert rule.title
        assert rule.rationale


class TestSuppression:
    SOURCE = (
        "def f(x: float) -> bool:\n"
        "    return x == 0.0  # repro-lint: disable=REP004\n"
    )

    def test_matching_id_suppresses_and_counts(self):
        result = lint_source(self.SOURCE, "src/repro/ml/demo.py")
        assert result.violations == []
        assert result.suppressed == 1
        assert result.exit_code == 0

    def test_wrong_id_does_not_suppress(self):
        source = self.SOURCE.replace("REP004", "REP001")
        result = lint_source(source, "src/repro/ml/demo.py")
        assert [v.rule_id for v in result.violations] == ["REP004"]
        assert result.suppressed == 0
        assert result.exit_code == 1

    def test_multiple_ids_in_one_comment(self):
        source = (
            "def f(x, acc=[]):  # repro-lint: disable=REP005, REP006\n"
            "    return acc\n"
        )
        result = lint_source(source, "src/repro/ml/demo.py")
        assert result.violations == []
        assert result.suppressed >= 2

    def test_suppression_fixture_round_trip(self):
        source, virtual_path, expected = _load_fixture(
            FIXTURE_DIR / "suppression.py"
        )
        result = lint_source(source, virtual_path)
        assert sorted((v.rule_id, v.line) for v in result.violations) == expected
        assert result.suppressed == 1


class TestScoping:
    def test_wall_clock_allowed_in_telemetry(self):
        source = "import time\n\n\ndef stamp() -> float:\n    return time.time()\n"
        assert lint_source(source, "src/repro/telemetry/core.py").violations == []
        flagged = lint_source(source, "src/repro/dram/cells.py")
        assert [v.rule_id for v in flagged.violations] == ["REP002"]

    def test_annotations_not_required_outside_src_repro(self):
        source = "def helper(x):\n    return x\n"
        assert lint_source(source, "tests/test_demo.py").violations == []
        flagged = lint_source(source, "src/repro/core/config.py")
        assert {v.rule_id for v in flagged.violations} == {"REP006"}

    def test_annotations_required_in_serving(self):
        # The serving package ships typed request/response dataclasses;
        # REP006 must keep covering it as it grows.
        source = "def helper(x):\n    return x\n"
        flagged = lint_source(source, "src/repro/serving/service.py")
        assert {v.rule_id for v in flagged.violations} == {"REP006"}

    def test_syntax_error_is_reported_not_raised(self):
        result = lint_source("def broken(:\n", "src/repro/oops.py")
        assert result.errors and result.errors[0].path == "src/repro/oops.py"
        assert result.exit_code == 2


class TestJsonReport:
    def _report(self):
        source, virtual_path, _ = _load_fixture(FIXTURE_DIR / "rep004_bad.py")
        result = lint_source(source, virtual_path)
        return json_report(result, ["src"])

    def test_schema_and_key_order_are_stable(self):
        report = self._report()
        assert report["schema"] == REPORT_SCHEMA
        assert list(report) == [
            "schema", "tool", "paths", "rules", "summary", "violations",
            "errors",
        ]
        assert report["tool"]["name"] == "repro-lint"
        assert list(report["summary"]) == [
            "files_checked", "violations", "suppressed", "errors", "counts",
            "exit_code",
        ]

    def test_counts_cover_every_rule(self):
        report = self._report()
        assert list(report["summary"]["counts"]) == sorted(RULES)
        assert report["summary"]["counts"]["REP004"] == 3
        assert report["summary"]["counts"]["REP001"] == 0

    def test_report_is_deterministic_and_serializable(self):
        first = json.dumps(self._report())
        second = json.dumps(self._report())
        assert first == second
        for violation in self._report()["violations"]:
            assert list(violation) == ["rule", "path", "line", "col", "message"]


class TestCli:
    def test_clean_file_exits_zero(self, capsys):
        code = main([str(FIXTURE_DIR / "rep001_good.py")])
        assert code == 0
        assert "0 violations" in capsys.readouterr().out

    def test_bad_file_exits_one_with_rule_id(self, capsys):
        code = main([str(FIXTURE_DIR / "rep005_bad.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP005" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["does/not/exist"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_json_output_writes_report(self, tmp_path, capsys):
        # REP005 applies everywhere, so the fixture violates even when
        # linted under its real on-disk path (scoped rules like REP002
        # only fire under the fixture's virtual src/repro path).
        target = tmp_path / "report.json"
        code = main(
            [
                str(FIXTURE_DIR / "rep005_bad.py"),
                "--format", "json",
                "--json-output", str(target),
            ]
        )
        assert code == 1
        on_disk = json.loads(target.read_text(encoding="utf-8"))
        printed = json.loads(capsys.readouterr().out)
        assert on_disk == printed
        assert on_disk["summary"]["counts"]["REP005"] == 3

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "REP001" in proc.stdout


def test_repository_is_lint_clean():
    """The acceptance gate: the repo's own code passes its own linter."""
    result = lint_paths(
        [str(REPO_ROOT / part) for part in ("src", "tests", "benchmarks")]
    )
    assert not result.errors
    assert result.violations == [], "\n".join(
        f"{v.path}:{v.line}: {v.rule_id} {v.message}" for v in result.violations
    )
    assert result.files_checked > 50
