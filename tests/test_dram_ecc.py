"""Tests for the SECDED ECC code (Table I behaviour)."""

import numpy as np
import pytest

from repro.dram.ecc import DecodeResult, ErrorClass, SecdedCode, classify_bit_errors
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def code():
    return SecdedCode()


class TestClassification:
    def test_table1_mapping(self):
        assert classify_bit_errors(0) is ErrorClass.NO_ERROR
        assert classify_bit_errors(1) is ErrorClass.CORRECTED
        assert classify_bit_errors(2) is ErrorClass.UNCORRECTABLE
        assert classify_bit_errors(3) is ErrorClass.SILENT
        assert classify_bit_errors(7) is ErrorClass.SILENT

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_bit_errors(-1)


class TestSecdedCode:
    def test_codeword_length_is_72(self, code):
        assert code.encode(0).shape == (72,)
        assert code.encode(2 ** 64 - 1).shape == (72,)

    def test_clean_round_trip(self, code):
        for data in (0, 1, 0xDEADBEEF, 2 ** 64 - 1, 0x0123456789ABCDEF):
            decoded, cls = code.roundtrip_with_errors(data, [])
            assert decoded == data
            assert cls is ErrorClass.NO_ERROR

    def test_single_bit_error_corrected_everywhere(self, code):
        data = 0xA5A5A5A5A5A5A5A5
        for position in range(72):
            decoded, cls = code.roundtrip_with_errors(data, [position])
            assert cls is ErrorClass.CORRECTED
            assert decoded == data, f"data corrupted after correcting bit {position}"

    def test_double_bit_error_detected(self, code):
        data = 0x0F0F0F0F0F0F0F0F
        rng = np.random.default_rng(5)
        for _ in range(50):
            positions = rng.choice(72, size=2, replace=False)
            _decoded, cls = code.roundtrip_with_errors(data, positions.tolist())
            assert cls is ErrorClass.UNCORRECTABLE

    def test_double_error_involving_parity_bit_still_detected(self, code):
        # One flip in the Hamming region plus the overall parity bit.
        _decoded, cls = code.roundtrip_with_errors(0x1234, [3, 71])
        assert cls is ErrorClass.UNCORRECTABLE

    def test_triple_bit_error_is_not_reported_as_ue(self, code):
        # Odd-weight errors look like single errors to SECDED: they are either
        # (mis)corrected or silent, never flagged as UE - that is exactly why
        # the paper calls >2-bit corruption Silent Data Corruption.
        _decoded, cls = code.roundtrip_with_errors(0xFFFF, [1, 9, 33])
        assert cls in (ErrorClass.CORRECTED, ErrorClass.SILENT)

    def test_invalid_data_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.encode(2 ** 64)
        with pytest.raises(ConfigurationError):
            code.encode(-1)

    def test_invalid_codeword_shape_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.decode(np.zeros(71, dtype=np.uint8))

    def test_decode_result_reports_corrected_position(self, code):
        codeword = code.encode(42)
        codeword[10] ^= 1
        result = code.decode(codeword)
        assert isinstance(result, DecodeResult)
        assert result.error_class is ErrorClass.CORRECTED
        assert result.corrected_bit == 10

    def test_flip_position_out_of_range_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.roundtrip_with_errors(1, [72])
