"""Tests for the SECDED ECC code (Table I behaviour)."""

import numpy as np
import pytest

from repro.dram.ecc import (
    ERROR_CLASS_ORDER,
    DecodeResult,
    ErrorClass,
    SecdedCode,
    bits_to_words,
    classify_bit_errors,
    words_to_bits,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def code():
    return SecdedCode()


def reference_decode(codeword):
    """Independent per-bit SECDED decoder (the pre-vectorization algorithm).

    Kept here so the batch engine is checked against a second
    implementation instead of against itself.
    """
    parity_positions = (1, 2, 4, 8, 16, 32, 64)
    data_positions = [p for p in range(1, 72) if p not in parity_positions]
    hamming = [int(b) for b in codeword[:71]]
    overall_received = int(codeword[71])

    syndrome = 0
    for position, bit in enumerate(hamming, start=1):
        if bit:
            syndrome ^= position
    parity_ok = (sum(hamming) % 2) == overall_received

    corrected_bit = -1
    if syndrome == 0 and parity_ok:
        error_class = ErrorClass.NO_ERROR
    elif syndrome == 0 and not parity_ok:
        error_class = ErrorClass.CORRECTED
        corrected_bit = 71
    elif syndrome != 0 and not parity_ok:
        error_class = ErrorClass.CORRECTED
        if 1 <= syndrome <= 71:
            hamming[syndrome - 1] ^= 1
            corrected_bit = syndrome - 1
        else:
            error_class = ErrorClass.SILENT
    else:
        error_class = ErrorClass.UNCORRECTABLE

    data = [hamming[p - 1] for p in data_positions]
    return data, error_class, corrected_bit


class TestClassification:
    def test_table1_mapping(self):
        assert classify_bit_errors(0) is ErrorClass.NO_ERROR
        assert classify_bit_errors(1) is ErrorClass.CORRECTED
        assert classify_bit_errors(2) is ErrorClass.UNCORRECTABLE
        assert classify_bit_errors(3) is ErrorClass.SILENT
        assert classify_bit_errors(7) is ErrorClass.SILENT

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_bit_errors(-1)


class TestSecdedCode:
    def test_codeword_length_is_72(self, code):
        assert code.encode(0).shape == (72,)
        assert code.encode(2 ** 64 - 1).shape == (72,)

    def test_clean_round_trip(self, code):
        for data in (0, 1, 0xDEADBEEF, 2 ** 64 - 1, 0x0123456789ABCDEF):
            decoded, cls = code.roundtrip_with_errors(data, [])
            assert decoded == data
            assert cls is ErrorClass.NO_ERROR

    def test_single_bit_error_corrected_everywhere(self, code):
        data = 0xA5A5A5A5A5A5A5A5
        for position in range(72):
            decoded, cls = code.roundtrip_with_errors(data, [position])
            assert cls is ErrorClass.CORRECTED
            assert decoded == data, f"data corrupted after correcting bit {position}"

    def test_double_bit_error_detected(self, code):
        data = 0x0F0F0F0F0F0F0F0F
        rng = np.random.default_rng(5)
        for _ in range(50):
            positions = rng.choice(72, size=2, replace=False)
            _decoded, cls = code.roundtrip_with_errors(data, positions.tolist())
            assert cls is ErrorClass.UNCORRECTABLE

    def test_double_error_involving_parity_bit_still_detected(self, code):
        # One flip in the Hamming region plus the overall parity bit.
        _decoded, cls = code.roundtrip_with_errors(0x1234, [3, 71])
        assert cls is ErrorClass.UNCORRECTABLE

    def test_triple_bit_error_is_not_reported_as_ue(self, code):
        # Odd-weight errors look like single errors to SECDED: they are either
        # (mis)corrected or silent, never flagged as UE - that is exactly why
        # the paper calls >2-bit corruption Silent Data Corruption.
        _decoded, cls = code.roundtrip_with_errors(0xFFFF, [1, 9, 33])
        assert cls in (ErrorClass.CORRECTED, ErrorClass.SILENT)

    def test_invalid_data_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.encode(2 ** 64)
        with pytest.raises(ConfigurationError):
            code.encode(-1)
        with pytest.raises(ConfigurationError):
            code.encode(42.7)   # would silently truncate to 42 otherwise

    def test_invalid_codeword_shape_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.decode(np.zeros(71, dtype=np.uint8))

    def test_decode_result_reports_corrected_position(self, code):
        codeword = code.encode(42)
        codeword[10] ^= 1
        result = code.decode(codeword)
        assert isinstance(result, DecodeResult)
        assert result.error_class is ErrorClass.CORRECTED
        assert result.corrected_bit == 10

    def test_flip_position_out_of_range_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.roundtrip_with_errors(1, [72])


class TestWordBitHelpers:
    def test_round_trip(self):
        words = np.array([0, 1, 2 ** 64 - 1, 0x0123456789ABCDEF], dtype=np.uint64)
        assert np.array_equal(bits_to_words(words_to_bits(words)), words)

    def test_lsb_first_layout(self):
        bits = words_to_bits(np.array([0b101], dtype=np.uint64))
        assert bits[0, 0] == 1 and bits[0, 1] == 0 and bits[0, 2] == 1

    def test_negative_words_rejected(self):
        with pytest.raises(ConfigurationError):
            words_to_bits([-1])
        with pytest.raises(ConfigurationError):
            words_to_bits(np.array([-1], dtype=np.int64))

    def test_oversized_words_rejected(self):
        with pytest.raises(ConfigurationError):
            words_to_bits([2 ** 64])

    def test_bad_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_to_words(np.zeros((2, 63), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            words_to_bits(np.zeros((2, 2), dtype=np.uint64))

    def test_non_bit_entries_rejected(self):
        bad = np.zeros((1, 64), dtype=np.int64)
        bad[0, 3] = -1
        with pytest.raises(ConfigurationError):
            bits_to_words(bad)
        bad[0, 3] = 2
        with pytest.raises(ConfigurationError):
            bits_to_words(bad)

    def test_float_words_rejected(self):
        with pytest.raises(ConfigurationError):
            words_to_bits(np.array([1.5]))


class TestBatchCodec:
    def test_batch_encode_matches_scalar(self, code):
        words = [0, 1, 0xDEADBEEF, 2 ** 64 - 1, 0xA5A5A5A5A5A5A5A5]
        batch = code.encode_batch(np.array(words, dtype=np.uint64))
        for row, word in enumerate(words):
            assert np.array_equal(batch[row], code.encode(word))

    def test_batch_encode_accepts_bit_matrix(self, code):
        words = np.array([7, 0xFFFF, 2 ** 63], dtype=np.uint64)
        assert np.array_equal(
            code.encode_batch(words), code.encode_batch(words_to_bits(words))
        )

    def test_batch_decode_matches_reference_across_error_classes(self, code):
        rng = np.random.default_rng(17)
        words = rng.integers(0, 2 ** 63, size=400, dtype=np.uint64)
        codewords = code.encode_batch(words)
        # 0/1/2/3-bit injected errors, every range including the parity bit.
        for row in range(400):
            flips = rng.choice(72, size=row % 4, replace=False)
            codewords[row, flips] ^= 1
        batch = code.decode_batch(codewords)
        seen = set()
        for row in range(400):
            data, error_class, corrected = reference_decode(codewords[row])
            assert ERROR_CLASS_ORDER[int(batch.error_codes[row])] is error_class
            assert int(batch.corrected_bits[row]) == corrected
            assert batch.data_bits[row].tolist() == data
            seen.add(error_class)
        assert ErrorClass.NO_ERROR in seen and ErrorClass.CORRECTED in seen
        assert ErrorClass.UNCORRECTABLE in seen

    def test_overall_parity_bit_flip_is_corrected_in_batch(self, code):
        codeword = code.encode(42)
        codeword[71] ^= 1
        batch = code.decode_batch(codeword[None, :])
        assert ERROR_CLASS_ORDER[int(batch.error_codes[0])] is ErrorClass.CORRECTED
        assert int(batch.corrected_bits[0]) == 71
        assert int(batch.data_words[0]) == 42

    def test_batch_counts_and_classes(self, code):
        codewords = code.encode_batch(np.array([1, 2, 3], dtype=np.uint64))
        codewords[1, 5] ^= 1                      # single-bit: corrected
        codewords[2, 5] ^= 1
        codewords[2, 6] ^= 1                      # double-bit: uncorrectable
        batch = code.decode_batch(codewords)
        counts = batch.counts()
        assert counts[ErrorClass.NO_ERROR] == 1
        assert counts[ErrorClass.CORRECTED] == 1
        assert counts[ErrorClass.UNCORRECTABLE] == 1
        assert counts[ErrorClass.SILENT] == 0
        classes = batch.error_classes()
        assert classes[0] is ErrorClass.NO_ERROR
        assert classes[2] is ErrorClass.UNCORRECTABLE
        assert len(batch) == 3

    def test_batch_result_view_matches_scalar_decode(self, code):
        codeword = code.encode(99)
        codeword[3] ^= 1
        scalar = code.decode(codeword)
        view = code.decode_batch(codeword[None, :]).result(0)
        assert view.error_class is scalar.error_class
        assert view.corrected_bit == scalar.corrected_bit
        assert np.array_equal(view.data, scalar.data)

    def test_invalid_block_shape_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.decode_batch(np.zeros((4, 71), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            code.decode_batch(np.zeros(72, dtype=np.uint8))

    def test_invalid_batch_data_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.encode_batch([1, 2 ** 64])
        with pytest.raises(ConfigurationError):
            code.encode_batch([-1])
        with pytest.raises(ConfigurationError):
            code.encode_batch(np.full((2, 64), 2, dtype=np.uint8))
