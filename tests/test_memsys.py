"""Tests for the cache, MCU and memory-hierarchy models."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.errors import ConfigurationError
from repro.memsys.access import AccessType, MemoryAccess
from repro.memsys.cache import CacheConfig, SetAssociativeCache, xgene2_l1_config
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.mcu import MemoryChannelSystem


def make_access(address, write=False, index=0, thread=0):
    return MemoryAccess(
        address=address,
        access_type=AccessType.WRITE if write else AccessType.READ,
        instruction_index=index,
        value=0,
        thread_id=thread,
    )


class TestMemoryAccess:
    def test_word_address_alignment(self):
        assert make_access(17).word_address == 16

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            make_access(-1)

    def test_read_write_flags(self):
        assert make_access(0, write=True).is_write
        assert make_access(0, write=False).is_read


class TestSetAssociativeCache:
    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, associativity=2))
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        # 2-way cache: three lines mapping to the same set evict the oldest.
        config = CacheConfig(size_bytes=2 * 64, associativity=2, line_bytes=64)
        cache = SetAssociativeCache(config)
        assert config.num_sets == 1
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)          # touch line 0 so line 1 is LRU
        cache.access(2 * 64)          # evicts line 1
        assert cache.access(0 * 64) is True
        assert cache.access(1 * 64) is False

    def test_dirty_eviction_counts_writeback(self):
        config = CacheConfig(size_bytes=2 * 64, associativity=2, line_bytes=64)
        cache = SetAssociativeCache(config)
        cache.access(0, is_write=True)
        cache.access(64)
        cache.access(128)             # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_flush_reports_dirty_lines(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, associativity=4))
        cache.access(0, is_write=True)
        cache.access(64, is_write=False)
        assert cache.flush() == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, associativity=3, line_bytes=64)

    def test_xgene2_config_sizes(self):
        config = xgene2_l1_config()
        assert config.size_bytes == 32 * 1024
        assert config.num_sets == 64

    def test_miss_rate_property(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, associativity=2))
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestMemoryChannelSystem:
    def test_accesses_are_spread_over_mcus(self):
        channels = MemoryChannelSystem(DramGeometry())
        for i in range(64):
            channels.access(i * 256, is_write=(i % 2 == 0))
        per_mcu = channels.per_mcu_commands()
        assert len(per_mcu) == 4
        assert all(stats.total_commands > 0 for stats in per_mcu.values())
        assert channels.total_commands() == 64

    def test_rank_accesses_accounted(self):
        channels = MemoryChannelSystem(DramGeometry())
        for i in range(128):
            channels.access(i * 256, is_write=False)
        assert sum(channels.rank_accesses.values()) == 128
        assert all(count > 0 for count in channels.rank_accesses.values())

    def test_reset_clears_counters(self):
        channels = MemoryChannelSystem(DramGeometry())
        channels.access(0, is_write=True)
        channels.reset()
        assert channels.total_commands() == 0


class TestMemoryHierarchy:
    def _trace(self, num_lines, repeats=2, stride=64):
        trace = []
        index = 0
        for _ in range(repeats):
            for line in range(num_lines):
                index += 1
                trace.append(make_access(line * stride, write=(line % 4 == 0), index=index))
        return trace

    def test_small_working_set_hits_in_l1(self):
        hierarchy = MemoryHierarchy()
        stats = hierarchy.simulate(self._trace(num_lines=16, repeats=10))
        assert stats.l1_miss_rate < 0.2
        assert stats.dram_accesses <= 16 * 2

    def test_streaming_working_set_reaches_dram(self):
        hierarchy = MemoryHierarchy()
        # 64 MiB of distinct lines cannot fit in 32 KB + 256 KB of cache.
        stats = hierarchy.simulate(self._trace(num_lines=4096, repeats=2, stride=16384))
        assert stats.dram_reads > 0
        assert stats.l2_miss_rate > 0.5

    def test_per_thread_l1_caches(self):
        hierarchy = MemoryHierarchy(num_threads=2)
        trace = [make_access(0, index=1, thread=0), make_access(0, index=2, thread=1)]
        stats = hierarchy.simulate(trace)
        # Each thread has its own L1, so the second access misses L1 but hits L2.
        assert stats.l1_misses == 2
        assert stats.l2_misses == 1

    def test_totals_are_consistent(self):
        hierarchy = MemoryHierarchy()
        trace = self._trace(num_lines=64, repeats=3)
        stats = hierarchy.simulate(trace)
        assert stats.total_accesses == len(trace)
        assert stats.read_accesses + stats.write_accesses == stats.total_accesses
        assert stats.dram_accesses == stats.dram_reads + stats.dram_writes
        assert sum(stats.per_rank_accesses.values()) == stats.dram_accesses

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(num_threads=0)
