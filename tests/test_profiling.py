"""Tests for the profiling substrate: reuse time, entropy, counters, profiler."""

import math

import pytest

from repro.errors import DataError
from repro.memsys.access import AccessType, MemoryAccess
from repro.profiling.counters import (
    CORE_COUNTER_FEATURES,
    NOVEL_FEATURES,
    TOTAL_FEATURE_COUNT,
    all_feature_names,
    synthesize_tail_counters,
    tail_feature_names,
)
from repro.profiling.entropy import DataEntropyEstimator, shannon_entropy_bits
from repro.profiling.profiler import WorkloadProfiler, profile_workload
from repro.profiling.reuse import ReuseTimeEstimator, reuse_statistics
from repro.workloads.base import float_to_word
from repro.workloads.compute import BackpropWorkload


def access(address, index, write=False, value=0):
    return MemoryAccess(
        address=address,
        access_type=AccessType.WRITE if write else AccessType.READ,
        instruction_index=index,
        value=value,
    )


class TestReuseStatistics:
    def test_counts_unique_words_and_distances(self):
        trace = [access(0, 1), access(64, 5), access(0, 11), access(64, 20)]
        stats = reuse_statistics(trace)
        assert stats.unique_words == 2
        assert stats.total_accesses == 4
        assert stats.reused_access_fraction == pytest.approx(0.5)
        assert stats.mean_reuse_distance_instructions == pytest.approx((10 + 15) / 2)

    def test_no_reuse_falls_back_to_trace_length(self):
        trace = [access(i * 64, i + 1) for i in range(10)]
        stats = reuse_statistics(trace)
        assert stats.reused_access_fraction == 0.0
        assert stats.mean_reuse_distance_instructions == pytest.approx(10.0)

    def test_word_granularity(self):
        # Two addresses in the same 64-bit word count as a reuse.
        stats = reuse_statistics([access(0, 1), access(4, 9)])
        assert stats.unique_words == 1
        assert stats.reused_access_fraction == pytest.approx(0.5)

    def test_empty_trace_rejected(self):
        with pytest.raises(DataError):
            reuse_statistics([])


class TestReuseTimeEstimator:
    def test_eq4_scaling(self):
        # Treuse = CPI * D_reuse / f, scaled by the footprint ratio.
        stats = reuse_statistics([access(0, 1), access(0, 1001)])
        estimator = ReuseTimeEstimator(cpu_frequency_hz=1e9)
        treuse = estimator.estimate(stats, cycles_per_instruction=2.0, footprint_scale=10.0)
        assert treuse == pytest.approx(1000 * 2.0 / 1e9 * 10.0)

    def test_parallel_lower_cpi_shortens_reuse_time(self):
        stats = reuse_statistics([access(0, 1), access(0, 1001)])
        estimator = ReuseTimeEstimator()
        serial = estimator.estimate(stats, cycles_per_instruction=1.0)
        parallel = estimator.estimate(stats, cycles_per_instruction=0.2)
        assert parallel < serial

    def test_invalid_arguments_rejected(self):
        stats = reuse_statistics([access(0, 1)])
        estimator = ReuseTimeEstimator()
        with pytest.raises(DataError):
            estimator.estimate(stats, cycles_per_instruction=0.0)
        with pytest.raises(DataError):
            estimator.estimate(stats, cycles_per_instruction=1.0, footprint_scale=0.0)


class TestDataEntropy:
    def test_shannon_entropy_uniform(self):
        assert shannon_entropy_bits([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_shannon_entropy_single_value(self):
        assert shannon_entropy_bits([10]) == pytest.approx(0.0)

    def test_solid_pattern_has_zero_entropy(self):
        trace = [access(i * 8, i + 1, write=True, value=float_to_word(0.0)) for i in range(64)]
        assert DataEntropyEstimator().estimate(trace) == pytest.approx(0.0)

    def test_distinct_values_have_high_entropy(self):
        trace = [
            access(i * 8, i + 1, write=True, value=float_to_word(float(i) + 0.5))
            for i in range(256)
        ]
        entropy = DataEntropyEstimator().estimate(trace)
        assert entropy > 6.0

    def test_reads_are_ignored(self):
        trace = [access(0, 1, write=False, value=12345)]
        assert DataEntropyEstimator().estimate(trace) == 0.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(DataError):
            DataEntropyEstimator(value_bits=0)
        with pytest.raises(DataError):
            DataEntropyEstimator(max_samples=0)


class TestCounterCatalogue:
    def test_total_is_249_features(self):
        names = all_feature_names()
        assert len(names) == TOTAL_FEATURE_COUNT == 249
        assert len(set(names)) == 249

    def test_novel_features_first(self):
        assert all_feature_names()[:2] == NOVEL_FEATURES == ["treuse", "hdp"]

    def test_tail_counters_are_deterministic_per_workload(self):
        core = {name: 1.0 for name in CORE_COUNTER_FEATURES}
        a = synthesize_tail_counters("backprop", core)
        b = synthesize_tail_counters("backprop", core)
        c = synthesize_tail_counters("memcached", core)
        assert a == b
        assert a != c
        assert set(a) == set(tail_feature_names())

    def test_tail_counters_require_workload_name(self):
        with pytest.raises(DataError):
            synthesize_tail_counters("", {})


class TestWorkloadProfiler:
    def test_profile_contains_all_features(self, backprop_profile):
        assert backprop_profile.num_features == 249
        assert set(backprop_profile.features) == set(all_feature_names())

    def test_rates_are_finite_and_consistent(self, backprop_profile):
        profile = backprop_profile
        assert all(math.isfinite(v) for v in profile.features.values())
        assert 0.0 < profile.feature("ipc") <= 8.0
        assert 0.0 <= profile.feature("wait_cycles") <= 1.0
        assert profile.feature("l1_miss_rate") <= 1.0
        assert profile.feature("memory_accesses_per_cycle") <= \
            profile.feature("l1_accesses_per_cycle")

    def test_parallel_profile_differs_from_serial(self, small_profiles):
        serial = small_profiles["backprop"]
        parallel = small_profiles["backprop(par)"]
        assert parallel.feature("threads") == 8.0
        assert parallel.feature("ipc") > serial.feature("ipc")
        # The parallel version implicitly refreshes memory more often.
        assert parallel.feature("treuse") < serial.feature("treuse")

    def test_memcached_has_lowest_reuse_time(self, small_profiles):
        treuse = {name: p.feature("treuse") for name, p in small_profiles.items()
                  if name != "data-pattern-random"}
        assert min(treuse, key=treuse.get) == "memcached"

    def test_data_pattern_micro_has_long_reuse_and_low_rate(self, small_profiles):
        micro = small_profiles["data-pattern-random"]
        others = [p for n, p in small_profiles.items() if n != "data-pattern-random"]
        assert micro.feature("treuse") > max(p.feature("treuse") for p in others)
        assert micro.feature("memory_accesses_per_cycle") < \
            max(p.feature("memory_accesses_per_cycle") for p in others)

    def test_behavior_conversion(self, backprop_profile):
        behavior = backprop_profile.behavior()
        assert behavior.footprint_words == 8 * 1024 ** 3 // 8
        assert behavior.reuse_time_s == pytest.approx(backprop_profile.feature("treuse"))

    def test_profile_cache_returns_same_object(self):
        assert profile_workload("backprop") is profile_workload("backprop")

    def test_custom_profiler_bypasses_cache(self):
        profiler = WorkloadProfiler()
        profile = profiler.profile(BackpropWorkload(threads=1))
        assert profile.workload == "backprop"
        assert profile is not profile_workload("backprop")

    def test_feature_vector_ordering(self, backprop_profile):
        vector = backprop_profile.feature_vector(["treuse", "hdp"])
        assert vector[0] == pytest.approx(backprop_profile.feature("treuse"))
        assert vector[1] == pytest.approx(backprop_profile.feature("hdp"))

    def test_unknown_feature_rejected(self, backprop_profile):
        with pytest.raises(DataError):
            backprop_profile.feature("bogus_counter")
