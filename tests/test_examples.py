"""Smoke tests: every example script must run end to end, in-process.

Each example is imported from ``examples/`` and its module-level size
knobs (workload tuples) are monkeypatched down so the whole set stays in
tier-1 time budgets.  The scripts print their findings; here we only
assert they complete and produce output.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: example module -> attributes shrunk before main() runs
REDUCTIONS = {
    "quickstart": {
        "WORKLOADS": ("backprop", "kmeans", "memcached", "bfs"),
    },
    "refresh_energy_tradeoff": {
        "WORKLOADS": ("memcached", "backprop", "kmeans", "bfs"),
    },
    "compiler_optimization_study": {
        "campaign_workload_names": lambda: ("backprop", "kmeans", "bfs"),
    },
    "cell_array_ecc_demo": {},   # already sized for a demo (4096 words)
    "prediction_service_demo": {
        "WORKLOADS": ("backprop", "kmeans", "memcached", "bfs"),
        "TREFPS": (1.173, 2.283),
        "TEMPERATURES": (50.0, 60.0),
    },
}


def _load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.mark.parametrize("name", sorted(REDUCTIONS))
def test_example_runs(name, capsys, monkeypatch):
    module = _load_example(name)
    for attribute, value in REDUCTIONS[name].items():
        monkeypatch.setattr(module, attribute, value)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"
    assert "Traceback" not in out
