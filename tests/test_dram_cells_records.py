"""Tests for the explicit cell-array simulator and the ECC error log."""

import pytest

from repro.dram.calibration import (
    DramCalibration,
    RetentionCalibration,
    UeCalibration,
    WorkloadEffectCalibration,
)
from repro.dram.cells import CellArrayConfig, CellArraySimulator
from repro.dram.ecc import ErrorClass
from repro.dram.geometry import CellLocation, DramGeometry, RankLocation, small_geometry
from repro.dram.records import ErrorLog, ErrorRecord
from repro.errors import ConfigurationError, SimulationError


def weak_calibration() -> DramCalibration:
    """A deliberately leaky cell population so tiny arrays show errors."""
    return DramCalibration(
        retention=RetentionCalibration(log_median_retention_50c=4.0, log_sigma=1.2),
        workload=WorkloadEffectCalibration(),
        ue=UeCalibration(),
    )


def tiny_simulator(trefp_s=2.283, temperature_c=70.0, seed=3) -> CellArraySimulator:
    config = CellArrayConfig(
        geometry=small_geometry(),
        trefp_s=trefp_s,
        temperature_c=temperature_c,
        calibration=weak_calibration(),
        seed=seed,
    )
    return CellArraySimulator(config)


class TestCellArraySimulator:
    def test_write_then_immediate_read_is_clean(self):
        sim = tiny_simulator()
        location = sim.geometry.cell_from_word_index(0)
        sim.write(location, 0xCAFEBABE)
        result = sim.read(location)
        assert result.error_class is ErrorClass.NO_ERROR

    def test_reading_unwritten_word_raises(self):
        sim = tiny_simulator()
        with pytest.raises(SimulationError):
            sim.read(sim.geometry.cell_from_word_index(5))

    def test_long_idle_under_relaxed_refresh_produces_errors(self):
        sim = tiny_simulator(trefp_s=2.283, temperature_c=70.0)
        locations = sim.fill([0xFFFFFFFFFFFFFFFF] * 2000)
        sim.idle(600.0)
        counts = sim.sweep_read(locations)
        total_errors = sum(counts.values())
        assert total_errors > 0
        assert len(sim.error_log) == total_errors

    def test_nominal_refresh_is_clean(self):
        # With the realistic (default) retention population, the nominal 64 ms
        # refresh period leaves no cell anywhere near its retention limit.
        config = CellArrayConfig(geometry=small_geometry(), trefp_s=0.064,
                                 temperature_c=50.0, seed=3)
        sim = CellArraySimulator(config)
        locations = sim.fill([0xFFFFFFFFFFFFFFFF] * 1500)
        sim.idle(600.0)
        counts = sim.sweep_read(locations)
        assert sum(counts.values()) == 0

    def test_longer_refresh_period_produces_more_errors(self):
        short = tiny_simulator(trefp_s=0.618, temperature_c=50.0, seed=9)
        long = tiny_simulator(trefp_s=2.283, temperature_c=50.0, seed=9)
        pattern = [0xAAAAAAAAAAAAAAAA] * 2500
        for sim in (short, long):
            locations = sim.fill(list(pattern))
            sim.idle(600.0)
            sim.sweep_read(locations)
        assert len(long.error_log) > 2 * len(short.error_log)

    def test_all_zero_data_hides_decay_to_zero(self):
        # Cells whose discharge polarity matches the stored bit cannot flip:
        # a solid pattern therefore shows fewer errors than a dense pattern.
        solid = tiny_simulator(temperature_c=50.0, seed=21)
        dense = tiny_simulator(temperature_c=50.0, seed=21)
        locations = solid.fill([0x0] * 2500)
        solid.idle(600.0)
        solid.sweep_read(locations)
        locations = dense.fill([0xFFFFFFFFFFFFFFFF] * 2500)
        dense.idle(600.0)
        dense.sweep_read(locations)
        assert len(solid.error_log) < len(dense.error_log)

    def test_rewriting_clears_history(self):
        sim = tiny_simulator()
        location = sim.geometry.cell_from_word_index(3)
        sim.write(location, 123)
        sim.idle(3000.0)
        sim.write(location, 456)   # rewrite recharges everything
        result = sim.read(location)
        assert result.error_class is ErrorClass.NO_ERROR
        assert int(sum(int(b) << i for i, b in enumerate(result.data))) == 456

    def test_measured_wer_counts_unique_words(self):
        sim = tiny_simulator()
        locations = sim.fill([0xFFFFFFFFFFFFFFFF] * 2000)
        sim.idle(600.0)
        sim.sweep_read(locations)
        sim.sweep_read(locations)   # re-reading must not double count
        unique = len(sim.error_log.unique_word_locations(ErrorClass.CORRECTED))
        assert sim.measured_wer(2000) == pytest.approx(unique / 2000)

    def test_oversized_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CellArraySimulator(CellArrayConfig(geometry=DramGeometry()))

    def test_time_cannot_go_backwards(self):
        sim = tiny_simulator()
        with pytest.raises(SimulationError):
            sim.advance_time(-1.0)


class TestBatchCellOps:
    def test_batch_and_scalar_loops_agree_without_interference(self):
        """With row hammer off, a burst is exactly a loop of scalar accesses."""
        def build():
            config = CellArrayConfig(
                geometry=small_geometry(), trefp_s=2.283, temperature_c=70.0,
                interference_strength=0.0, calibration=weak_calibration(), seed=13,
            )
            return CellArraySimulator(config)

        values = [0xFFFFFFFFFFFFFFFF ^ i for i in range(600)]
        batch_sim, scalar_sim = build(), build()

        locations = batch_sim.fill(list(values))
        batch_sim.idle(600.0)
        sweep = batch_sim.read_batch(locations, workload="batch")

        for i, value in enumerate(values):
            scalar_sim.write(scalar_sim.geometry.cell_from_word_index(i), value)
        scalar_sim.idle(600.0)
        scalar_results = [
            scalar_sim.read(location, workload="scalar") for location in locations
        ]

        assert sum(sweep.counts().values()) == 600
        for i, scalar in enumerate(scalar_results):
            batch_word = sweep.decode.result(i)
            assert batch_word.error_class is scalar.error_class, f"word {i}"
            assert (batch_word.data == scalar.data).all(), f"word {i}"
        assert len(batch_sim.error_log) == len(scalar_sim.error_log)

    def test_duplicate_locations_rejected(self):
        sim = tiny_simulator()
        location = sim.geometry.cell_from_word_index(0)
        with pytest.raises(ConfigurationError):
            sim.write_batch([location, location], [1, 2])
        sim.write(location, 1)
        with pytest.raises(ConfigurationError):
            sim.read_batch([location, location])

    def test_batch_read_of_unwritten_word_raises(self):
        sim = tiny_simulator()
        written = sim.geometry.cell_from_word_index(0)
        unwritten = sim.geometry.cell_from_word_index(1)
        sim.write(written, 7)
        with pytest.raises(SimulationError):
            sim.read_batch([written, unwritten])

    def test_write_batch_length_mismatch_rejected(self):
        sim = tiny_simulator()
        with pytest.raises(ConfigurationError):
            sim.write_batch([sim.geometry.cell_from_word_index(0)], [1, 2])

    def test_write_batch_rejects_out_of_range_data(self):
        sim = tiny_simulator()
        location = sim.geometry.cell_from_word_index(0)
        with pytest.raises(ConfigurationError):
            sim.write_batch([location], [2 ** 64])
        with pytest.raises(ConfigurationError):
            sim.write(location, -1)
        with pytest.raises(ConfigurationError):
            sim.write(location, 1.5)

    def test_batch_read_result_reports_error_locations(self):
        sim = tiny_simulator()
        locations = sim.fill([0xFFFFFFFFFFFFFFFF] * 1000)
        sim.idle(600.0)
        sweep = sim.read_batch(locations, workload="wl")
        errors = sweep.error_locations()
        assert len(errors) == sum(
            count for cls, count in sweep.counts().items() if cls.value != "none"
        )
        assert len(errors) == len(sim.error_log)
        logged = {record.location for record in sim.error_log}
        assert set(errors) == logged


class TestErrorLog:
    def _record(self, dimm=0, rank=0, row=0, column=0, cls=ErrorClass.CORRECTED, t=1.0):
        return ErrorRecord(cls, CellLocation(dimm, rank, 0, row, column), t, "wl")

    def test_unique_word_locations_deduplicates(self):
        log = ErrorLog()
        log.append(self._record(row=1, t=1.0))
        log.append(self._record(row=1, t=2.0))
        log.append(self._record(row=2, t=3.0))
        assert len(log.unique_word_locations(ErrorClass.CORRECTED)) == 2

    def test_unique_words_by_rank(self):
        log = ErrorLog()
        log.append(self._record(dimm=0, rank=0, row=1))
        log.append(self._record(dimm=2, rank=1, row=1))
        log.append(self._record(dimm=2, rank=1, row=2))
        by_rank = log.unique_words_by_rank()
        assert by_rank[RankLocation(0, 0)] == 1
        assert by_rank[RankLocation(2, 1)] == 2

    def test_has_uncorrectable_and_first(self):
        log = ErrorLog()
        assert not log.has_uncorrectable()
        log.append(self._record(cls=ErrorClass.UNCORRECTABLE, t=9.0))
        log.append(self._record(cls=ErrorClass.UNCORRECTABLE, t=4.0, row=7))
        assert log.has_uncorrectable()
        assert log.first_uncorrectable().timestamp_s == pytest.approx(4.0)

    def test_timeline_is_cumulative_and_monotone(self):
        log = ErrorLog()
        for i, t in enumerate([100.0, 700.0, 1300.0, 1400.0]):
            log.append(self._record(row=i, t=t))
        timeline = log.timeline(bucket_s=600.0)
        counts = [count for _t, count in timeline]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_no_error_record_for_clean_reads(self):
        with pytest.raises(ConfigurationError):
            ErrorRecord(ErrorClass.NO_ERROR, CellLocation(0, 0, 0, 0, 0), 0.0)

    def test_counts_by_rank(self):
        log = ErrorLog()
        log.append(self._record(dimm=1, rank=0))
        log.append(self._record(dimm=1, rank=0, row=3))
        counts = log.counts_by_rank(ErrorClass.CORRECTED)
        assert counts[RankLocation(1, 0)] == 2

    def test_append_batch_matches_per_record_appends(self):
        batched, scalar = ErrorLog(), ErrorLog()
        classes = [ErrorClass.CORRECTED, ErrorClass.UNCORRECTABLE, ErrorClass.CORRECTED]
        locations = [CellLocation(0, 0, 0, i, 0) for i in range(3)]
        batched.append_batch(classes, locations, timestamp_s=5.0, workload="wl")
        for cls, loc in zip(classes, locations):
            scalar.append(ErrorRecord(cls, loc, 5.0, "wl"))
        assert batched.records() == scalar.records()
        assert list(batched) == list(scalar)
        assert batched.counts_by_rank(ErrorClass.CORRECTED) == (
            scalar.counts_by_rank(ErrorClass.CORRECTED)
        )
        assert batched.first_uncorrectable() == scalar.first_uncorrectable()

    def test_append_batch_validates_like_error_record(self):
        log = ErrorLog()
        location = CellLocation(0, 0, 0, 0, 0)
        with pytest.raises(ConfigurationError):
            log.append_batch([ErrorClass.NO_ERROR], [location], timestamp_s=1.0)
        with pytest.raises(ConfigurationError):
            log.append_batch([ErrorClass.CORRECTED], [location], timestamp_s=-1.0)
        with pytest.raises(ConfigurationError):
            log.append_batch([ErrorClass.CORRECTED], [location, location], 1.0)
        assert len(log) == 0

    def test_count_queries_stay_correct_as_log_grows(self):
        # The class column is queried through a cached numpy code array;
        # appends and clear must invalidate it (length heuristic).
        log = ErrorLog()
        assert log.count(ErrorClass.CORRECTED) == 0
        log.append(self._record(row=0))
        assert log.count(ErrorClass.CORRECTED) == 1
        log.append_batch(
            [ErrorClass.CORRECTED, ErrorClass.UNCORRECTABLE],
            [CellLocation(0, 0, 0, 1, 0), CellLocation(0, 0, 0, 2, 0)],
            timestamp_s=2.0, workload="wl",
        )
        assert log.count(ErrorClass.CORRECTED) == 2
        assert log.count(ErrorClass.UNCORRECTABLE) == 1
        assert log.count() == 3
        assert log.has_uncorrectable()
        log.clear()
        assert log.count(ErrorClass.CORRECTED) == 0
        assert not log.has_uncorrectable()

    def test_clear_then_refill_to_same_length_rebuilds_code_cache(self):
        # Regression: clear() must drop the cached code array — a refill
        # to the old length would otherwise satisfy the length heuristic
        # and serve the pre-clear classes.
        log = ErrorLog()
        log.append(self._record(cls=ErrorClass.UNCORRECTABLE))
        assert log.has_uncorrectable()            # builds the cache (len 1)
        log.clear()
        log.append(self._record(cls=ErrorClass.CORRECTED))
        assert not log.has_uncorrectable()
        assert log.count(ErrorClass.CORRECTED) == 1

    def test_interleaved_appends_and_queries_stay_consistent(self):
        log = ErrorLog()
        log.append(self._record(row=0, t=1.0))
        assert len(log.records()) == 1        # materialises the cache
        log.append(self._record(row=1, t=2.0))
        log.append_batch(
            [ErrorClass.CORRECTED], [CellLocation(0, 0, 0, 2, 0)], timestamp_s=3.0,
            workload="wl",
        )
        assert len(log.records()) == 3
        assert log.count(ErrorClass.CORRECTED) == 3
        log.clear()
        assert len(log) == 0 and log.records() == []


class TestSaturatedSweepLogging:
    """The columnar batch logging path under dense (near-saturated) errors."""

    def _saturated_simulator(self, seed=3, interference_strength=2e-4):
        # An extremely leaky population: after a long idle at 70 C almost
        # every word of a dense pattern errors, so error logging — not
        # decoding — dominates the sweep.
        config = CellArrayConfig(
            geometry=small_geometry(), trefp_s=2.283, temperature_c=70.0,
            interference_strength=interference_strength,
            calibration=DramCalibration(
                retention=RetentionCalibration(log_median_retention_50c=2.0,
                                               log_sigma=1.0)
            ),
            seed=seed,
        )
        return CellArraySimulator(config)

    def test_dense_error_sweep_logs_every_event(self):
        sim = self._saturated_simulator()
        locations = sim.fill([0xFFFFFFFFFFFFFFFF] * 4000)
        sim.idle(3600.0)
        sweep = sim.read_batch(locations, workload="saturated")
        errors = sum(
            count for cls, count in sweep.counts().items()
            if cls is not ErrorClass.NO_ERROR
        )
        # Saturation: the vast majority of words must have errored.
        assert errors > 3000
        assert len(sim.error_log) == errors
        assert set(sweep.error_locations()) == {
            record.location for record in sim.error_log
        }
        # Per-class tallies of the log match the decode classification.
        for cls in (ErrorClass.CORRECTED, ErrorClass.UNCORRECTABLE, ErrorClass.SILENT):
            assert sim.error_log.count(cls) == sweep.counts()[cls]
        assert all(record.workload == "saturated" for record in sim.error_log)

    def test_dense_sweep_matches_scalar_logging_exactly(self):
        # Row hammer off: a burst is then exactly a loop of scalar reads, so
        # the batch-logged events must match the per-word path one to one.
        batch_sim = self._saturated_simulator(seed=17, interference_strength=0.0)
        scalar_sim = self._saturated_simulator(seed=17, interference_strength=0.0)
        values = [0xFFFFFFFFFFFFFFFF] * 800
        locations = batch_sim.fill(list(values))
        batch_sim.idle(3600.0)
        batch_sim.read_batch(locations, workload="wl")

        scalar_sim.fill(list(values))
        scalar_sim.idle(3600.0)
        for location in locations:
            scalar_sim.read(location, workload="wl")

        batch_records = [(r.location, r.error_class) for r in batch_sim.error_log]
        scalar_records = [(r.location, r.error_class) for r in scalar_sim.error_log]
        assert batch_records == scalar_records
        assert len(batch_sim.error_log) > 500    # the sweep really is dense
