"""Telemetry must observe, never perturb.

Two contracts pinned here:

* results are bit-identical with telemetry enabled, disabled, and across
  sequential vs parallel execution;
* a parallel campaign merges worker snapshots into one run report whose
  per-workload span counts equal the sequential run's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign
from repro.core.dataset import build_wer_dataset
from repro.profiling.profiler import profile_workload
from repro.telemetry import RunReport, telemetry_session

WORKLOADS = ("backprop", "kmeans", "bfs", "memcached")


def _make_campaign():
    config = CampaignConfig(
        workloads=WORKLOADS,
        trefp_values_s=(1.173, 2.283),
        temperatures_c=(50.0,),
        ue_trefp_values_s=(2.283,),
        ue_repetitions=3,
    )
    return CharacterizationCampaign(config=config, seed=11)


def _run(parallel=None, telemetry_on=False):
    campaign = _make_campaign()
    if telemetry_on:
        with telemetry_session() as telemetry:
            result = campaign.run(include_ue_study=True, parallel=parallel)
        return result, telemetry.snapshot()
    result = campaign.run(include_ue_study=True, parallel=parallel)
    return result, None


@pytest.fixture(scope="module")
def sequential_off():
    return _run()[0]


@pytest.fixture(scope="module")
def sequential_on():
    return _run(telemetry_on=True)


def _assert_results_equal(a, b):
    assert np.array_equal(a.wer_columns().rows, b.wer_columns().rows)
    assert a.pue_summaries == b.pue_summaries


def test_enabled_vs_disabled_bit_identical(sequential_off, sequential_on):
    _assert_results_equal(sequential_off, sequential_on[0])


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_bit_identical_and_report_matches(
    workers, sequential_off, sequential_on
):
    result, snapshot = _run(parallel=workers, telemetry_on=True)
    _assert_results_equal(sequential_off, result)

    _, seq_snapshot = sequential_on
    seq_counts = seq_snapshot.span_counts()
    par_counts = snapshot.span_counts()
    for sweep in ("campaign.wer_sweep", "campaign.ue_sweep"):
        for workload in WORKLOADS:
            prefix = f"campaign.run/{sweep}/workload:{workload}"
            seq_workload = {
                path: count for path, count in seq_counts.items()
                if path.startswith(prefix)
            }
            par_workload = {
                path: count for path, count in par_counts.items()
                if path.startswith(prefix)
            }
            assert seq_workload, f"missing spans under {prefix}"
            assert par_workload == seq_workload

    # Work counters describe the same computation either way.
    assert snapshot.counters == {
        name: value for name, value in seq_snapshot.counters.items()
    }


def test_parallel_report_renders_one_merged_tree():
    _, snapshot = _run(parallel=2, telemetry_on=True)
    assert [span.name for span in snapshot.spans] == ["campaign.run"]
    report = RunReport(snapshot=snapshot, environment={})
    text = report.render()
    for workload in WORKLOADS:
        assert f"workload:{workload}" in text


def test_dataset_build_unaffected_by_telemetry(sequential_off):
    profiles = {name: profile_workload(name) for name in WORKLOADS}
    baseline = build_wer_dataset(sequential_off, profiles)
    with telemetry_session() as telemetry:
        instrumented = build_wer_dataset(sequential_off, profiles)
    assert np.array_equal(
        baseline.columns().targets, instrumented.columns().targets
    )
    assert np.array_equal(
        baseline.columns().operating_columns,
        instrumented.columns().operating_columns,
    )
    snapshot = telemetry.snapshot()
    assert snapshot.counters["dataset.wer_rows"] == len(baseline)
    assert snapshot.find_span("dataset.build_wer").count == 1
