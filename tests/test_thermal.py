"""Tests for the thermal testbed: PID controller, plant and 4-channel testbed."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.pid import PidController, PidGains
from repro.thermal.testbed import HeaterPlant, ThermalTestbed, Thermocouple


class TestPidController:
    def test_output_is_clamped(self):
        controller = PidController(PidGains(kp=100.0), setpoint=70.0)
        assert controller.update(20.0, dt_s=1.0) == pytest.approx(100.0)
        assert controller.update(200.0, dt_s=1.0) == pytest.approx(0.0)

    def test_zero_error_with_no_integral_gives_zero_output(self):
        controller = PidController(PidGains(kp=2.0, ki=0.0, kd=0.0), setpoint=50.0)
        assert controller.update(50.0, dt_s=1.0) == pytest.approx(0.0)

    def test_integral_accumulates(self):
        controller = PidController(PidGains(kp=0.0, ki=1.0, kd=0.0), setpoint=51.0)
        first = controller.update(50.0, dt_s=1.0)
        second = controller.update(50.0, dt_s=1.0)
        assert second > first

    def test_reset_clears_state(self):
        controller = PidController(PidGains(kp=0.0, ki=1.0, kd=0.0), setpoint=51.0)
        controller.update(50.0, dt_s=1.0)
        controller.reset()
        assert controller.update(50.0, dt_s=1.0) == pytest.approx(1.0)

    def test_invalid_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            PidController().update(50.0, dt_s=0.0)

    def test_negative_gains_rejected(self):
        with pytest.raises(ConfigurationError):
            PidGains(kp=-1.0)

    def test_invalid_output_range_rejected(self):
        with pytest.raises(ConfigurationError):
            PidController(output_min=10.0, output_max=5.0)


class TestHeaterPlant:
    def test_full_power_heats_towards_maximum(self):
        plant = HeaterPlant(ambient_c=45.0, max_rise_c=40.0, temperature_c=45.0)
        for _ in range(200):
            plant.step(100.0, dt_s=5.0)
        assert plant.temperature_c == pytest.approx(85.0, abs=0.5)

    def test_no_power_relaxes_to_ambient(self):
        plant = HeaterPlant(ambient_c=45.0, temperature_c=70.0)
        for _ in range(200):
            plant.step(0.0, dt_s=5.0)
        assert plant.temperature_c == pytest.approx(45.0, abs=0.5)

    def test_invalid_power_rejected(self):
        with pytest.raises(ConfigurationError):
            HeaterPlant().step(150.0, dt_s=1.0)

    def test_thermocouple_offset(self):
        sensor = Thermocouple(offset_c=0.5)
        assert sensor.read(50.0) == pytest.approx(50.5)


class TestThermalTestbed:
    @pytest.mark.parametrize("target", [50.0, 60.0, 70.0])
    def test_testbed_reaches_campaign_setpoints(self, target):
        testbed = ThermalTestbed(num_dimms=4)
        testbed.set_target(target)
        testbed.settle(duration_s=2400.0, dt_s=5.0)
        assert testbed.max_temperature_error() < 1.0

    def test_channels_are_independent(self):
        testbed = ThermalTestbed(num_dimms=2)
        testbed.channels[0].set_target(50.0)
        testbed.channels[1].set_target(70.0)
        for _ in range(600):
            for channel in testbed.channels:
                channel.step(dt_s=5.0)
        temps = testbed.temperatures()
        assert temps["DIMM0"] == pytest.approx(50.0, abs=1.5)
        assert temps["DIMM1"] == pytest.approx(70.0, abs=1.5)

    def test_invalid_dimm_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalTestbed(num_dimms=0)

    def test_settle_rejects_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            ThermalTestbed().settle(duration_s=0.0)
