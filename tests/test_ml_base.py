"""Tests for the estimator base classes and validation helpers."""

import numpy as np
import pytest

from repro.errors import DataError, NotFittedError
from repro.ml.base import (
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    validate_fit_args,
)
from repro.ml.knn import KNeighborsRegressor


class TestArrayValidation:
    def test_as_2d_array_accepts_lists(self):
        arr = as_2d_array([[1.0, 2.0], [3.0, 4.0]])
        assert arr.shape == (2, 2)

    def test_as_2d_array_promotes_1d(self):
        arr = as_2d_array([1.0, 2.0, 3.0])
        assert arr.shape == (1, 3)

    def test_as_2d_array_rejects_3d(self):
        with pytest.raises(DataError):
            as_2d_array(np.zeros((2, 2, 2)))

    def test_as_2d_array_rejects_empty(self):
        with pytest.raises(DataError):
            as_2d_array(np.zeros((0, 3)))

    def test_as_2d_array_rejects_nan(self):
        with pytest.raises(DataError):
            as_2d_array([[1.0, float("nan")]])

    def test_as_1d_array_rejects_inf(self):
        with pytest.raises(DataError):
            as_1d_array([1.0, float("inf")])

    def test_check_consistent_length(self):
        with pytest.raises(DataError):
            check_consistent_length(np.zeros((3, 2)), np.zeros(4))

    def test_validate_fit_args_returns_pair(self):
        X, y = validate_fit_args([[1, 2], [3, 4]], [0.5, 1.5])
        assert X.shape == (2, 2)
        assert y.shape == (2,)


class TestEstimatorProtocol:
    def test_get_params_returns_constructor_args(self):
        model = KNeighborsRegressor(n_neighbors=7, weights="uniform")
        params = model.get_params()
        assert params["n_neighbors"] == 7
        assert params["weights"] == "uniform"

    def test_set_params_round_trip(self):
        model = KNeighborsRegressor()
        model.set_params(n_neighbors=9)
        assert model.n_neighbors == 9

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor().set_params(bogus=1)

    def test_clone_is_unfitted(self):
        model = KNeighborsRegressor(n_neighbors=2)
        model.fit([[0.0], [1.0]], [0.0, 1.0])
        clone = model.clone()
        assert clone.n_neighbors == 2
        with pytest.raises(NotFittedError):
            clone.predict([[0.5]])

    def test_fitted_params_excluded_from_get_params(self):
        model = KNeighborsRegressor().fit([[0.0], [1.0]], [0.0, 1.0])
        assert "X_train_" not in model.get_params()

    def test_repr_mentions_class_and_params(self):
        text = repr(KNeighborsRegressor(n_neighbors=3))
        assert "KNeighborsRegressor" in text
        assert "n_neighbors=3" in text

    def test_score_r2_perfect(self):
        model = KNeighborsRegressor(n_neighbors=1).fit([[0.0], [1.0]], [1.0, 2.0])
        assert model.score([[0.0], [1.0]], [1.0, 2.0]) == pytest.approx(1.0)
