"""Tests for the retention physics, variation profile and statistical model."""


import numpy as np
import pytest

from repro import units
from repro.dram.geometry import DramGeometry, RankLocation
from repro.dram.operating import OperatingPoint
from repro.dram.retention import (
    bit_failure_probability,
    median_retention_s,
    retention_halving_temperature,
    sample_retention_times,
)
from repro.dram.statistical import StatisticalErrorModel, WorkloadBehavior
from repro.dram.variation import VariationProfile
from repro.errors import ConfigurationError


def behavior(accesses_per_cycle=0.01, reuse_time_s=1.0, entropy=10.0,
             footprint_words=10 ** 9, wait=0.5):
    return WorkloadBehavior(
        accesses_per_cycle=accesses_per_cycle,
        reuse_time_s=reuse_time_s,
        data_entropy_bits=entropy,
        footprint_words=footprint_words,
        wait_cycle_fraction=wait,
    )


class TestRetentionPhysics:
    def test_bit_failure_probability_increases_with_trefp(self):
        p1 = bit_failure_probability(0.618, 50.0)
        p2 = bit_failure_probability(2.283, 50.0)
        assert p2 > p1 > 0

    def test_bit_failure_probability_increases_with_temperature(self):
        assert bit_failure_probability(2.283, 70.0) > bit_failure_probability(2.283, 50.0)

    def test_vdd_effect_is_small(self):
        # The paper found 1.5 V -> 1.428 V to have a negligible effect.
        nominal = bit_failure_probability(2.283, 50.0, vdd_v=1.5)
        lowered = bit_failure_probability(2.283, 50.0, vdd_v=1.428)
        assert lowered >= nominal
        assert lowered / nominal < 1.5

    def test_nominal_refresh_is_essentially_error_free(self):
        assert bit_failure_probability(units.NOMINAL_TREFP_S, 70.0) < 1e-9

    def test_retention_halves_roughly_every_nine_degrees(self):
        assert retention_halving_temperature() == pytest.approx(8.7, abs=1.0)

    def test_median_retention_decreases_with_temperature(self):
        assert median_retention_s(70.0) < median_retention_s(50.0)

    def test_sample_retention_times_match_median(self):
        rng = np.random.default_rng(1)
        samples = sample_retention_times(200_000, 50.0, rng=rng)
        assert np.median(samples) == pytest.approx(median_retention_s(50.0), rel=0.05)

    def test_invalid_refresh_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_failure_probability(0.0, 50.0)


class TestVariationProfile:
    def test_default_profile_has_188x_spread(self):
        profile = VariationProfile.default()
        assert profile.spread() == pytest.approx(188.0, rel=0.05)

    def test_default_profile_covers_all_ranks(self):
        profile = VariationProfile.default()
        assert set(profile.ranks) == set(DramGeometry().iter_ranks())

    def test_ue_weights_normalise(self):
        weights = VariationProfile.default().normalized_ue_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        # DIMM2/rank0 dominates and DIMM3/rank1 never produces a UE (Fig. 9b).
        assert max(weights, key=weights.get) == RankLocation(2, 0)
        assert weights[RankLocation(3, 1)] == 0.0

    def test_sampled_profile_is_reproducible(self):
        a = VariationProfile.sampled(seed=3)
        b = VariationProfile.sampled(seed=3)
        assert all(
            a.wer_factor(r) == pytest.approx(b.wer_factor(r)) for r in a.geometry.iter_ranks()
        )

    def test_unknown_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            VariationProfile.default().wer_factor(RankLocation(7, 1))


class TestWorkloadBehavior:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            behavior(reuse_time_s=0.0)
        with pytest.raises(ConfigurationError):
            behavior(entropy=40.0)
        with pytest.raises(ConfigurationError):
            behavior(footprint_words=0)


class TestStatisticalErrorModel:
    @pytest.fixture(scope="class")
    def model(self):
        return StatisticalErrorModel()

    def test_wer_grows_with_trefp(self, model):
        wers = [
            model.expected_wer(OperatingPoint.relaxed(t, 50.0), behavior())
            for t in units.TREFP_SWEEP_S
        ]
        assert all(b > a for a, b in zip(wers, wers[1:]))

    def test_wer_growth_is_exponential_like(self, model):
        # Log-WER should grow roughly linearly with TREFP (Fig. 7f).
        wers = [
            model.expected_wer(OperatingPoint.relaxed(t, 50.0), behavior())
            for t in units.TREFP_SWEEP_S
        ]
        ratios = [b / a for a, b in zip(wers, wers[1:])]
        assert all(r > 2.0 for r in ratios)

    def test_wer_grows_with_temperature(self, model):
        op50 = OperatingPoint.relaxed(2.283, 50.0)
        op60 = OperatingPoint.relaxed(2.283, 60.0)
        assert model.expected_wer(op60, behavior()) > 5 * model.expected_wer(op50, behavior())

    def test_short_reuse_time_suppresses_errors(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        frequent = model.expected_wer(op, behavior(reuse_time_s=0.05))
        rare = model.expected_wer(op, behavior(reuse_time_s=50.0))
        assert frequent < rare

    def test_access_rate_increases_interference_errors(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        idle = model.expected_wer(op, behavior(accesses_per_cycle=0.0005))
        busy = model.expected_wer(op, behavior(accesses_per_cycle=0.05))
        assert busy > idle

    def test_entropy_increases_errors(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        solid = model.expected_wer(op, behavior(entropy=0.0))
        random_pattern = model.expected_wer(op, behavior(entropy=32.0))
        assert random_pattern > solid

    def test_rank_variation_follows_profile(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        strongest = RankLocation(3, 1)
        weakest = RankLocation(2, 0)
        ratio = model.expected_rank_wer(op, behavior(), weakest) / \
            model.expected_rank_wer(op, behavior(), strongest)
        assert ratio > 100

    def test_pue_zero_at_low_temperature(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        assert model.probability_of_ue(op, behavior()) < 0.01

    def test_pue_saturates_at_max_trefp_and_70c(self, model):
        op = OperatingPoint.relaxed(2.283, 70.0)
        assert model.probability_of_ue(op, behavior()) > 0.95

    def test_pue_monotone_in_trefp_at_70c(self, model):
        values = [
            model.probability_of_ue(OperatingPoint.relaxed(t, 70.0), behavior())
            for t in units.TREFP_UE_SWEEP_S
        ]
        assert values[0] < values[1] < values[2]

    def test_sampled_wer_close_to_expectation(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        rank = RankLocation(0, 0)
        rng = np.random.default_rng(0)
        samples = [
            model.sample_rank_wer(op, behavior(), rank, rng=rng) for _ in range(200)
        ]
        expected = model.expected_rank_wer(op, behavior(), rank)
        assert np.mean(samples) == pytest.approx(expected, rel=0.05)

    def test_idiosyncratic_factor_is_deterministic(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        rank = RankLocation(1, 0)
        a = model.expected_rank_wer(op, behavior(), rank, workload="backprop")
        b = model.expected_rank_wer(op, behavior(), rank, workload="backprop")
        c = model.expected_rank_wer(op, behavior(), rank, workload="memcached")
        assert a == pytest.approx(b)
        assert a != pytest.approx(c)

    def test_ue_event_sampling_respects_rank_weights(self, model):
        op = OperatingPoint.relaxed(2.283, 70.0)
        rng = np.random.default_rng(42)
        ranks = [
            model.sample_ue_event(op, behavior(), rng=rng) for _ in range(300)
        ]
        observed = [r for r in ranks if r is not None]
        assert observed, "expected UEs at the most aggressive operating point"
        # DIMM3/rank1 has zero UE weight and must never be blamed.
        assert RankLocation(3, 1) not in observed

    def test_time_series_saturates_within_two_hours(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        series = model.wer_time_series(op, behavior())
        times = sorted(series)
        final = series[times[-1]]
        ten_minutes_earlier = series[times[-2]]
        assert abs(final - ten_minutes_earlier) / final < 0.03

    def test_time_series_grid_keeps_final_sample(self, model):
        # Regression: accumulating `t += step_s` drifts for non-dyadic steps;
        # a 7200 s run sampled every 0.3 s used to lose its final sample
        # (23999 points instead of 24000).
        op = OperatingPoint.relaxed(2.283, 50.0)
        series = model.wer_time_series(op, behavior(), duration_s=7200.0, step_s=0.3)
        assert len(series) == 24000
        assert max(series) == pytest.approx(7200.0)

    def test_time_series_grid_is_exact_multiples_of_step(self, model):
        op = OperatingPoint.relaxed(2.283, 50.0)
        series = model.wer_time_series(op, behavior(), duration_s=2.1, step_s=0.7)
        assert sorted(series) == [1 * 0.7, 2 * 0.7, 3 * 0.7]
        values = [series[t] for t in sorted(series)]
        assert values == sorted(values)   # cumulative WER is monotone
