"""Equivalence and determinism tests for the campaign grid engine.

The vectorized grid path (``StatisticalErrorModel.sample_rank_wer_grid``
/ ``sample_ue_events_grid`` / ``CharacterizationExperiment.run_grid``)
must be *bit-identical* to the scalar reference path: the scalar model
methods (``sample_rank_wer`` / ``sample_ue_event``) remain independent
implementations, and ``reference_scalar_run`` (the pre-grid scalar
``run`` body, shared with the throughput benchmark) reproduces a run on
top of them.  Every comparison in this file is exact (``==`` on
floats), not approximate — that is the scalar-vs-batch API contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.characterization.campaign import (
    CampaignConfig,
    CampaignResult,
    CharacterizationCampaign,
)
from repro.characterization.experiment import CharacterizationExperiment
from repro.characterization.metrics import WerColumnStore, WerMeasurement
from repro.characterization.reference import reference_scalar_run
from repro.dram.operating import OperatingPoint
from repro.dram.statistical import StatisticalErrorModel
from repro.errors import CharacterizationError
from repro.profiling.profiler import profile_workload

#: Palettes the property tests draw grid subsets from (all within the
#: platform's configurable TREFP / temperature ranges).
TREFP_PALETTE = (0.064, 0.618, 1.173, 1.450, 1.727, 2.283)
TEMPERATURE_PALETTE = (30.0, 50.0, 60.0, 70.0)


class TestModelGridEquivalence:
    """Grid sampling on the statistical model vs the scalar methods."""

    def setup_method(self):
        self.model = StatisticalErrorModel()
        self.behavior = profile_workload("backprop").behavior()
        self.ops = [
            OperatingPoint.relaxed(trefp, temperature)
            for temperature in (50.0, 70.0)
            for trefp in (1.173, 2.283)
        ]

    def _rng_grid(self, repetitions):
        return [
            [np.random.default_rng(1000 * p + k) for k in range(repetitions)]
            for p in range(len(self.ops))
        ]

    def test_expected_grid_matches_scalar_exactly(self):
        grid = self.model.expected_rank_wer_grid(self.ops, self.behavior, "backprop")
        for p, op in enumerate(self.ops):
            for r, rank in enumerate(self.model.geometry.iter_ranks()):
                assert grid[p, r] == self.model.expected_rank_wer(
                    op, self.behavior, rank, "backprop"
                )

    def test_ce_and_ue_probability_grids_match_scalar_exactly(self):
        ce = self.model.word_ce_probability_grid(self.ops, self.behavior)
        pue = self.model.probability_of_ue_grid(self.ops, self.behavior, "backprop")
        for p, op in enumerate(self.ops):
            assert ce[p] == self.model.word_ce_probability(op, self.behavior)
            assert pue[p] == self.model.probability_of_ue(op, self.behavior, "backprop")

    def test_sampled_wer_grid_matches_scalar_stream_exactly(self):
        sampled = self.model.sample_rank_wer_grid(
            self.ops, self.behavior, "backprop", rngs=self._rng_grid(3)
        )
        reference = self._rng_grid(3)
        for p, op in enumerate(self.ops):
            for k in range(3):
                rng = reference[p][k]
                for r, rank in enumerate(self.model.geometry.iter_ranks()):
                    assert sampled[p, k, r] == self.model.sample_rank_wer(
                        op, self.behavior, rank, "backprop", rng=rng
                    )

    def test_sampled_ue_grid_matches_scalar_stream_exactly(self):
        # The UE draws must follow the per-rank normals on the same stream,
        # exactly as one scalar run consumes its generator.
        num_ranks = self.model.geometry.num_ranks
        events = []
        for row in self._rng_grid(4):
            for rng in row:
                rng.standard_normal(num_ranks)
            events.append(row)
        sampled = self.model.sample_ue_events_grid(
            self.ops, self.behavior, "srad(par)", rngs=events
        )
        reference = self._rng_grid(4)
        for p, op in enumerate(self.ops):
            for k in range(4):
                rng = reference[p][k]
                rng.standard_normal(num_ranks)
                assert sampled[p][k] == self.model.sample_ue_event(
                    op, self.behavior, "srad(par)", rng=rng
                )

    def test_default_rng_grids_honour_repetitions(self):
        wer = self.model.sample_rank_wer_grid(self.ops, self.behavior, repetitions=3)
        assert wer.shape == (len(self.ops), 3, self.model.geometry.num_ranks)
        ue = self.model.sample_ue_events_grid(self.ops, self.behavior, repetitions=3)
        assert [len(row) for row in ue] == [3] * len(self.ops)

    def test_mismatched_rng_grid_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            self.model.sample_rank_wer_grid(
                self.ops, self.behavior, rngs=[[np.random.default_rng(0)]]
            )
        with pytest.raises(ConfigurationError):
            self.model.sample_rank_wer_grid([], self.behavior)


class TestExperimentGridEquivalence:
    """run_grid vs the independent scalar reference implementation."""

    def test_grid_reproduces_reference_scalar_runs(self):
        experiment = CharacterizationExperiment(seed=11)
        profile = profile_workload("kmeans")
        ops = [
            OperatingPoint.relaxed(trefp, temperature)
            for temperature in (50.0, 60.0, 70.0)
            for trefp in (0.618, 1.727, 2.283)
        ]
        grid = experiment.run_grid("kmeans", ops, repetitions=3, profile=profile)
        for p, op in enumerate(ops):
            for k in range(3):
                rank_wer, ue_rank = reference_scalar_run(
                    experiment, "kmeans", op, profile, repetition=k
                )
                assert grid[p][k].rank_wer == rank_wer
                assert grid[p][k].ue_rank == ue_rank

    def test_scalar_run_is_one_point_grid(self):
        experiment = CharacterizationExperiment(seed=5)
        profile = profile_workload("bfs")
        op = OperatingPoint.relaxed(2.283, 60.0)
        single = experiment.run("bfs", op, profile=profile, repetition=2)
        grid = experiment.run_grid("bfs", [op], repetitions=(2,), profile=profile)
        assert single.rank_wer == grid[0][0].rank_wer
        assert single.ue_rank == grid[0][0].ue_rank
        assert single.operating_point == grid[0][0].operating_point

    @given(
        trefps=st.lists(st.sampled_from(TREFP_PALETTE), min_size=1, max_size=3,
                        unique=True),
        temperatures=st.lists(st.sampled_from(TEMPERATURE_PALETTE), min_size=1,
                              max_size=2, unique=True),
        repetitions=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_grid_subsets_match_scalar_exactly(
        self, trefps, temperatures, repetitions, seed
    ):
        experiment = CharacterizationExperiment(seed=seed)
        profile = profile_workload("memcached")
        ops = [
            OperatingPoint.relaxed(trefp, temperature)
            for temperature in temperatures
            for trefp in trefps
        ]
        grid = experiment.run_grid(
            "memcached", ops, repetitions=repetitions, profile=profile
        )
        for p, op in enumerate(ops):
            for k in range(repetitions):
                rank_wer, ue_rank = reference_scalar_run(
                    experiment, "memcached", op, profile, repetition=k
                )
                assert grid[p][k].rank_wer == rank_wer
                assert grid[p][k].ue_rank == ue_rank

    def test_zero_repetitions_yield_empty_batches(self):
        experiment = CharacterizationExperiment()
        ops = [OperatingPoint.relaxed(1.173, 50.0)]
        assert experiment.run_grid("backprop", ops, repetitions=0) == [[]]

    def test_invalid_grid_arguments_rejected(self):
        experiment = CharacterizationExperiment()
        op = OperatingPoint.relaxed(1.173, 50.0)
        with pytest.raises(CharacterizationError):
            experiment.run_grid("backprop", [])
        with pytest.raises(CharacterizationError):
            experiment.run_grid("backprop", [op], duration_s=0.0)
        with pytest.raises(CharacterizationError):
            experiment.run_grid("backprop", [op], repetitions=-1)


class TestCampaignDeterminism:
    def test_same_seed_produces_identical_campaigns(self):
        config = CampaignConfig(
            workloads=("backprop", "memcached"),
            trefp_values_s=(1.173, 2.283),
            temperatures_c=(50.0,),
            ue_trefp_values_s=(2.283,),
            ue_repetitions=3,
        )
        a = CharacterizationCampaign(config=config, seed=23).run()
        b = CharacterizationCampaign(config=config, seed=23).run()
        assert a.wer_measurements == b.wer_measurements
        assert a.pue_summaries == b.pue_summaries

    def test_campaign_reproduces_scalar_reference_sweep(self):
        """The batched sweeps yield the exact measurements of the scalar loop."""
        config = CampaignConfig(
            workloads=("kmeans", "bfs"),
            trefp_values_s=(1.173, 2.283),
            temperatures_c=(50.0, 60.0),
            ue_trefp_values_s=(1.450, 2.283),
            ue_repetitions=2,
        )
        campaign = CharacterizationCampaign(config=config, seed=13)
        result = campaign.run()

        reference = CharacterizationCampaign(config=config, seed=13)
        expected = []
        expected_pue = []
        for workload in config.workloads:
            profile = profile_workload(workload)
            for op in config.wer_operating_points():
                rank_wer, _ue = reference_scalar_run(
                    reference.experiment, workload, op, profile, repetition=0
                )
                expected.extend(sorted(rank_wer.items(), key=lambda kv: kv[0].label))
        for workload in config.workloads:
            profile = profile_workload(workload)
            for op in config.ue_operating_points():
                crashes = 0
                for repetition in range(config.ue_repetitions):
                    rank_wer, ue_rank = reference_scalar_run(
                        reference.experiment, workload, op, profile, repetition
                    )
                    crashes += ue_rank is not None
                    if repetition == 0:
                        expected.extend(
                            sorted(rank_wer.items(), key=lambda kv: kv[0].label)
                        )
                expected_pue.append((workload, op.trefp_s, crashes))

        assert [(m.rank, m.wer) for m in result.wer_measurements] == expected
        assert [
            (s.workload, s.trefp_s, s.crashed_runs) for s in result.pue_summaries
        ] == expected_pue

    def test_different_seeds_differ(self):
        config = CampaignConfig(
            workloads=("backprop",), trefp_values_s=(2.283,), temperatures_c=(50.0,)
        )
        a = CharacterizationCampaign(config=config, seed=1).run(include_ue_study=False)
        b = CharacterizationCampaign(config=config, seed=2).run(include_ue_study=False)
        assert a.wer_measurements != b.wer_measurements


class TestColumnarAggregations:
    """The columnar reductions must match the old list-scan implementations."""

    @staticmethod
    def _list_scan_by_workload(result, trefp_s, temperature_c, tol=1e-9):
        values = {}
        for m in result.wer_measurements:
            if abs(m.trefp_s - trefp_s) <= tol and abs(m.temperature_c - temperature_c) <= tol:
                values.setdefault(m.workload, []).append(m.wer)
        return {workload: float(np.mean(v)) for workload, v in values.items()}

    @staticmethod
    def _list_scan_by_rank(result, trefp_s, temperature_c, tol=1e-9):
        table = {}
        for m in result.wer_measurements:
            if abs(m.trefp_s - trefp_s) <= tol and abs(m.temperature_c - temperature_c) <= tol:
                table.setdefault(m.workload, {}).setdefault(m.rank, []).append(m.wer)
        return {
            workload: {rank: float(np.mean(v)) for rank, v in ranks.items()}
            for workload, ranks in table.items()
        }

    def test_columnar_matches_list_scan_on_campaign_fixture(self, small_campaign):
        config = small_campaign.config
        points = [
            (trefp, temperature)
            for temperature in config.temperatures_c
            for trefp in config.trefp_values_s
        ] + [(trefp, config.ue_temperature_c) for trefp in config.ue_trefp_values_s]
        for trefp, temperature in points:
            assert small_campaign.wer_by_workload(trefp, temperature) == (
                self._list_scan_by_workload(small_campaign, trefp, temperature)
            )
            assert small_campaign.wer_by_rank(trefp, temperature) == (
                self._list_scan_by_rank(small_campaign, trefp, temperature)
            )

    def test_store_rebuilds_after_append(self):
        result = CampaignResult(config=CampaignConfig())
        measurement = WerMeasurement(
            workload="a", trefp_s=1.173, vdd_v=units.MIN_VDD_V,
            temperature_c=50.0, rank=next(iter(
                CharacterizationExperiment().server.geometry.iter_ranks()
            )), wer=1e-6,
        )
        result.wer_measurements.append(measurement)
        assert result.wer_by_workload(1.173, 50.0) == {"a": 1e-6}
        result.wer_measurements.append(
            WerMeasurement(
                workload="a", trefp_s=1.173, vdd_v=units.MIN_VDD_V,
                temperature_c=50.0, rank=measurement.rank, wer=3e-6,
            )
        )
        # The cached columnar view must pick up the appended measurement.
        assert result.wer_by_workload(1.173, 50.0) == {"a": pytest.approx(2e-6)}

    def test_store_group_means_preserve_record_order(self):
        store = WerColumnStore([])
        assert len(store) == 0
        with pytest.raises(CharacterizationError):
            store.mean_wer_by_workload(1.173, 50.0)

    def test_sweep_extends_previously_read_measurement_list_in_place(self):
        # Regression: a caller that reads wer_measurements before the sweep
        # holds the canonical list — block ingestion must extend that list
        # in place, not detach it for the columnar fast path.
        config = CampaignConfig(
            workloads=("backprop",), trefp_values_s=(2.283,), temperatures_c=(50.0,)
        )
        campaign = CharacterizationCampaign(config=config, seed=3)
        result = CampaignResult(config=config)
        held = result.wer_measurements
        assert held == []
        campaign.run_wer_sweep(result)
        assert len(held) == 8
        assert held is result.wer_measurements
        # And the columnar view serves the same rows.
        assert len(result.wer_columns()) == 8
        rank = next(CharacterizationExperiment().server.geometry.iter_ranks())
        def measurement(wer):
            return WerMeasurement(
                workload="a", trefp_s=1.173, vdd_v=units.MIN_VDD_V,
                temperature_c=50.0, rank=rank, wer=wer,
            )
        result = CampaignResult(config=CampaignConfig())
        result.wer_measurements.append(measurement(1e-6))
        assert result.wer_by_workload(1.173, 50.0) == {"a": 1e-6}
        # Wholesale replacement with an equal-length list is detected ...
        result.wer_measurements = [measurement(5e-6)]
        assert result.wer_by_workload(1.173, 50.0) == {"a": 5e-6}
        # ... while in-place record replacement needs explicit invalidation.
        result.wer_measurements[0] = measurement(9e-6)
        result.invalidate_wer_columns()
        assert result.wer_by_workload(1.173, 50.0) == {"a": 9e-6}


class TestEmptyPointContract:
    """Regression: wer_by_rank used to return {} where wer_by_workload raised."""

    def test_both_aggregations_raise_on_unknown_operating_point(self, small_campaign):
        with pytest.raises(CharacterizationError):
            small_campaign.wer_by_workload(0.1, 50.0)
        with pytest.raises(CharacterizationError):
            small_campaign.wer_by_rank(0.1, 50.0)

    def test_both_raise_on_empty_result(self):
        result = CampaignResult(config=CampaignConfig())
        with pytest.raises(CharacterizationError):
            result.wer_by_workload(1.173, 50.0)
        with pytest.raises(CharacterizationError):
            result.wer_by_rank(1.173, 50.0)
