"""Tests for the workload-aware error model: features, datasets, models, baseline."""

import numpy as np
import pytest

from repro.core.conventional import ConventionalErrorModel
from repro.core.correlation import run_correlation_study
from repro.core.dataset import build_pue_dataset, build_wer_dataset
from repro.core.evaluation import AccuracyEvaluator, best_configuration
from repro.core.features import (
    INPUT_SET_1,
    INPUT_SET_2,
    INPUT_SET_3,
    FeatureSet,
    feature_set_table,
    get_feature_set,
)
from repro.core.model import DramErrorModel, ModelConfig
from repro.core.predictor import WorkloadAwarePredictor
from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError, DataError, NotFittedError


class TestFeatureSets:
    def test_table3_input_sets(self):
        assert INPUT_SET_1.program_features == (
            "memory_accesses_per_cycle", "wait_cycles", "hdp", "treuse",
        )
        assert INPUT_SET_2.program_features == ("memory_accesses_per_cycle", "wait_cycles")
        assert len(INPUT_SET_3.program_features) == 249

    def test_input_names_start_with_operating_parameters(self):
        assert INPUT_SET_1.input_names[:3] == ["trefp_s", "vdd_v", "temperature_c"]
        assert INPUT_SET_1.num_inputs == 7
        assert INPUT_SET_3.num_inputs == 252

    def test_build_row(self, backprop_profile):
        op = OperatingPoint.relaxed(2.283, 50.0)
        row = INPUT_SET_1.build_row(op, backprop_profile.features)
        assert row.shape == (7,)
        assert row[0] == pytest.approx(2.283)
        assert row[6] == pytest.approx(backprop_profile.feature("treuse"))

    def test_missing_program_feature_rejected(self):
        with pytest.raises(ConfigurationError):
            INPUT_SET_1.build_row(OperatingPoint.nominal(), {"treuse": 1.0})

    def test_unknown_feature_set_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_feature_set("set9")

    def test_unknown_program_feature_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureSet(name="bad", program_features=("not_a_counter",))

    def test_feature_set_table_has_three_rows(self):
        assert len(feature_set_table()) == 3


class TestDatasets:
    def test_wer_dataset_size_and_targets(self, small_campaign, small_wer_dataset):
        assert len(small_wer_dataset) == len(small_campaign.wer_measurements)
        assert all(sample.target > 0 for sample in small_wer_dataset)
        assert all(sample.rank is not None for sample in small_wer_dataset)

    def test_pue_dataset_targets_in_unit_interval(self, small_pue_dataset):
        assert all(0.0 <= sample.target <= 1.0 for sample in small_pue_dataset)
        assert all(sample.rank is None for sample in small_pue_dataset)

    def test_matrices_shapes(self, small_wer_dataset):
        X, y, groups = small_wer_dataset.matrices(INPUT_SET_1)
        assert X.shape == (len(small_wer_dataset), 7)
        assert y.shape[0] == groups.shape[0] == len(small_wer_dataset)

    def test_filter_rank(self, small_wer_dataset):
        rank = small_wer_dataset.ranks()[0]
        subset = small_wer_dataset.filter_rank(rank)
        assert all(sample.rank == rank for sample in subset)
        assert len(subset) == len(small_wer_dataset) // 8

    def test_workloads_listed(self, small_wer_dataset):
        assert "memcached" in small_wer_dataset.workloads()
        assert len(small_wer_dataset.workloads()) == 6

    def test_missing_profile_rejected(self, small_campaign):
        with pytest.raises(DataError):
            build_wer_dataset(small_campaign, profiles={})

    def test_pue_dataset_requires_ue_study(self, small_campaign, small_profiles):
        assert len(build_pue_dataset(small_campaign, small_profiles)) == \
            len(small_campaign.pue_summaries)


class TestDramErrorModel:
    @pytest.fixture(scope="class")
    def rank_dataset(self, small_wer_dataset):
        return small_wer_dataset.filter_rank(small_wer_dataset.ranks()[0])

    @pytest.mark.parametrize("family", ["knn", "svm", "rdf"])
    def test_fit_predict_round_trip(self, family, rank_dataset):
        model = DramErrorModel(ModelConfig(family=family, feature_set="set1"))
        model.fit(rank_dataset)
        predictions = model.predict_dataset(rank_dataset)
        assert predictions.shape == (len(rank_dataset),)
        assert np.all(predictions > 0)

    def test_training_set_accuracy_is_good(self, rank_dataset):
        model = DramErrorModel(ModelConfig(family="knn", feature_set="set1"))
        model.fit(rank_dataset)
        _X, y, _groups = rank_dataset.matrices(model.feature_set)
        predictions = model.predict_dataset(rank_dataset)
        ratio = np.abs(np.log10(predictions) - np.log10(y))
        assert np.median(ratio) < 0.2

    def test_single_prediction_interface(self, rank_dataset, backprop_profile):
        model = DramErrorModel(ModelConfig(family="knn", feature_set="set1"))
        model.fit(rank_dataset)
        op = OperatingPoint.relaxed(2.283, 50.0)
        value = model.predict(op, backprop_profile.features)
        assert value > 0

    def test_prediction_before_fit_raises(self, backprop_profile):
        model = DramErrorModel()
        with pytest.raises(NotFittedError):
            model.predict(OperatingPoint.nominal(), backprop_profile.features)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(family="xgboost")

    def test_clone_preserves_configuration(self):
        model = DramErrorModel(ModelConfig(family="rdf", feature_set="set2"))
        clone = model.clone()
        assert clone.config == model.config
        assert clone is not model


class TestEvaluation:
    def test_knn_set1_beats_conventional_baseline(self, small_wer_dataset, small_campaign,
                                                  small_profiles):
        evaluator = AccuracyEvaluator()
        ranks = small_wer_dataset.ranks()[:2]
        report = evaluator.evaluate_wer(small_wer_dataset, "knn", "set1", ranks=ranks)
        assert 0 < report.average_rank_error < 100

        # Conventional model: constant rate from the random data-pattern micro.
        config = small_campaign.config
        from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign
        micro_config = CampaignConfig(
            workloads=("data-pattern-random",) + config.workloads,
            trefp_values_s=config.trefp_values_s,
            temperatures_c=config.temperatures_c,
        )
        micro_campaign = CharacterizationCampaign(config=micro_config, seed=11).run(
            include_ue_study=False
        )
        dataset = build_wer_dataset(micro_campaign)
        baseline = ConventionalErrorModel().fit(dataset)
        scores = baseline.evaluate(dataset)
        assert scores["mean_percentage_error"] > report.average_rank_error

    def test_report_has_every_rank_and_workload(self, small_wer_dataset):
        evaluator = AccuracyEvaluator()
        ranks = small_wer_dataset.ranks()[:2]
        report = evaluator.evaluate_wer(small_wer_dataset, "knn", "set1", ranks=ranks)
        assert set(report.error_by_rank) == set(ranks)
        assert set(report.error_by_workload) == set(small_wer_dataset.workloads())
        assert report.average_workload_error > 0
        assert report.max_workload_error >= report.average_workload_error

    def test_pue_evaluation(self, small_pue_dataset):
        evaluator = AccuracyEvaluator()
        report = evaluator.evaluate_pue(small_pue_dataset, "knn", "set2")
        assert 0 <= report.average_error < 200

    def test_best_configuration_selection(self, small_wer_dataset):
        evaluator = AccuracyEvaluator()
        ranks = small_wer_dataset.ranks()[:1]
        study = evaluator.wer_study(
            small_wer_dataset, families=("knn",), feature_sets=("set1", "set2"), ranks=ranks
        )
        best = best_configuration(study)
        assert best.family == "knn"
        assert best.feature_set in ("set1", "set2")

    def test_missing_rank_information_rejected(self, small_pue_dataset):
        with pytest.raises(DataError):
            AccuracyEvaluator().evaluate_wer(small_pue_dataset, "knn", "set1")


class TestCorrelationStudy:
    def test_study_covers_all_features(self, small_wer_dataset, small_pue_dataset):
        study = run_correlation_study(small_wer_dataset, small_pue_dataset)
        assert len(study.points) == 249
        assert all(-1.0 <= p.rs_wer <= 1.0 for p in study.points)

    def test_memory_access_rate_is_positively_correlated(self, small_wer_dataset,
                                                          small_pue_dataset):
        study = run_correlation_study(small_wer_dataset, small_pue_dataset)
        assert study.rs_wer("memory_accesses_per_cycle") > 0.2
        assert study.rs_pue("memory_accesses_per_cycle") > 0.0

    def test_unknown_feature_rejected(self, small_wer_dataset, small_pue_dataset):
        study = run_correlation_study(small_wer_dataset, small_pue_dataset,
                                      feature_names=["treuse", "hdp"])
        with pytest.raises(DataError):
            study.rs_wer("ipc")

    def test_constant_feature_correlates_to_exactly_zero(self):
        # Zero-variance contract: a feature that never varies across
        # workloads has no ranking information, so its coefficient must be
        # exactly 0.0 — not a NaN that would silently poison the study mean.
        from repro.core.dataset import ErrorDataset, Sample

        rng = np.random.default_rng(3)
        workloads = [f"w{i}" for i in range(4)]
        features = {
            w: {"f_const": 7.5, "f_varying": float(i)}
            for i, w in enumerate(workloads)
        }

        def build(seed):
            dataset = ErrorDataset()
            r = np.random.default_rng(seed)
            for trefp in (1.173, 2.283):
                for workload in workloads:
                    dataset.add(Sample(
                        workload=workload,
                        operating_point=OperatingPoint(
                            trefp_s=trefp, vdd_v=1.45, temperature_c=50.0
                        ),
                        target=float(abs(r.normal()) + 0.1),
                        program_features=features[workload],
                    ))
            return dataset

        study = run_correlation_study(
            build(1), build(2), feature_names=["f_const", "f_varying"]
        )
        assert study.rs_wer("f_const") == 0.0
        assert study.rs_pue("f_const") == 0.0
        assert -1.0 <= study.rs_wer("f_varying") <= 1.0
        del rng

    def test_constant_targets_within_groups_yield_zero_not_nan(self):
        # Constant per-group targets are the other zero-variance direction.
        from repro.core.dataset import ErrorDataset, Sample

        def build():
            dataset = ErrorDataset()
            for trefp in (1.173, 2.283):
                for i in range(4):
                    dataset.add(Sample(
                        workload=f"w{i}",
                        operating_point=OperatingPoint(
                            trefp_s=trefp, vdd_v=1.45, temperature_c=50.0
                        ),
                        target=0.25,
                        program_features={"f": float(i)},
                    ))
            return dataset

        study = run_correlation_study(build(), build(), feature_names=["f"])
        assert study.rs_wer("f") == 0.0
        assert not np.isnan(study.rs_wer("f"))


class TestConventionalModel:
    def test_requires_reference_workload(self, small_wer_dataset):
        with pytest.raises(DataError):
            ConventionalErrorModel().fit(small_wer_dataset)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ConventionalErrorModel().predict(OperatingPoint.nominal())


class TestWorkloadAwarePredictor:
    @pytest.fixture(scope="class")
    def predictor(self, small_campaign, small_profiles):
        return WorkloadAwarePredictor().fit(small_campaign, small_profiles)

    def test_prediction_structure(self, predictor, memcached_profile):
        result = predictor.predict(memcached_profile, OperatingPoint.relaxed(2.283, 50.0))
        assert len(result.wer_by_rank) == 8
        assert result.memory_wer > 0
        assert 0.0 <= result.pue <= 1.0

    def test_prediction_is_fast(self, predictor, memcached_profile):
        result = predictor.predict(memcached_profile, OperatingPoint.relaxed(2.283, 50.0))
        # The paper quotes < 300 ms per prediction; the reproduction is far faster.
        assert result.latency_s < 0.3

    def test_memcached_predicted_below_srad(self, predictor, small_profiles):
        op = OperatingPoint.relaxed(2.283, 50.0)
        memcached = predictor.predict_wer(small_profiles["memcached"], op)
        srad = predictor.predict_wer(small_profiles["srad(par)"], op)
        assert memcached < srad

    def test_unfitted_predictor_raises(self, memcached_profile):
        with pytest.raises(NotFittedError):
            WorkloadAwarePredictor().predict(memcached_profile, OperatingPoint.nominal())

    def test_invalid_workload_type_rejected(self, predictor):
        with pytest.raises(ConfigurationError):
            predictor.predict(123, OperatingPoint.nominal())
