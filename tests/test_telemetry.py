"""Unit tests for the telemetry registry, snapshots and run reports."""

from __future__ import annotations

import json
import logging
import pickle
import threading

import numpy as np
import pytest

from repro.telemetry import (
    HistogramSummary,
    RunReport,
    Telemetry,
    TelemetrySnapshot,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.telemetry.report import RUN_REPORT_SCHEMA


class TestRegistry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.incr("a")
        tel.incr("a", 4)
        tel.incr("b", 2.5)
        snap = tel.snapshot()
        assert snap.counters == {"a": 5, "b": 2.5}

    def test_gauges_keep_latest_value(self):
        tel = Telemetry()
        tel.gauge("g", 1)
        tel.gauge("g", 9)
        assert tel.snapshot().gauges == {"g": 9.0}

    def test_histograms_summarize(self):
        tel = Telemetry()
        for value in (3.0, 1.0, 5.0):
            tel.observe("h", value)
        tel.observe_array("h", np.array([2.0, 10.0]))
        summary = tel.snapshot().histograms["h"]
        assert summary.count == 5
        assert summary.sum == pytest.approx(21.0)
        assert summary.min == 1.0 and summary.max == 10.0
        assert summary.mean == pytest.approx(4.2)

    def test_observe_array_of_nothing_is_a_no_op(self):
        tel = Telemetry()
        tel.observe_array("h", np.array([]))
        assert "h" not in tel.snapshot().histograms

    def test_spans_nest_and_aggregate(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("outer"):
                with tel.span("inner"):
                    pass
        with tel.span("inner"):    # same name, different parent: distinct node
            pass
        counts = tel.snapshot().span_counts()
        assert counts == {"outer": 3, "outer/inner": 3, "inner": 1}

    def test_span_timing_is_monotonic_and_positive(self):
        tel = Telemetry()
        with tel.span("work"):
            sum(range(1000))
        node = tel.snapshot().find_span("work")
        assert node.count == 1
        assert 0.0 <= node.min_s <= node.total_s
        assert node.max_s <= node.total_s + 1e-12

    def test_reset_clears_everything(self):
        tel = Telemetry()
        tel.incr("a")
        with tel.span("s"):
            pass
        tel.reset()
        snap = tel.snapshot()
        assert not snap.counters and not snap.spans
        assert tel.enabled

    def test_disabled_registry_records_nothing(self):
        tel = Telemetry(enabled=False)
        tel.incr("a")
        tel.gauge("g", 1)
        tel.observe("h", 1.0)
        with tel.span("s"):
            pass
        snap = tel.snapshot()
        assert not snap.counters and not snap.gauges
        assert not snap.histograms and not snap.spans

    def test_thread_spans_attach_at_each_threads_stack(self):
        tel = Telemetry()
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            for _ in range(50):
                with tel.span("thread"):
                    with tel.span("leaf"):
                        tel.incr("ticks")

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = tel.snapshot()
        assert snap.counters["ticks"] == 200
        assert snap.span_counts() == {"thread": 200, "thread/leaf": 200}


class TestActiveRegistry:
    def test_default_is_disabled(self):
        assert get_telemetry().enabled is False

    def test_session_installs_and_restores(self):
        before = get_telemetry()
        with telemetry_session() as tel:
            assert get_telemetry() is tel
            assert tel.enabled
        assert get_telemetry() is before

    def test_set_telemetry_none_restores_default(self):
        tel = Telemetry()
        previous = set_telemetry(tel)
        try:
            assert get_telemetry() is tel
        finally:
            set_telemetry(None)
        assert get_telemetry().enabled is False
        assert previous.enabled is False


class TestSnapshots:
    def test_snapshot_pickles(self):
        tel = Telemetry()
        tel.incr("c", 2)
        tel.observe("h", 1.5)
        with tel.span("a"):
            with tel.span("b"):
                pass
        snap = pickle.loads(pickle.dumps(tel.snapshot()))
        assert snap.counters == {"c": 2}
        assert snap.span_counts() == {"a": 1, "a/b": 1}

    def test_snapshot_is_a_frozen_copy(self):
        tel = Telemetry()
        tel.incr("c")
        snap = tel.snapshot()
        tel.incr("c")
        assert snap.counters == {"c": 1}

    def test_merge_semantics(self):
        a = TelemetrySnapshot(
            counters={"x": 1}, gauges={"g": 1.0},
            histograms={"h": HistogramSummary(count=1, sum=2.0, min=2.0, max=2.0)},
        )
        b = TelemetrySnapshot(
            counters={"x": 4, "y": 1}, gauges={"g": 9.0},
            histograms={"h": HistogramSummary(count=2, sum=8.0, min=1.0, max=7.0)},
        )
        merged = a.merge(b)
        assert merged.counters == {"x": 5, "y": 1}
        assert merged.gauges == {"g": 9.0}
        assert merged.histograms["h"] == HistogramSummary(
            count=3, sum=10.0, min=1.0, max=7.0
        )

    def test_merge_spans_by_name_preserving_order(self):
        def tree():
            tel = Telemetry()
            with tel.span("first"):
                with tel.span("leaf"):
                    pass
            with tel.span("second"):
                pass
            return tel.snapshot()

        merged = tree().merge(tree())
        assert [s.name for s in merged.spans] == ["first", "second"]
        assert merged.span_counts() == {"first": 2, "first/leaf": 2, "second": 2}

    def test_merge_is_associative_on_counts(self):
        def snap(n):
            tel = Telemetry()
            for _ in range(n):
                with tel.span("s"):
                    tel.incr("c")
            return tel.snapshot()

        a, b, c = snap(1), snap(2), snap(3)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.counters == right.counters == {"c": 6}
        assert left.span_counts() == right.span_counts() == {"s": 6}

    def test_merge_snapshot_grafts_under_current_span(self):
        worker = Telemetry()
        with worker.span("sweep"):
            worker.incr("rows", 8)
        shipped = pickle.loads(pickle.dumps(worker.snapshot()))

        parent = Telemetry()
        with parent.span("campaign"):
            parent.merge_snapshot(shipped)
        counts = parent.snapshot().span_counts()
        assert counts == {"campaign": 1, "campaign/sweep": 1}
        assert parent.snapshot().counters == {"rows": 8}

    def test_merge_snapshot_none_is_a_no_op(self):
        parent = Telemetry()
        parent.merge_snapshot(None)
        assert parent.snapshot() == TelemetrySnapshot()

    def test_find_span_missing_path(self):
        assert TelemetrySnapshot().find_span("nope/nothing") is None


class TestRunReport:
    def _sample_report(self):
        tel = Telemetry()
        with tel.span("campaign.run"):
            with tel.span("workload:bfs"):
                tel.incr("rows", 3)
        tel.observe("h", 4.0)
        tel.gauge("workers", 2)
        return RunReport.capture(tel)

    def test_environment_metadata(self):
        report = self._sample_report()
        env = report.environment
        assert env["python_version"].count(".") == 2
        assert env["numpy_version"] == np.__version__
        assert "git_sha" in env and "platform" in env

    def test_render_mentions_spans_and_metrics(self):
        text = self._sample_report().render()
        assert "campaign.run" in text
        assert "workload:bfs" in text
        assert "rows: 3" in text
        assert "workers: 2" in text

    def test_json_schema_is_stable_and_serializable(self):
        document = self._sample_report().to_json_dict()
        assert document["schema"] == RUN_REPORT_SCHEMA
        assert set(document) == {
            "schema", "environment", "counters", "gauges", "histograms", "spans",
        }
        span = document["spans"][0]
        assert set(span) == {"name", "count", "total_s", "min_s", "max_s", "children"}
        json.dumps(document)    # must be JSON-serializable as-is

    def test_write_json_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        self._sample_report().write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["counters"] == {"rows": 3}
        assert loaded["spans"][0]["name"] == "campaign.run"


class TestLoggingHierarchy:
    def test_root_logger_has_null_handler(self):
        import repro  # noqa: F401 — installs the handler on import

        root = logging.getLogger("repro")
        assert any(
            isinstance(handler, logging.NullHandler) for handler in root.handlers
        )

    def test_memory_budget_rejection_is_logged(self, caplog):
        from repro.dram.cells import CellArrayConfig, CellArraySimulator
        from repro.dram.geometry import small_geometry
        from repro.errors import ConfigurationError

        with caplog.at_level(logging.INFO, logger="repro.dram.cells"):
            with pytest.raises(ConfigurationError):
                CellArraySimulator(CellArrayConfig(
                    geometry=small_geometry(), memory_budget_bytes=1024,
                ))
        assert any("budget" in record.message for record in caplog.records)

    def test_campaign_sweep_logs_start_and_finish(self, caplog):
        from repro.characterization.campaign import (
            CampaignConfig, CharacterizationCampaign,
        )

        config = CampaignConfig(
            workloads=("backprop",), trefp_values_s=(2.283,),
            temperatures_c=(50.0,), ue_trefp_values_s=(), ue_repetitions=0,
        )
        with caplog.at_level(logging.INFO, logger="repro.characterization.campaign"):
            CharacterizationCampaign(config=config, seed=3).run(
                include_ue_study=False
            )
        messages = [record.message for record in caplog.records]
        assert any("WER sweep starting" in message for message in messages)
        assert any("WER sweep finished" in message for message in messages)
