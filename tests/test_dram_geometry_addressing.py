"""Tests for DRAM geometry, address mapping and the operating point."""

import pytest

from repro import units
from repro.dram.address_map import AddressMapper
from repro.dram.geometry import CellLocation, DramGeometry, RankLocation, small_geometry
from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError


class TestRankLocation:
    def test_label_matches_paper_figures(self):
        assert RankLocation(2, 0).label == "DIMM2/rank0"

    def test_ordering_is_stable(self):
        assert RankLocation(0, 1) < RankLocation(1, 0)

    def test_negative_indices_rejected(self):
        with pytest.raises(ConfigurationError):
            RankLocation(-1, 0)


class TestDramGeometry:
    def test_default_geometry_matches_platform(self):
        geometry = DramGeometry()
        assert geometry.num_dimms == 4
        assert geometry.ranks_per_dimm == 2
        assert geometry.num_ranks == 8

    def test_iter_ranks_yields_all(self):
        geometry = DramGeometry()
        ranks = list(geometry.iter_ranks())
        assert len(ranks) == 8
        assert len(set(ranks)) == 8

    def test_rank_index_round_trip(self):
        geometry = DramGeometry()
        for index, rank in enumerate(geometry.iter_ranks()):
            assert geometry.rank_index(rank) == index
            assert geometry.rank_from_index(index) == rank

    def test_word_index_round_trip_small(self):
        geometry = small_geometry()
        for word_index in range(0, geometry.total_words, 977):
            cell = geometry.cell_from_word_index(word_index)
            assert geometry.word_index(cell) == word_index

    def test_total_words_consistent(self):
        geometry = small_geometry()
        assert geometry.total_words == (
            geometry.num_ranks * geometry.banks_per_rank *
            geometry.rows_per_bank * geometry.columns_per_row
        )

    def test_invalid_cell_rejected(self):
        geometry = small_geometry()
        with pytest.raises(ConfigurationError):
            geometry.validate_cell(CellLocation(0, 0, 0, geometry.rows_per_bank, 0))

    def test_invalid_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            DramGeometry().validate_rank(RankLocation(9, 0))

    def test_non_positive_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            DramGeometry(num_dimms=0)


class TestAddressMapper:
    def test_addresses_interleave_across_ranks(self):
        geometry = DramGeometry()
        mapper = AddressMapper(geometry, interleave_bytes=256)
        ranks = {mapper.map_address(i * 256).rank_location for i in range(8)}
        assert len(ranks) == 8

    def test_word_alignment(self):
        mapper = AddressMapper(DramGeometry())
        assert mapper.map_address(0) == mapper.map_address(7)
        assert mapper.map_address(0) != mapper.map_address(256)

    def test_footprint_spread_is_even(self):
        mapper = AddressMapper(DramGeometry())
        counts = mapper.footprint_words_per_rank(64 * units.MIB)
        values = list(counts.values())
        assert max(values) - min(values) <= mapper.words_per_interleave
        assert sum(values) == 64 * units.MIB // units.WORD_BYTES

    def test_interleave_must_be_word_multiple(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(DramGeometry(), interleave_bytes=100)

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(DramGeometry()).map_address(-8)


class TestOperatingPoint:
    def test_nominal_defaults(self):
        op = OperatingPoint.nominal()
        assert op.trefp_s == pytest.approx(units.NOMINAL_TREFP_S)
        assert not op.is_relaxed

    def test_relaxed_constructor_uses_min_vdd(self):
        op = OperatingPoint.relaxed(2.283, 70.0)
        assert op.vdd_v == pytest.approx(units.MIN_VDD_V)
        assert op.is_relaxed

    def test_refresh_scaling(self):
        op = OperatingPoint.relaxed(0.64, 50.0)
        assert op.refresh_scaling == pytest.approx(10.0)

    def test_out_of_range_trefp_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(trefp_s=3.0)
        with pytest.raises(ConfigurationError):
            OperatingPoint(trefp_s=0.001)

    def test_out_of_range_vdd_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(vdd_v=1.2)

    def test_out_of_range_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(temperature_c=95.0)

    def test_with_helpers_preserve_other_fields(self):
        op = OperatingPoint.relaxed(1.173, 50.0)
        hotter = op.with_temperature(70.0)
        assert hotter.trefp_s == op.trefp_s
        assert hotter.temperature_c == pytest.approx(70.0)
        longer = op.with_trefp(2.283)
        assert longer.temperature_c == op.temperature_c
