"""Tests for the KNN, SVR, decision-tree and random-forest regressors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.ml.distances import pairwise_distances
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.svm import SVR
from repro.ml.tree import DecisionTreeRegressor


def _toy_regression(n=120, noise=0.05, seed=3):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 3))
    y = 2.0 * X[:, 0] - 1.5 * X[:, 1] ** 2 + np.sin(3 * X[:, 2]) + noise * rng.normal(size=n)
    return X, y


class TestDistances:
    def test_euclidean_matches_numpy(self):
        A = np.array([[0.0, 0.0], [1.0, 1.0]])
        B = np.array([[3.0, 4.0]])
        D = pairwise_distances(A, B, "euclidean")
        assert D[0, 0] == pytest.approx(5.0)
        assert D[1, 0] == pytest.approx(np.hypot(2.0, 3.0))

    def test_manhattan_and_chebyshev(self):
        A = np.array([[0.0, 0.0]])
        B = np.array([[2.0, -3.0]])
        assert pairwise_distances(A, B, "manhattan")[0, 0] == pytest.approx(5.0)
        assert pairwise_distances(A, B, "chebyshev")[0, 0] == pytest.approx(3.0)

    def test_unknown_metric_raises(self):
        with pytest.raises(ConfigurationError):
            pairwise_distances(np.zeros((1, 2)), np.zeros((1, 2)), "cosine")

    def test_self_distance_is_zero(self):
        A = np.random.default_rng(0).normal(size=(5, 4))
        D = pairwise_distances(A, A)
        # The expanded |a|^2 + |b|^2 - 2ab form has ~1e-8 floating-point slack.
        assert np.allclose(np.diag(D), 0.0, atol=1e-6)


class TestKnnRegressor:
    def test_exact_match_returns_training_target(self):
        X = [[0.0], [1.0], [2.0]]
        y = [10.0, 20.0, 30.0]
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        assert model.predict([[1.0]])[0] == pytest.approx(20.0)

    def test_uniform_weights_average_neighbors(self):
        model = KNeighborsRegressor(n_neighbors=2, weights="uniform").fit(
            [[0.0], [1.0]], [0.0, 10.0]
        )
        assert model.predict([[0.5]])[0] == pytest.approx(5.0)

    def test_k_larger_than_training_set_is_clamped(self):
        model = KNeighborsRegressor(n_neighbors=10).fit([[0.0], [1.0]], [1.0, 3.0])
        prediction = model.predict([[0.5]])[0]
        assert 1.0 <= prediction <= 3.0

    def test_accuracy_on_smooth_function(self):
        X, y = _toy_regression(n=600)
        model = KNeighborsRegressor(n_neighbors=5, weights="distance").fit(X[:500], y[:500])
        assert model.score(X[500:], y[500:]) > 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KNeighborsRegressor().predict([[0.0]])

    def test_invalid_k_raises(self):
        with pytest.raises(ConfigurationError):
            KNeighborsRegressor(n_neighbors=0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DataError):
            KNeighborsRegressor().fit([[1.0], [2.0]], [1.0])

    def test_classifier_majority_vote(self):
        X = [[0.0], [0.1], [1.0], [1.1]]
        y = ["a", "a", "b", "b"]
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.predict([[0.05]])[0] == "a"
        assert model.predict([[1.05]])[0] == "b"


class TestSvr:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(60, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 1.0
        model = SVR(kernel="linear", C=50.0, epsilon=0.01).fit(X, y)
        assert model.score(X, y) > 0.98

    def test_rbf_fits_nonlinear_function(self):
        X, y = _toy_regression(n=150)
        model = SVR(kernel="rbf", C=50.0, epsilon=0.01, gamma=1.0).fit(X[:120], y[:120])
        assert model.score(X[120:], y[120:]) > 0.8

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SVR().predict([[0.0]])

    def test_invalid_c_raises(self):
        with pytest.raises(ConfigurationError):
            SVR(C=-1.0)

    def test_gamma_scale_is_resolved(self):
        model = SVR(gamma="scale").fit([[0.0], [1.0], [2.0]], [0.0, 1.0, 2.0])
        assert model.gamma_ > 0

    def test_support_vectors_subset_of_training(self):
        X, y = _toy_regression(n=50)
        model = SVR(C=5.0).fit(X, y)
        assert len(model.support_) <= X.shape[0]


class TestDecisionTree:
    def test_pure_leaf_prediction(self):
        model = DecisionTreeRegressor().fit([[0.0], [0.0], [1.0]], [2.0, 2.0, 8.0])
        assert model.predict([[0.0]])[0] == pytest.approx(2.0)
        assert model.predict([[1.0]])[0] == pytest.approx(8.0)

    def test_max_depth_limits_tree(self):
        X, y = _toy_regression(n=200)
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert shallow.depth() <= 2
        assert deep.node_count() > shallow.node_count()

    def test_min_samples_leaf_respected(self):
        X, y = _toy_regression(n=40)
        model = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        # With a 10-sample minimum per leaf a 40-sample set can have at most
        # 4 leaves, i.e. at most 7 nodes.
        assert model.node_count() <= 7

    def test_constant_target_yields_single_leaf(self):
        model = DecisionTreeRegressor().fit([[1.0], [2.0], [3.0]], [5.0, 5.0, 5.0])
        assert model.depth() == 0
        assert model.predict([[10.0]])[0] == pytest.approx(5.0)

    def test_feature_count_mismatch_raises(self):
        model = DecisionTreeRegressor().fit([[1.0, 2.0]], [1.0])
        with pytest.raises(ValueError):
            model.predict([[1.0]])

    def test_accuracy_on_smooth_function(self):
        X, y = _toy_regression(n=300)
        model = DecisionTreeRegressor(min_samples_leaf=5).fit(X[:250], y[:250])
        assert model.score(X[250:], y[250:]) > 0.6


class TestSplitFeatureCount:
    def test_float_one_uses_all_features(self):
        assert DecisionTreeRegressor(max_features=1.0)._n_split_features(8) == 8

    def test_small_float_clamps_to_one(self):
        assert DecisionTreeRegressor(max_features=0.01)._n_split_features(8) == 1

    def test_sqrt_and_log2_on_single_feature(self):
        assert DecisionTreeRegressor(max_features="sqrt")._n_split_features(1) == 1
        assert DecisionTreeRegressor(max_features="log2")._n_split_features(1) == 1

    def test_integer_larger_than_feature_count_is_clamped(self):
        assert DecisionTreeRegressor(max_features=100)._n_split_features(8) == 8

    def test_unknown_string_rejected(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(max_features="cube")._n_split_features(8)

    def test_none_uses_all_features(self):
        assert DecisionTreeRegressor()._n_split_features(5) == 5


class TestEmptyQueries:
    def test_kneighbors_with_zero_rows(self):
        model = KNeighborsRegressor(n_neighbors=2).fit([[0.0], [1.0], [2.0]], [1.0, 2.0, 3.0])
        dist, idx = model.kneighbors(np.empty((0, 1)))
        assert dist.shape == (0, 2)
        assert idx.shape == (0, 2)

    def test_predict_with_zero_rows(self):
        model = KNeighborsRegressor(n_neighbors=2).fit([[0.0], [1.0], [2.0]], [1.0, 2.0, 3.0])
        assert model.predict(np.empty((0, 1))).shape == (0,)
        classifier = KNeighborsClassifier(n_neighbors=2).fit([[0.0], [1.0]], ["a", "b"])
        assert classifier.predict(np.empty((0, 1))).shape == (0,)

    def test_fit_still_rejects_empty(self):
        with pytest.raises(DataError):
            KNeighborsRegressor().fit(np.empty((0, 2)), [])


class TestRandomForest:
    def test_forest_beats_single_deep_tree_on_noise(self):
        X, y = _toy_regression(n=300, noise=0.5, seed=9)
        train, test = slice(0, 250), slice(250, 300)
        tree = DecisionTreeRegressor(random_state=0).fit(X[train], y[train])
        forest = RandomForestRegressor(n_estimators=30, random_state=0).fit(X[train], y[train])
        assert forest.score(X[test], y[test]) >= tree.score(X[test], y[test]) - 0.02

    def test_prediction_is_average_of_trees(self):
        X, y = _toy_regression(n=80)
        forest = RandomForestRegressor(n_estimators=5, random_state=1).fit(X, y)
        manual = np.mean([tree.predict(X[:3]) for tree in forest.estimators_], axis=0)
        assert np.allclose(forest.predict(X[:3]), manual)

    def test_reproducible_with_seed(self):
        X, y = _toy_regression(n=60)
        a = RandomForestRegressor(n_estimators=10, random_state=42).fit(X, y).predict(X[:5])
        b = RandomForestRegressor(n_estimators=10, random_state=42).fit(X, y).predict(X[:5])
        assert np.allclose(a, b)

    def test_invalid_estimator_count_raises(self):
        with pytest.raises(ConfigurationError):
            RandomForestRegressor(n_estimators=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict([[0.0]])
