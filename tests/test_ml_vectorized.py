"""Equivalence pins: vectorized ML hot paths vs the per-row oracles.

The flat-array tree/forest traversals and the ``argpartition`` neighbour
search must stay **bit-identical** to the per-row reference
implementations in ``repro.ml.reference`` (the pre-vectorized bodies);
the chunked L1/L-infinity metrics must be block-size invariant; and the
vectorized correlation study must agree with its per-sample oracle to
1e-9 (reduction order differs, so the pin is tolerance- not bit-exact).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import run_correlation_study
from repro.core.reference import reference_run_correlation_study
from repro.ml import distances
from repro.ml.distances import (
    chebyshev_distances,
    euclidean_distances,
    manhattan_distances,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsClassifier, KNeighborsRegressor, stable_kneighbors
from repro.ml.reference import (
    ReferenceKNeighborsRegressor,
    reference_forest_predict,
    reference_kneighbors,
    reference_knn_predict,
    reference_tree_predict,
)
from repro.ml.tree import DecisionTreeRegressor


def _regression_data(rng, n, d, duplicates=0):
    X = rng.normal(size=(n, d))
    if duplicates:
        X = np.concatenate([X, X[rng.integers(0, n, size=duplicates)]])
    y = rng.normal(size=X.shape[0])
    return X, y


class TestFlatTreeEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2 ** 16),
        max_depth=st.one_of(st.none(), st.integers(1, 8)),
        min_samples_leaf=st.integers(1, 5),
    )
    def test_tree_predict_bit_identical_to_node_walk(self, seed, max_depth,
                                                     min_samples_leaf):
        rng = np.random.default_rng(seed)
        X, y = _regression_data(rng, 60, 4)
        Xq = rng.normal(size=(40, 4))
        tree = DecisionTreeRegressor(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf,
            max_features=0.75, random_state=seed,
        ).fit(X, y)
        assert np.array_equal(tree.predict(Xq), reference_tree_predict(tree, Xq))

    def test_flat_layout_shapes(self):
        rng = np.random.default_rng(0)
        X, y = _regression_data(rng, 100, 3)
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        n = tree.node_count()
        assert tree.feature_.shape == tree.threshold_.shape == tree.value_.shape == (n,)
        leaves = tree.feature_ == -1
        assert np.all(tree.children_left_[leaves] == -1)
        internal = ~leaves
        # Child ids point strictly forward (breadth-first layout).
        assert np.all(tree.children_left_[internal] > np.nonzero(internal)[0])
        assert np.all(tree.children_right_[internal] > np.nonzero(internal)[0])

    def test_single_leaf_tree_predicts_constant(self):
        tree = DecisionTreeRegressor().fit([[1.0], [2.0]], [3.0, 3.0])
        assert tree.node_count() == 1
        assert np.array_equal(tree.predict([[0.0], [9.0]]), [3.0, 3.0])

    def test_forest_predict_bit_identical_to_tree_loop(self):
        rng = np.random.default_rng(7)
        X, y = _regression_data(rng, 150, 5)
        Xq = rng.normal(size=(60, 5))
        forest = RandomForestRegressor(
            n_estimators=15, max_depth=6, random_state=3
        ).fit(X, y)
        assert np.array_equal(forest.predict(Xq), reference_forest_predict(forest, Xq))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), n_estimators=st.integers(1, 8))
    def test_forest_equivalence_property(self, seed, n_estimators):
        rng = np.random.default_rng(seed)
        X, y = _regression_data(rng, 50, 3)
        forest = RandomForestRegressor(
            n_estimators=n_estimators, max_depth=4, random_state=seed
        ).fit(X, y)
        Xq = rng.normal(size=(20, 3))
        assert np.array_equal(forest.predict(Xq), reference_forest_predict(forest, Xq))


class TestStableKneighborsEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2 ** 16),
        k=st.integers(1, 12),
        duplicates=st.integers(0, 30),
    )
    def test_kneighbors_bit_identical_to_full_stable_sort(self, seed, k, duplicates):
        rng = np.random.default_rng(seed)
        X, y = _regression_data(rng, 25, 3, duplicates=duplicates)
        model = KNeighborsRegressor(n_neighbors=k).fit(X, y)
        Xq = np.concatenate([rng.normal(size=(10, 3)), X[:10]])
        dist_v, idx_v = model.kneighbors(Xq)
        dist_r, idx_r = reference_kneighbors(model, Xq)
        assert np.array_equal(idx_v, idx_r)
        assert np.array_equal(dist_v, dist_r)
        assert np.array_equal(model.predict(Xq), reference_knn_predict(model, Xq))

    def test_boundary_tie_rows_fall_back_deterministically(self):
        # Five training points all at distance 1 from the query: the k-th
        # candidate distance ties with excluded rows, which is exactly the
        # case where raw argpartition output is platform-dependent.
        X_train = np.array([[1.0], [-1.0], [3.0], [1.0], [-1.0]]) + 1.0
        y = np.arange(5.0)
        model = KNeighborsRegressor(n_neighbors=2, weights="uniform").fit(
            X_train - 1.0, y
        )
        dist, idx = model.kneighbors([[0.0]])
        assert idx.tolist() == [[0, 1]]  # smallest training indices win the tie
        assert np.array_equal(dist, [[1.0, 1.0]])

    def test_duplicated_training_rows_resolve_to_smallest_indices(self):
        # Regression for non-deterministic tie-breaking: with every training
        # row duplicated, the neighbour set must be the lowest training
        # indices, in index order — on every platform and numpy version.
        base = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        X = np.repeat(base, 4, axis=0)   # rows 0-3, 4-7, 8-11
        y = np.arange(12.0)
        model = KNeighborsRegressor(n_neighbors=3, weights="uniform").fit(X, y)
        _dist, idx = model.kneighbors([[0.0, 0.0], [1.0, 1.0]])
        assert idx.tolist() == [[0, 1, 2], [4, 5, 6]]
        classifier = KNeighborsClassifier(n_neighbors=4).fit(X, y // 4)
        assert classifier.predict([[0.0, 0.0]])[0] == 0.0

    def test_classifier_matches_regressor_neighbor_selection(self):
        rng = np.random.default_rng(11)
        X = np.repeat(rng.normal(size=(15, 2)), 3, axis=0)
        labels = rng.integers(0, 3, size=45)
        classifier = KNeighborsClassifier(n_neighbors=5).fit(X, labels)
        helper = KNeighborsRegressor(n_neighbors=5).fit(X, labels.astype(float))
        _dist, idx = reference_kneighbors(helper, X[:10])
        # Majority vote over the deterministic neighbour set, smallest class wins ties.
        expected = []
        for row in idx:
            votes = np.bincount(labels[row], minlength=3)
            expected.append(int(np.argmax(votes)))
        assert classifier.predict(X[:10]).tolist() == expected

    def test_oracle_estimator_is_interchangeable(self):
        rng = np.random.default_rng(2)
        X, y = _regression_data(rng, 40, 3, duplicates=20)
        vec = KNeighborsRegressor(n_neighbors=4).fit(X, y)
        ref = ReferenceKNeighborsRegressor(n_neighbors=4).fit(X, y)
        Xq = rng.normal(size=(12, 3))
        assert np.array_equal(vec.predict(Xq), ref.predict(Xq))

    def test_stable_kneighbors_on_raw_matrix(self):
        dist = np.array([[3.0, 1.0, 2.0, 1.0], [0.0, 0.0, 0.0, 0.0]])
        nearest, idx = stable_kneighbors(dist, 2)
        assert idx.tolist() == [[1, 3], [0, 1]]
        assert nearest.tolist() == [[1.0, 1.0], [0.0, 0.0]]


class TestChunkedDistances:
    def test_blocked_metrics_are_block_size_invariant(self, monkeypatch):
        rng = np.random.default_rng(4)
        A = rng.normal(size=(37, 5))
        B = rng.normal(size=(23, 5))
        full_l1 = manhattan_distances(A, B)
        full_linf = chebyshev_distances(A, B)
        # Force many tiny blocks: results must be bit-identical.
        monkeypatch.setattr(distances, "BLOCK_ELEMENTS", 64)
        assert np.array_equal(manhattan_distances(A, B), full_l1)
        assert np.array_equal(chebyshev_distances(A, B), full_linf)

    def test_euclidean_exact_match_is_exact_zero(self):
        # Large-magnitude coordinates make the expanded form cancel
        # catastrophically; the rescue pass must restore the true values.
        A = np.array([[1234.5678, 9876.5432], [1234.5679, 9876.5431]])
        D = euclidean_distances(A, A)
        assert D[0, 0] == 0.0 and D[1, 1] == 0.0
        true_dist = np.hypot(1e-4, 1e-4)
        assert D[0, 1] == pytest.approx(true_dist, rel=1e-9)
        assert D[0, 1] > 0.0

    def test_exact_match_prediction_under_distance_weights(self):
        # A query equal to a training row reproduces its target exactly,
        # even when cancellation noise would otherwise hide the match.
        X = np.array([[1234.5678, 9876.5432], [1234.5679, 9876.5431], [5000.0, 1.0]])
        y = np.array([10.0, 20.0, 30.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        assert model.predict([X[0]])[0] == 10.0
        assert model.predict([X[1]])[0] == 20.0


class TestCorrelationStudyEquivalence:
    def test_vectorized_study_matches_reference(self, small_wer_dataset,
                                                small_pue_dataset):
        names = ["memory_accesses_per_cycle", "wait_cycles", "hdp", "treuse", "ipc"]
        vectorized = run_correlation_study(
            small_wer_dataset, small_pue_dataset, feature_names=names
        )
        reference = reference_run_correlation_study(
            small_wer_dataset, small_pue_dataset, feature_names=names
        )
        for name in names:
            assert vectorized.rs_wer(name) == pytest.approx(
                reference.rs_wer(name), abs=1e-9
            )
            assert vectorized.rs_pue(name) == pytest.approx(
                reference.rs_pue(name), abs=1e-9
            )
