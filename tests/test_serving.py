"""The serving layer: registry round-trips, batched grids, the facade.

Three contracts are pinned here:

* **Registry round-trips are exact.**  ``save_estimator``/``save_model``
  followed by a load reproduces predictions ``np.array_equal`` across
  every model family (tree, forest, KNN, SVM); corrupted or missing
  bundles raise :class:`~repro.errors.RegistryError`.
* **The batched API never changes numbers.**  ``predict`` is a wrapper
  over ``predict_batch``; ``predict_grid`` matches the per-point
  reference (:func:`~repro.core.reference.reference_predict_grid`) to a
  documented 1e-9 relative tolerance (BLAS batch shape may differ in
  the last ulps).
* **The facade is transparent.**  Cached and batched
  :class:`~repro.serving.PredictionService` responses equal direct
  ``predict_batch`` output, including under concurrent load.
"""

from __future__ import annotations

import json
import logging
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import WorkloadAwarePredictor
from repro.core.reference import reference_predict_grid
from repro.dram.operating import OperatingPoint
from repro.errors import ConfigurationError, NotFittedError, RegistryError
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.scaling import (
    ColumnLogTransformer,
    ColumnWeightTransformer,
    MinMaxScaler,
    StandardScaler,
)
from repro.ml.svm import SVR
from repro.ml.tree import DecisionTreeRegressor
from repro.serving import (
    MODEL_BUNDLE_SCHEMA,
    ModelRegistry,
    PredictionService,
    PredictRequest,
    load_estimator,
    load_model,
    save_estimator,
    save_model,
)

WORKLOADS = ("memcached", "kmeans", "bfs")
TREFPS = (1.173, 2.283)
TEMPERATURES = (50.0, 60.0)
OP = OperatingPoint.relaxed(2.283, 50.0)


@pytest.fixture(scope="module")
def predictor(small_campaign):
    return WorkloadAwarePredictor().fit(small_campaign)


def _training_data(seed: int = 5, n: int = 60, d: int = 5):
    rng = np.random.default_rng(seed)
    X = np.abs(rng.normal(size=(n, d))) + 0.1
    y = rng.normal(size=n)
    return X, y


def _estimator_factories():
    return {
        "tree": lambda: DecisionTreeRegressor(
            max_depth=6, min_samples_leaf=2, max_features=0.8, random_state=3
        ),
        "forest": lambda: RandomForestRegressor(
            n_estimators=6, max_depth=5, min_samples_leaf=2,
            max_features=0.8, random_state=3,
        ),
        "knn": lambda: KNeighborsRegressor(n_neighbors=3, weights="distance"),
        "svm": lambda: SVR(kernel="rbf", C=5.0, epsilon=0.05, gamma="scale"),
    }


# ---------------------------------------------------------------------------
# Estimator bundles: every family round-trips bit-identically.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(_estimator_factories()))
def test_estimator_round_trip_is_exact(family, tmp_path):
    X, y = _training_data()
    estimator = _estimator_factories()[family]().fit(X, y)
    X_query, _ = _training_data(seed=7, n=25)
    expected = estimator.predict(X_query)

    save_estimator(estimator, tmp_path / family)
    restored = load_estimator(tmp_path / family)
    assert type(restored) is type(estimator)
    assert np.array_equal(restored.predict(X_query), expected)


@pytest.mark.parametrize("family", sorted(_estimator_factories()))
def test_pipeline_round_trip_is_exact(family, tmp_path):
    X, y = _training_data()
    weights = np.linspace(1.0, 3.0, X.shape[1])
    pipeline = Pipeline([
        ("log", ColumnLogTransformer([0, 2])),
        ("scaler", StandardScaler()),
        ("weights", ColumnWeightTransformer(weights)),
        ("model", _estimator_factories()[family]()),
    ]).fit(X, y)
    X_query, _ = _training_data(seed=11, n=25)
    expected = pipeline.predict(X_query)

    save_estimator(pipeline, tmp_path / family)
    restored = load_estimator(tmp_path / family)
    assert [name for name, _step in restored.steps] == ["log", "scaler", "weights", "model"]
    assert np.array_equal(restored.predict(X_query), expected)


def test_minmax_scaler_round_trip(tmp_path):
    X, _ = _training_data()
    scaler = MinMaxScaler().fit(X)
    save_estimator(scaler, tmp_path / "scaler")
    restored = load_estimator(tmp_path / "scaler")
    assert np.array_equal(restored.transform(X), scaler.transform(X))


def test_unfitted_estimator_is_rejected(tmp_path):
    with pytest.raises(NotFittedError):
        save_estimator(DecisionTreeRegressor(), tmp_path / "bundle")


def test_unknown_estimator_type_is_rejected(tmp_path):
    with pytest.raises(RegistryError, match="no serialization codec"):
        save_estimator(object(), tmp_path / "bundle")


# ---------------------------------------------------------------------------
# Corrupted / missing bundles.
# ---------------------------------------------------------------------------
def _fitted_tree_bundle(tmp_path):
    X, y = _training_data()
    tree = DecisionTreeRegressor(max_depth=4, random_state=1).fit(X, y)
    return save_estimator(tree, tmp_path / "bundle")


def test_missing_bundle_raises(tmp_path):
    with pytest.raises(RegistryError, match="missing manifest"):
        load_estimator(tmp_path / "nowhere")


def test_corrupt_manifest_json_raises(tmp_path):
    path = _fitted_tree_bundle(tmp_path)
    (path / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(RegistryError, match="corrupted manifest"):
        load_estimator(path)


def test_wrong_schema_raises(tmp_path):
    path = _fitted_tree_bundle(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    manifest["schema"] = "repro.model_bundle/v999"
    (path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(RegistryError, match="unsupported bundle schema"):
        load_estimator(path)


def test_wrong_kind_raises(tmp_path):
    path = _fitted_tree_bundle(tmp_path)
    with pytest.raises(RegistryError, match="expected a 'predictor'"):
        load_model(path)


def test_missing_arrays_file_raises(tmp_path):
    path = _fitted_tree_bundle(tmp_path)
    (path / "arrays.npz").unlink()
    with pytest.raises(RegistryError, match="missing arrays.npz"):
        load_estimator(path)


def test_truncated_arrays_raise(tmp_path):
    path = _fitted_tree_bundle(tmp_path)
    # Rewrite the npz without the tree's threshold array.
    with np.load(path / "arrays.npz") as stored:
        arrays = {key: stored[key] for key in stored.files}
    arrays.pop("estimator/threshold_")
    np.savez(path / "arrays.npz", **arrays)
    with pytest.raises(RegistryError, match="missing array"):
        load_estimator(path)


def test_manifest_is_environment_stamped(tmp_path):
    path = _fitted_tree_bundle(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    assert manifest["schema"] == MODEL_BUNDLE_SCHEMA
    assert "python_version" in manifest["environment"]
    assert "numpy_version" in manifest["environment"]


# ---------------------------------------------------------------------------
# Predictor bundles and the versioned registry.
# ---------------------------------------------------------------------------
def test_save_model_requires_fitted_predictor(tmp_path):
    with pytest.raises(RegistryError, match="unfitted"):
        save_model(WorkloadAwarePredictor(), tmp_path / "bundle")


def test_model_round_trip_is_exact(predictor, tmp_path):
    path = save_model(predictor, tmp_path / "bundle")
    restored = load_model(path)

    assert restored.ranks == predictor.ranks
    assert restored.config == predictor.config
    for op in (OperatingPoint.relaxed(t, c) for t in TREFPS for c in TEMPERATURES):
        original = predictor.predict_batch(WORKLOADS, [op])
        reloaded = restored.predict_batch(WORKLOADS, [op])
        assert np.array_equal(original.wer, reloaded.wer)
        assert original.pue is not None and np.array_equal(original.pue, reloaded.pue)


def test_registry_versioning(predictor, tmp_path):
    registry = ModelRegistry(tmp_path)
    assert registry.models() == []
    assert registry.save("wer", predictor) == "v1"
    assert registry.save("wer", predictor) == "v2"
    assert registry.models() == ["wer"]
    assert registry.versions("wer") == ["v1", "v2"]
    assert registry.latest_version("wer") == "v2"
    assert registry.path("wer").name == "v2"

    loaded = registry.load("wer")
    pinned = registry.load("wer", version="v1")
    batch = predictor.predict_batch(WORKLOADS, [OP])
    assert np.array_equal(loaded.predict_batch(WORKLOADS, [OP]).wer, batch.wer)
    assert np.array_equal(pinned.predict_batch(WORKLOADS, [OP]).wer, batch.wer)

    with pytest.raises(RegistryError, match="no model named"):
        registry.latest_version("missing")
    with pytest.raises(RegistryError, match="no version"):
        registry.load("wer", version="v9")
    with pytest.raises(RegistryError, match="invalid model name"):
        registry.save("../escape", predictor)


# ---------------------------------------------------------------------------
# The batched prediction API.
# ---------------------------------------------------------------------------
def test_predict_is_a_batch_wrapper(predictor):
    result = predictor.predict("memcached", OP)
    batch = predictor.predict_batch(["memcached"], [OP])
    assert result.wer_by_rank == batch.result(0).wer_by_rank
    assert result.pue == batch.result(0).pue


def test_predict_batch_broadcasts_and_pairs(predictor):
    ops = [OperatingPoint.relaxed(t, 50.0) for t in TREFPS]
    paired = predictor.predict_batch(["memcached", "kmeans"], ops)
    assert len(paired) == 2
    scalar_op = predictor.predict_batch(WORKLOADS, [OP])
    assert len(scalar_op) == len(WORKLOADS)
    for index, name in enumerate(WORKLOADS):
        single = predictor.predict(name, OP)
        assert single.wer_by_rank == scalar_op.result(index).wer_by_rank
    with pytest.raises(ConfigurationError, match="pair up elementwise"):
        predictor.predict_batch(WORKLOADS, ops)


def test_predict_grid_matches_per_point_reference(predictor):
    grid = predictor.predict_grid(WORKLOADS, TREFPS, TEMPERATURES)
    assert grid.shape == (len(WORKLOADS), len(TREFPS), len(TEMPERATURES), 1)
    assert grid.num_predictions == len(WORKLOADS) * len(TREFPS) * len(TEMPERATURES)
    ref_wer, ref_pue = reference_predict_grid(
        predictor, WORKLOADS, TREFPS, TEMPERATURES, grid.vdd_v
    )
    np.testing.assert_allclose(grid.wer, ref_wer, rtol=1e-9)
    assert grid.pue is not None and ref_pue is not None
    np.testing.assert_allclose(grid.pue, ref_pue, rtol=1e-9)
    # wer_for slices the per-rank surface.
    assert np.array_equal(grid.wer_for(predictor.ranks[0]), grid.wer[0])


def test_predict_grid_validates_axes(predictor):
    with pytest.raises(ConfigurationError):
        predictor.predict_grid(WORKLOADS, (), TEMPERATURES)
    with pytest.raises(ConfigurationError):
        predictor.predict_grid(WORKLOADS, (-1.0,), TEMPERATURES)


def test_deprecated_op_keyword_warns_once_per_call(predictor, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.core.predictor"):
        via_shim = predictor.predict("memcached", op=OP)
    assert "deprecated" in caplog.text
    assert via_shim.wer_by_rank == predictor.predict("memcached", OP).wer_by_rank
    with pytest.raises(ConfigurationError, match="both"):
        predictor.predict("memcached", OP, op=OP)
    with pytest.raises(ConfigurationError, match="requires an operating_point"):
        predictor.predict("memcached")


# ---------------------------------------------------------------------------
# The serving facade.
# ---------------------------------------------------------------------------
def test_service_requires_fitted_predictor():
    with pytest.raises(ConfigurationError, match="fitted"):
        PredictionService(WorkloadAwarePredictor())


def test_service_matches_direct_predictions(predictor):
    direct = predictor.predict_batch(WORKLOADS, [OP])
    with PredictionService(predictor, batch_window_s=0.0) as service:
        for index, name in enumerate(WORKLOADS):
            response = service.predict(name, OP)
            assert response.ranks == direct.ranks
            assert np.array_equal(np.array(response.wer), direct.wer[:, index])
            assert response.pue == float(direct.pue[index])


def test_service_cache_hits_and_stats(predictor):
    with PredictionService(predictor, batch_window_s=0.0) as service:
        first = service.predict("memcached", OP)
        second = service.predict("memcached", OP)
        stats = service.stats()
    assert not first.cached
    assert second.cached
    assert first.wer == second.wer and first.pue == second.pue
    assert stats.requests == 2
    assert stats.cache_hits == 1 and stats.cache_misses == 1
    assert stats.predictions == 1
    assert 0.0 < stats.hit_rate < 1.0


def test_service_concurrent_load_is_consistent(predictor):
    requests = [
        PredictRequest.at(name, OperatingPoint.relaxed(trefp, temp))
        for name in WORKLOADS
        for trefp in TREFPS
        for temp in TEMPERATURES
    ]
    direct = predictor.predict_batch(
        [r.workload for r in requests], [r.operating_point() for r in requests]
    )
    with PredictionService(predictor, batch_window_s=0.002) as service:
        with ThreadPoolExecutor(max_workers=6) as pool:
            rounds = list(pool.map(service.predict_many, [requests] * 4))
        stats = service.stats()
    for responses in rounds:
        for index, response in enumerate(responses):
            assert np.array_equal(np.array(response.wer), direct.wer[:, index])
            assert response.pue == float(direct.pue[index])
    assert stats.requests == 4 * len(requests)
    # Duplicate keys coalesce: far fewer model calls than requests.
    assert stats.predictions < stats.requests
    assert stats.max_batch_size >= 1


def test_service_cache_disabled(predictor):
    with PredictionService(predictor, cache_size=0, batch_window_s=0.0) as service:
        first = service.predict("memcached", OP)
        second = service.predict("memcached", OP)
        stats = service.stats()
    assert not first.cached and not second.cached
    assert stats.cache_hits == 0 and stats.cache_misses == 2
    assert first.wer == second.wer


def test_service_lru_evicts_oldest(predictor):
    with PredictionService(predictor, cache_size=2, batch_window_s=0.0) as service:
        ops = [OperatingPoint.relaxed(t, c) for t in TREFPS for c in TEMPERATURES]
        for op in ops[:3]:
            service.predict("memcached", op)
        # The first operating point was evicted; the latest two are hits.
        assert service.predict("memcached", ops[2]).cached
        assert service.predict("memcached", ops[1]).cached
        assert not service.predict("memcached", ops[0]).cached


def test_service_close_rejects_new_work(predictor):
    service = PredictionService(predictor, batch_window_s=0.0)
    service.predict("memcached", OP)
    service.close()
    service.close()   # idempotent
    with pytest.raises(ConfigurationError, match="closed"):
        service.submit(PredictRequest.at("memcached", OP))


def test_service_propagates_model_errors(predictor):
    with PredictionService(predictor, batch_window_s=0.0) as service:
        future = service.submit(PredictRequest(
            workload="no-such-workload", trefp_s=OP.trefp_s,
            vdd_v=OP.vdd_v, temperature_c=OP.temperature_c,
        ))
        with pytest.raises(Exception):
            future.result(timeout=10.0)


def test_request_validation():
    with pytest.raises(ConfigurationError):
        PredictRequest(workload="", trefp_s=2.283, vdd_v=1.428, temperature_c=50.0)
    with pytest.raises(ConfigurationError):
        PredictRequest(workload="memcached", trefp_s=-1.0, vdd_v=1.428,
                       temperature_c=50.0)
