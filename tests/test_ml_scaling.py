"""Tests for the scaling / column transformers."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.scaling import (
    ColumnLogTransformer,
    ColumnWeightTransformer,
    LogTransformer,
    MinMaxScaler,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        X = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0)
        assert np.allclose(Z.std(axis=0), 1.0)

    def test_constant_column_does_not_produce_nan(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_transform_round_trip(self):
        X = np.array([[1.0, 2.0], [4.0, 8.0], [9.0, 1.0]])
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_nonzero_column_is_centred_to_zero(self):
        # Regression (hypothesis counterexample): the mean of three copies of
        # 0.1 is one ulp off 0.1, leaving std ~ 1e-17 instead of exactly 0;
        # the old `std == 0.0` guard then divided the matching roundoff
        # residual by it and returned -1.0 for a constant column.
        X = np.array([[0.1], [0.1], [0.1]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z, 0.0, atol=1e-9)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)

    def test_constant_large_magnitude_column_is_centred_to_zero(self):
        # Same failure mode at the other end of the feature scale: raw
        # counter values are large, so the roundoff std scales with |mean|.
        X = np.full((7, 3), [997.7, 1.0e6, -3.3])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z, 0.0, atol=1e-9)

    def test_tiny_but_real_variation_is_preserved(self):
        X = np.array([[1.0], [1.0 + 1e-6]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.std(axis=0), 1.0)

    def test_large_sample_small_relative_variance_is_not_clamped(self):
        # The noise floor must stay logarithmic in the sample count: a
        # linear-in-n bound (n * eps * |mean|) reaches 0.22 here and would
        # silently treat a real std of 0.05 around mean 1e9 as constant.
        rng = np.random.default_rng(0)
        X = 1e9 + rng.normal(0.0, 0.05, size=(1_000_000, 1))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-6)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-6)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch_raises(self):
        scaler = StandardScaler().fit([[1.0, 2.0]])
        with pytest.raises(ValueError):
            scaler.transform([[1.0, 2.0, 3.0]])


class TestMinMaxScaler:
    def test_range_is_zero_one(self):
        X = np.array([[0.0], [5.0], [10.0]])
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_constant_column_maps_to_zero(self):
        Z = MinMaxScaler().fit_transform([[3.0], [3.0]])
        assert np.allclose(Z, 0.0)


class TestColumnLogTransformer:
    def test_only_selected_columns_are_transformed(self):
        X = np.array([[10.0, 10.0], [100.0, 100.0]])
        Z = ColumnLogTransformer(columns=[0]).fit_transform(X)
        assert Z[0, 0] == pytest.approx(1.0, abs=1e-6)
        assert Z[1, 0] == pytest.approx(2.0, abs=1e-6)
        assert np.allclose(Z[:, 1], X[:, 1])

    def test_zero_values_use_offset(self):
        Z = ColumnLogTransformer(columns=[0], offset=1e-6).fit_transform([[0.0]])
        assert Z[0, 0] == pytest.approx(-6.0)

    def test_out_of_range_column_raises(self):
        with pytest.raises(ValueError):
            ColumnLogTransformer(columns=[5]).fit([[1.0, 2.0]])


class TestColumnWeightTransformer:
    def test_weights_are_applied(self):
        Z = ColumnWeightTransformer([2.0, 1.0]).fit_transform([[3.0, 3.0]])
        assert Z[0, 0] == pytest.approx(6.0)
        assert Z[0, 1] == pytest.approx(3.0)

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            ColumnWeightTransformer([1.0, 0.0])

    def test_rejects_mismatched_width(self):
        with pytest.raises(ValueError):
            ColumnWeightTransformer([1.0]).fit([[1.0, 2.0]])


class TestLogTransformer:
    def test_round_trip(self):
        transformer = LogTransformer()
        values = np.array([1e-9, 1e-5, 1.0])
        back = transformer.inverse_transform(transformer.transform(values))
        assert np.allclose(back, values)
