"""Columnar dataset builders: equivalence with the per-sample reference.

``build_wer_dataset`` / ``build_pue_dataset`` stream a campaign's
columnar store straight into a :class:`ColumnarDataset`; the pre-columnar
per-``Sample`` implementations live on in ``repro.core.reference`` as the
independent reference.  Every matrix comparison in this file is exact
(``tobytes()`` on floats) — that is the columnar-vs-per-sample API
contract, mirroring the grid engine's scalar-vs-batch contract.

Also pinned here: the dataset error paths (missing profiles list every
absent workload, empty campaigns raise for both builders, rank-less
datasets raise from ``ranks()``) and mutation semantics of the lazily
materialized sample view.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization.campaign import CampaignConfig, CampaignResult
from repro.core.dataset import ErrorDataset, build_pue_dataset, build_wer_dataset
from repro.core.features import INPUT_SET_1, INPUT_SET_2, INPUT_SET_3
from repro.core.reference import (
    reference_build_pue_dataset,
    reference_build_wer_dataset,
)
from repro.errors import DataError


def _assert_identical_matrices(columnar, reference, feature_set):
    Xc, yc, gc = columnar.matrices(feature_set)
    Xr, yr, gr = reference.matrices(feature_set)
    assert Xc.dtype == Xr.dtype and Xc.shape == Xr.shape
    assert Xc.tobytes() == Xr.tobytes()
    assert yc.tobytes() == yr.tobytes()
    assert bool((gc == gr).all())


class TestColumnarEquivalence:
    @pytest.mark.parametrize("feature_set", [INPUT_SET_1, INPUT_SET_2, INPUT_SET_3],
                             ids=lambda fs: fs.name)
    def test_wer_matrices_bit_identical(self, small_campaign, small_profiles,
                                        feature_set):
        columnar = build_wer_dataset(small_campaign, small_profiles)
        reference = reference_build_wer_dataset(small_campaign, small_profiles)
        _assert_identical_matrices(columnar, reference, feature_set)

    def test_pue_matrices_bit_identical(self, small_campaign, small_profiles):
        columnar = build_pue_dataset(small_campaign, small_profiles)
        reference = reference_build_pue_dataset(small_campaign, small_profiles)
        _assert_identical_matrices(columnar, reference, INPUT_SET_2)

    def test_materialized_samples_equal_reference(self, small_campaign,
                                                  small_profiles):
        columnar = build_wer_dataset(small_campaign, small_profiles)
        reference = reference_build_wer_dataset(small_campaign, small_profiles)
        assert columnar.samples == reference.samples
        pue = build_pue_dataset(small_campaign, small_profiles)
        assert pue.samples == reference_build_pue_dataset(
            small_campaign, small_profiles
        ).samples

    def test_group_accessors_match(self, small_campaign, small_profiles):
        columnar = build_wer_dataset(small_campaign, small_profiles)
        reference = reference_build_wer_dataset(small_campaign, small_profiles)
        assert columnar.workloads() == reference.workloads()
        assert columnar.ranks() == reference.ranks()
        assert columnar.targets_by_workload() == reference.targets_by_workload()

    def test_filter_rank_stays_columnar_and_matches(self, small_campaign,
                                                    small_profiles):
        columnar = build_wer_dataset(small_campaign, small_profiles)
        reference = reference_build_wer_dataset(small_campaign, small_profiles)
        for rank in reference.ranks()[:3]:
            filtered = columnar.filter_rank(rank)
            assert filtered.columns() is not None
            _assert_identical_matrices(
                filtered, reference.filter_rank(rank), INPUT_SET_1
            )

    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           keep=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_measurement_subsets_match_reference(self, small_campaign,
                                                 small_profiles, seed, keep):
        """Hypothesis: any campaign subset builds identical matrices."""
        measurements = small_campaign.wer_measurements
        rng = np.random.default_rng(seed)
        mask = rng.random(len(measurements)) < keep
        if not mask.any():
            mask[int(rng.integers(len(measurements)))] = True
        subset = [m for m, kept in zip(measurements, mask) if kept]
        campaign = CampaignResult(config=small_campaign.config,
                                  wer_measurements=subset)
        columnar = build_wer_dataset(campaign, small_profiles)
        reference = reference_build_wer_dataset(campaign, small_profiles)
        _assert_identical_matrices(columnar, reference, INPUT_SET_1)
        assert columnar.samples == reference.samples


class TestDatasetErrorPaths:
    def test_missing_profiles_error_lists_all_missing_workloads(
        self, small_campaign, small_profiles
    ):
        partial = {"backprop": small_profiles["backprop"]}
        with pytest.raises(DataError) as excinfo:
            build_wer_dataset(small_campaign, partial)
        message = str(excinfo.value)
        for workload in ("bfs", "kmeans", "memcached", "srad(par)"):
            assert workload in message

    def test_empty_campaign_raises_for_both_builders(self):
        empty = CampaignResult(config=CampaignConfig())
        with pytest.raises(DataError):
            build_wer_dataset(empty)
        with pytest.raises(DataError):
            build_pue_dataset(empty)

    def test_pue_only_dataset_ranks_raises(self, small_campaign, small_profiles):
        pue = build_pue_dataset(small_campaign, small_profiles)
        with pytest.raises(DataError):
            pue.ranks()

    def test_empty_dataset_ranks_raises(self):
        with pytest.raises(DataError):
            ErrorDataset().ranks()

    def test_unknown_rank_filter_raises(self, small_wer_dataset):
        from repro.dram.geometry import RankLocation

        with pytest.raises(DataError):
            small_wer_dataset.filter_rank(RankLocation(7, 1))

    def test_empty_columnar_dataset_matrices_raise(self, small_campaign,
                                                   small_profiles):
        dataset = build_wer_dataset(small_campaign, small_profiles)
        with pytest.raises(DataError):
            dataset.columns().subset(
                np.zeros(len(dataset), dtype=bool)
            ).matrices(INPUT_SET_1)


class TestMutationSemantics:
    def test_add_drops_columnar_backing(self, small_campaign, small_profiles):
        dataset = build_wer_dataset(small_campaign, small_profiles)
        assert dataset.columns() is not None
        sample = dataset.samples[0]
        dataset.add(sample)
        assert dataset.columns() is None
        assert len(dataset) == len(small_campaign.wer_measurements) + 1
        # The per-sample fallback serves matrices after mutation.
        X, y, groups = dataset.matrices(INPUT_SET_1)
        assert X.shape[0] == len(dataset)

    def test_direct_append_to_samples_detected_by_length(
        self, small_campaign, small_profiles
    ):
        dataset = build_wer_dataset(small_campaign, small_profiles)
        dataset.samples.append(dataset.samples[0])
        assert dataset.columns() is None
        assert dataset.matrices(INPUT_SET_1)[0].shape[0] == len(dataset)

    def test_samples_and_columns_are_mutually_exclusive(
        self, small_campaign, small_profiles
    ):
        columnar = build_wer_dataset(small_campaign, small_profiles)
        with pytest.raises(DataError):
            ErrorDataset(samples=[], columns=columnar.columns())
