"""Tests for the workload suite and the instrumentation layer."""

import pytest

from repro import units
from repro.errors import WorkloadError
from repro.workloads.base import TraceRecorder, float_to_word
from repro.workloads.caching import MemcachedWorkload
from repro.workloads.compute import BackpropWorkload, KmeansWorkload, NeedlemanWunschWorkload
from repro.workloads.lulesh import LuleshWorkload
from repro.workloads.micro import DataPatternWorkload, random_data_pattern, solid_data_pattern
from repro.workloads.registry import (
    ALL_WORKLOADS,
    CAMPAIGN_WORKLOADS,
    available_workloads,
    campaign_workload_names,
    create_workload,
)


class TestTraceRecorder:
    def test_alloc_returns_disjoint_page_aligned_arrays(self):
        recorder = TraceRecorder()
        a = recorder.alloc(10, "a")
        b = recorder.alloc(10, "b")
        assert a.base_address % 8 == 0
        assert b.base_address >= a.base_address + 10 * units.WORD_BYTES
        assert b.base_address % 4096 == 0

    def test_reads_and_writes_are_recorded_in_order(self):
        recorder = TraceRecorder()
        array = recorder.alloc(4)
        array.write(0, 1.5)
        assert array.read(0) == pytest.approx(1.5)
        assert recorder.num_accesses == 2
        assert recorder.accesses[0].is_write
        assert recorder.accesses[1].is_read
        assert recorder.accesses[0].instruction_index < recorder.accesses[1].instruction_index

    def test_written_value_is_raw_float_bits(self):
        recorder = TraceRecorder()
        array = recorder.alloc(1)
        array.write(0, 2.0)
        assert recorder.accesses[0].value == float_to_word(2.0)

    def test_compute_advances_instruction_counter_only(self):
        recorder = TraceRecorder()
        recorder.compute(100)
        assert recorder.instruction_count == 100
        assert recorder.num_accesses == 0

    def test_out_of_bounds_access_raises(self):
        recorder = TraceRecorder()
        array = recorder.alloc(2)
        with pytest.raises(WorkloadError):
            array.read(2)

    def test_negative_compute_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRecorder().compute(-1)


class TestWorkloadScheduling:
    def test_thread_chunks_cover_all_items(self):
        workload = BackpropWorkload(threads=8)
        chunks = workload.thread_chunks(100)
        assert sum(len(c) for c in chunks) == 100
        assert len(chunks) == 8

    def test_interleaved_schedule_is_a_permutation(self):
        workload = BackpropWorkload(threads=4)
        schedule = workload.interleaved_schedule(50)
        items = sorted(item for item, _thread in schedule)
        assert items == list(range(50))
        assert {thread for _item, thread in schedule} == {0, 1, 2, 3}

    def test_serial_schedule_uses_single_thread(self):
        workload = BackpropWorkload(threads=1)
        schedule = workload.interleaved_schedule(10)
        assert all(thread == 0 for _item, thread in schedule)


class TestRegistry:
    def test_campaign_has_fourteen_workloads(self):
        assert len(campaign_workload_names()) == 14

    def test_every_registry_entry_is_constructible(self):
        for name in available_workloads():
            workload = create_workload(name)
            assert workload.display_name == name

    def test_parallel_variants_use_eight_threads(self):
        assert create_workload("backprop(par)").threads == 8
        assert create_workload("backprop").threads == 1
        assert create_workload("memcached").threads == 8

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            create_workload("doom")

    def test_extra_workloads_not_in_campaign(self):
        assert "lulesh(O2)" in ALL_WORKLOADS
        assert "lulesh(O2)" not in CAMPAIGN_WORKLOADS


class TestKernels:
    def test_every_campaign_workload_produces_a_trace(self):
        for name in campaign_workload_names():
            recorder = create_workload(name).record_trace()
            assert recorder.num_accesses > 1000, name
            assert recorder.instruction_count > recorder.num_accesses, name
            assert recorder.allocated_bytes > 0, name

    def test_traces_are_deterministic(self):
        a = KmeansWorkload(threads=1, seed=5).record_trace()
        b = KmeansWorkload(threads=1, seed=5).record_trace()
        assert a.num_accesses == b.num_accesses
        assert [x.address for x in a.accesses[:200]] == [x.address for x in b.accesses[:200]]

    def test_different_seeds_change_the_data(self):
        a = KmeansWorkload(threads=1, seed=5).record_trace()
        b = KmeansWorkload(threads=1, seed=6).record_trace()
        assert [x.value for x in a.accesses[:50]] != [x.value for x in b.accesses[:50]]

    def test_parallel_variant_tags_multiple_threads(self):
        recorder = BackpropWorkload(threads=8).record_trace()
        assert {a.thread_id for a in recorder.accesses} == set(range(8))

    def test_nw_computes_a_dp_matrix(self):
        workload = NeedlemanWunschWorkload(threads=1, length=20)
        recorder = TraceRecorder()
        workload._rng = workload._rng  # no-op, keeps lint quiet
        workload.run(recorder)
        # The recorder's last accesses touch the DP matrix, whose final cell
        # holds the alignment score (a finite float).
        assert recorder.num_accesses > 20 * 20

    def test_memcached_mixes_reads_and_writes(self):
        recorder = MemcachedWorkload(threads=8, requests=500).record_trace()
        reads = sum(1 for a in recorder.accesses if a.is_read)
        writes = sum(1 for a in recorder.accesses if a.is_write)
        assert reads > writes > 0

    def test_lulesh_variants_differ_in_instruction_count(self):
        o2 = LuleshWorkload(optimization="O2", edge=6, steps=2).record_trace()
        aggressive = LuleshWorkload(optimization="F", edge=6, steps=2).record_trace()
        assert aggressive.instruction_count < o2.instruction_count
        assert abs(aggressive.num_accesses - o2.num_accesses) < 0.05 * o2.num_accesses

    def test_lulesh_rejects_unknown_optimization(self):
        with pytest.raises(ValueError):
            LuleshWorkload(optimization="O3")

    def test_data_pattern_variants(self):
        random_trace = random_data_pattern(words=256, sweeps=1).record_trace()
        solid_trace = solid_data_pattern(words=256, sweeps=1).record_trace()
        random_values = {a.value for a in random_trace.accesses if a.is_write}
        solid_values = {a.value for a in solid_trace.accesses if a.is_write}
        assert len(random_values) > 100
        assert solid_values == {float_to_word(0.0)}

    def test_data_pattern_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            DataPatternWorkload(pattern="stripes")

    def test_workload_with_zero_threads_rejected(self):
        with pytest.raises(WorkloadError):
            BackpropWorkload(threads=0)
