# repro-lint-fixture: path=src/repro/dram/fake_sampling.py
# expect: REP001:6 REP001:7 REP001:11 REP001:15
#
# Legacy global-state RNG: the module seeds and draws from the shared
# numpy global generator and imports the stdlib random module.
import random
from random import choice

import numpy as np

np.random.seed(1234)


def draw(n: int) -> "np.ndarray":
    return np.random.rand(n)
