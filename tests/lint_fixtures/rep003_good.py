# repro-lint-fixture: path=src/repro/core/fake_pipeline_ok.py
#
# Gated mutators and self-gating span() calls: the disabled-mode cost
# is one attribute check.
from repro.telemetry import get_telemetry


def run_fold(rows: int) -> int:
    telemetry = get_telemetry()
    with telemetry.span("fake.fold"):
        result = rows * 2
        if telemetry.enabled:
            telemetry.incr("fake.folds")
            telemetry.observe("fake.rows", float(rows))
    return result


def gauge_workers(workers: int) -> None:
    telemetry = get_telemetry()
    if workers > 1 and telemetry.enabled:
        telemetry.gauge("fake.workers", workers)
