# repro-lint-fixture: path=src/repro/core/fake_pipeline.py
# expect: REP003:12 REP003:18
#
# Ungated metric mutators: in disabled mode every call still builds its
# arguments and enters the method before bailing out.
from repro.telemetry import get_telemetry


def run_fold(rows: int) -> int:
    telemetry = get_telemetry()
    with telemetry.span("fake.fold"):
        telemetry.incr("fake.folds")
    return rows


def observe_rows(rows: int) -> None:
    worker_telemetry = get_telemetry()
    worker_telemetry.observe("fake.rows", float(rows))
