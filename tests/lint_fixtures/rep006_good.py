# repro-lint-fixture: path=src/repro/analysis/fake_api_ok.py
#
# Fully annotated public API; private helpers and nested closures are
# exempt so internal code can stay light.
def wer_from_counts(errors: int, words: int) -> float:
    return errors / words


def _internal_helper(value, factor):
    return value * factor


def make_adder(base: int) -> "object":
    def add(value):
        return base + value

    return add


class FakeModel:
    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def fit(self, X: "object", y: "object") -> "FakeModel":
        return self
