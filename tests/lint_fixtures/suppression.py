# repro-lint-fixture: path=src/repro/ml/fake_suppressed.py
# expect: REP004:11
#
# Line 7 carries a disable comment for its rule, so only the bare
# comparison on line 11 is reported.
def exact_sentinel(value: float) -> bool:
    return value == 0.0  # repro-lint: disable=REP004


def unsuppressed(value: float) -> bool:
    return value == 1.0
