# repro-lint-fixture: path=tests/fake_helpers.py
# expect: REP005:7 REP005:12 REP005:20
#
# Mutable defaults are shared across calls; bare except swallows
# KeyboardInterrupt and SystemExit.  Both rules apply everywhere,
# including test code.
def collect(row, acc=[]):
    acc.append(row)
    return acc


def merge(extra, base={"seed": 0}):
    base.update(extra)
    return base


def safe_parse(text):
    try:
        return int(text)
    except:
        return None
