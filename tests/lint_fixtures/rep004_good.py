# repro-lint-fixture: path=src/repro/ml/fake_guard_ok.py
#
# Ordered guards and np.array_equal express the same intent without
# equality on floats; integer equality is untouched by the rule.
import numpy as np


def is_degenerate(ss_tot: float) -> bool:
    return ss_tot <= 0.0


def bit_identical(a: "np.ndarray", b: "np.ndarray") -> bool:
    return bool(np.array_equal(a, b))


def count_matches(code: int) -> bool:
    return code == 3
