# repro-lint-fixture: path=src/repro/characterization/fake_clock_ok.py
#
# The monotonic clock is fine anywhere: it orders events within a run
# without tying results to the calendar.
import time


def elapsed(start: float) -> float:
    return time.perf_counter() - start


def tick() -> float:
    return time.monotonic()
