# repro-lint-fixture: path=src/repro/dram/fake_sampling_ok.py
#
# Explicit generator objects are the sanctioned sampling route: seeded
# default_rng, Generator-over-PCG64 (the crc32-keyed stream idiom) and
# SeedSequence spawning are all allowed.
import zlib

import numpy as np


def draw(n: int, seed: int) -> "np.ndarray":
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)


def keyed_stream(workload: str, repetition: int) -> "np.random.Generator":
    key = zlib.crc32(f"{workload}:{repetition}".encode())
    return np.random.Generator(np.random.PCG64(key))


def spawned(seed: int) -> "np.random.SeedSequence":
    return np.random.SeedSequence(seed)
