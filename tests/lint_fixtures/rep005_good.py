# repro-lint-fixture: path=tests/fake_helpers_ok.py
#
# None sentinels and narrow exception types.
from typing import Dict, List, Optional


def collect(row: int, acc: Optional[List[int]] = None) -> List[int]:
    if acc is None:
        acc = []
    acc.append(row)
    return acc


def merge(extra: Dict[str, int], base: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    merged = {"seed": 0} if base is None else dict(base)
    merged.update(extra)
    return merged


def safe_parse(text: str) -> Optional[int]:
    try:
        return int(text)
    except ValueError:
        return None
