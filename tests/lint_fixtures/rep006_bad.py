# repro-lint-fixture: path=src/repro/analysis/fake_api.py
# expect: REP006:6 REP006:6 REP006:11 REP006:20
#
# Public API without full annotations: callers cannot type-check
# against it and mypy's strict gate has nothing to hold on to.
def wer_from_counts(errors, words):
    return errors / words


# Missing the return annotation only.
def scale(value: float, factor: float = 2.0):
    return value * factor


class FakeModel:
    def __init__(self) -> None:
        self.fitted = False

    # Public method missing a parameter annotation.
    def fit(self, X, y: "object") -> "FakeModel":
        self.fitted = True
        return self
