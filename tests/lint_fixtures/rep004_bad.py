# repro-lint-fixture: path=src/repro/ml/fake_guard.py
# expect: REP004:8 REP004:13 REP004:19
#
# Scalar float equality: one ulp of drift silently flips the branch.


def is_zero(value: float) -> bool:
    return value == 0.0


def differs(value: float) -> bool:
    # A != against a float literal is the same trap.
    return value != 1.5


def matches(stored: float, key: int) -> bool:
    # Comparing against a float() conversion is still float equality,
    # even in a chained comparison.
    return 0.0 <= stored == float(key)
