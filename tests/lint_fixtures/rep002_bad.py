# repro-lint-fixture: path=src/repro/characterization/fake_clock.py
# expect: REP002:7 REP002:12 REP002:16
#
# Wall-clock reads in library code: results would depend on when the
# run happens.
import time
from time import time as wall_time
from datetime import datetime


def stamp() -> float:
    return time.time()


def started_at() -> "datetime":
    return datetime.now()
