# repro-lint-fixture: path=src/repro/telemetry/fake_report.py
#
# Inside telemetry/ the wall clock is allowed: run-report metadata is
# the one place a real timestamp belongs.
import time


def report_timestamp() -> float:
    return time.time()
