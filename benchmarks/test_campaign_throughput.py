"""Campaign grid engine: batch-vs-scalar equivalence and throughput floor.

The Section V campaign is a dense grid sweep (workloads x TREFP x
temperature x repetitions plus the 70 C UE study).  These benchmarks pin
two properties of the batched grid engine, mirroring how
``test_ecc_throughput.py`` pins the SECDED batch engine against the
scalar codec:

* ``run_grid`` reproduces the scalar reference loop — per-run calls of
  the model's scalar sampling API, the pre-grid implementation of
  ``CharacterizationExperiment.run`` — *bit for bit* on the paper's
  default grid;
* the batched sweep is at least 10x faster than that scalar loop.
"""

import time

import pytest

from repro.characterization.campaign import CampaignConfig
from repro.characterization.experiment import CharacterizationExperiment
from repro.characterization.reference import reference_scalar_run
from repro.workloads.registry import campaign_workload_names

pytestmark = pytest.mark.slow

CONFIG = CampaignConfig()


def _default_grid():
    """The default campaign's operating points: CE sweep + UE study."""
    return CONFIG.wer_operating_points(), CONFIG.ue_operating_points()


def _scalar_sweep(experiment, profiles):
    wer_ops, ue_ops = _default_grid()
    out = []
    for workload in campaign_workload_names():
        profile = profiles[workload]
        for op in wer_ops:
            for repetition in range(CONFIG.repetitions):
                out.append(reference_scalar_run(
                    experiment, workload, op, profile, repetition
                ))
        for op in ue_ops:
            for repetition in range(CONFIG.ue_repetitions):
                out.append(reference_scalar_run(
                    experiment, workload, op, profile, repetition
                ))
    return out


def _batched_sweep(experiment, profiles):
    wer_ops, ue_ops = _default_grid()
    out = []
    for workload in campaign_workload_names():
        profile = profiles[workload]
        for grid in (
            experiment.run_grid(
                workload, wer_ops, repetitions=CONFIG.repetitions, profile=profile
            ),
            experiment.run_grid(
                workload, ue_ops, repetitions=CONFIG.ue_repetitions, profile=profile
            ),
        ):
            for point_runs in grid:
                for run in point_runs:
                    out.append((run.rank_wer, run.ue_rank))
    return out


def test_default_grid_batch_matches_scalar_exactly(campaign_profiles):
    experiment = CharacterizationExperiment(seed=7)
    scalar = _scalar_sweep(experiment, campaign_profiles)
    batched = _batched_sweep(experiment, campaign_profiles)
    assert len(scalar) == len(batched) > 500
    mismatches = sum(
        1 for (s_wer, s_ue), (b_wer, b_ue) in zip(scalar, batched)
        if s_wer != b_wer or s_ue != b_ue
    )
    assert mismatches == 0


def test_campaign_grid_at_least_10x_scalar(campaign_profiles, bench_report):
    experiment = CharacterizationExperiment(seed=7)
    _batched_sweep(experiment, campaign_profiles)      # warm caches/imports

    # Min-of-N timing on both sides: the floor must hold on noisy shared CI
    # runners, where a single scheduling stall would skew a lone measurement.
    scalar_s = min(
        _timed(lambda: _scalar_sweep(experiment, campaign_profiles))
        for _ in range(3)
    )
    batch_s = min(
        _timed(lambda: _batched_sweep(experiment, campaign_profiles))
        for _ in range(5)
    )
    wer_ops, ue_ops = _default_grid()
    runs = len(campaign_workload_names()) * (
        len(wer_ops) * CONFIG.repetitions + len(ue_ops) * CONFIG.ue_repetitions
    )
    speedup = bench_report.record(
        "campaign_grid", floor=10.0, scalar_s=scalar_s, batch_s=batch_s,
        units_label="runs", work_items=runs,
    )
    assert speedup >= 10.0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
