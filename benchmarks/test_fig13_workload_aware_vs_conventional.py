"""Fig. 13: the workload-aware model vs the conventional constant-rate model.

The case study predicts the WER of two compiler variants of lulesh
(-O2 and aggressive -F) at 0.618 s / 70 C with a KNN model that never saw
lulesh during training, and compares that against the conventional
approach of assuming the rate measured with a random data-pattern
micro-benchmark.
"""

import numpy as np

from repro.core.conventional import ConventionalErrorModel
from repro.core.dataset import ErrorDataset
from repro.core.model import DramErrorModel, ModelConfig
from repro.dram.operating import OperatingPoint
from repro.ml.metrics import prediction_ratio
from repro.profiling.profiler import profile_workload

TARGET_OP = OperatingPoint.relaxed(0.618, 70.0)
LULESH_VARIANTS = ("lulesh(O2)", "lulesh(F)")


def _measured_wer(campaign, workload):
    return campaign.wer_by_workload(TARGET_OP.trefp_s, TARGET_OP.temperature_c)[workload]


def _train_and_predict(extended_wer_dataset):
    """Per-rank KNN models trained without lulesh, averaged per workload."""
    training = ErrorDataset(
        samples=[s for s in extended_wer_dataset
                 if s.workload not in LULESH_VARIANTS]
    )
    predictions = {}
    for workload in LULESH_VARIANTS:
        profile = profile_workload(workload)
        per_rank = []
        for rank in training.ranks():
            model = DramErrorModel(ModelConfig(family="knn", feature_set="set1"))
            model.fit(training.filter_rank(rank))
            per_rank.append(model.predict(TARGET_OP, profile.features))
        predictions[workload] = float(np.mean(per_rank))
    return predictions


def test_fig13_workload_aware_vs_conventional(benchmark, extended_campaign,
                                              extended_wer_dataset, print_table):
    predictions = benchmark.pedantic(
        _train_and_predict, args=(extended_wer_dataset,), rounds=1, iterations=1
    )

    measured = {w: _measured_wer(extended_campaign, w)
                for w in LULESH_VARIANTS + ("data-pattern-random",)}
    conventional = ConventionalErrorModel().fit(extended_wer_dataset)
    conventional_scores = conventional.evaluate(extended_wer_dataset)

    rows = []
    for workload in LULESH_VARIANTS:
        error = abs(predictions[workload] - measured[workload]) / measured[workload] * 100
        rows.append((workload, f"measured {measured[workload]:.3e}",
                     f"KNN predicted {predictions[workload]:.3e}", f"error {error:.0f}%"))
    rows.append(("data-pattern-random (conventional rate)",
                 f"measured {measured['data-pattern-random']:.3e}", "", ""))
    rows.append(("conventional model, all workloads",
                 f"mean misestimation {conventional_scores['estimation_factor']:.2f}x "
                 "[paper: 2.9x]", "", ""))
    print_table("Fig. 13: workload-aware vs conventional model (0.618 s, 70 C)", rows)

    # The workload-aware model tracks the measured WER to within a factor of
    # ~2, while the conventional constant-rate model is off by a much larger
    # multiplicative factor on average.
    for workload in LULESH_VARIANTS:
        assert prediction_ratio([measured[workload]], [predictions[workload]]) < 2.5
    assert conventional_scores["estimation_factor"] > 1.5
    knn_factor = np.mean([
        prediction_ratio([measured[w]], [predictions[w]]) for w in LULESH_VARIANTS
    ])
    assert conventional_scores["estimation_factor"] > knn_factor
    # The two compiler variants of lulesh have measurably different WER
    # (the paper reports ~29 %): the study's point is that the model can
    # resolve software-level effects of this size.
    o2, aggressive = measured["lulesh(O2)"], measured["lulesh(F)"]
    assert abs(o2 - aggressive) / min(o2, aggressive) > 0.02
