"""Ablation benches for the design choices called out in DESIGN.md.

These quantify how much each modelled mechanism contributes to the
reproduced behaviour: the implicit-refresh (access-driven recharge)
effect, the access-rate-driven interference term, and the KNN
hyper-parameters of the error model.
"""

import numpy as np

from repro.core.dataset import build_wer_dataset
from repro.core.evaluation import AccuracyEvaluator
from repro.dram.calibration import (
    DEFAULT_CALIBRATION,
    DramCalibration,
    WorkloadEffectCalibration,
)
from repro.dram.operating import OperatingPoint
from repro.dram.statistical import StatisticalErrorModel
from repro.ml.metrics import spearman_correlation
from repro.profiling.profiler import profile_workload
from repro.workloads.registry import campaign_workload_names

OP = OperatingPoint.relaxed(2.283, 50.0)


def _calibration_with(**overrides) -> DramCalibration:
    base = DEFAULT_CALIBRATION.workload
    params = {field: getattr(base, field) for field in base.__dataclass_fields__}
    params.update(overrides)
    return DramCalibration(
        retention=DEFAULT_CALIBRATION.retention,
        workload=WorkloadEffectCalibration(**params),
        ue=DEFAULT_CALIBRATION.ue,
        convergence_tau_s=DEFAULT_CALIBRATION.convergence_tau_s,
    )


def _per_workload_wer(calibration) -> dict:
    model = StatisticalErrorModel(calibration=calibration)
    return {
        name: model.expected_wer(OP, profile_workload(name).behavior(), name)
        for name in campaign_workload_names()
    }


def test_ablation_implicit_refresh(benchmark, print_table):
    """Without access-driven recharge, memcached stops being the safest workload."""
    def run():
        with_refresh = _per_workload_wer(DEFAULT_CALIBRATION)
        without_refresh = _per_workload_wer(
            _calibration_with(implicit_refresh_residual=1.0)
        )
        return with_refresh, without_refresh

    with_refresh, without_refresh = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = without_refresh["memcached"] / with_refresh["memcached"]
    spread_with = max(with_refresh.values()) / min(with_refresh.values())
    spread_without = max(without_refresh.values()) / min(without_refresh.values())
    print_table("Ablation: implicit refresh (access-driven recharge)",
                [("memcached WER without/with refresh effect", f"{ratio:.1f}x"),
                 ("workload spread with effect", f"{spread_with:.1f}x"),
                 ("workload spread without effect", f"{spread_without:.1f}x")])

    # The refresh effect is what keeps the short-reuse-time workloads safe.
    assert ratio > 2.0
    assert spread_with > spread_without


def test_ablation_interference(benchmark, print_table):
    """Without the disturbance term, the access rate loses its predictive power."""
    def correlation(calibration):
        wers = _per_workload_wer(calibration)
        rates = [profile_workload(name).feature("memory_accesses_per_cycle")
                 for name in wers]
        return spearman_correlation(rates, list(wers.values()))

    def run():
        return (
            correlation(DEFAULT_CALIBRATION),
            correlation(_calibration_with(interference_per_access_per_kcycle=0.0)),
        )

    with_interference, without_interference = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: access-rate interference term",
                [("rs(access rate, WER) with interference", f"{with_interference:+.2f}"),
                 ("rs(access rate, WER) without interference", f"{without_interference:+.2f}")])

    assert with_interference > without_interference


def test_ablation_knn_hyperparameters(benchmark, full_campaign, campaign_profiles,
                                      print_table):
    """Sensitivity of the KNN error model to the neighbour count."""
    from repro.core.model import _build_estimator  # noqa: PLC2701 - ablation hook
    import repro.core.model as model_module

    dataset = build_wer_dataset(full_campaign, campaign_profiles)
    rank = dataset.ranks()[0]
    rank_dataset = dataset.filter_rank(rank)
    evaluator = AccuracyEvaluator()

    def sweep():
        from repro.ml.knn import KNeighborsRegressor

        results = {}
        original = model_module._build_estimator
        try:
            for k in (1, 2, 3, 5, 7):
                model_module._build_estimator = (
                    lambda family, rs, num_inputs=10, _k=k:
                    KNeighborsRegressor(n_neighbors=_k, weights="distance")
                    if family == "knn" else original(family, rs, num_inputs)
                )
                report = evaluator.evaluate_wer(dataset, "knn", "set1", ranks=[rank])
                results[k] = report.average_rank_error
        finally:
            model_module._build_estimator = original
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Ablation: KNN neighbour count (leave-one-workload-out error, one rank)",
                [(f"k={k}", f"{error:.1f}%") for k, error in results.items()])

    assert all(error > 0 for error in results.values())
    # Very large neighbourhoods average across dissimilar workloads and hurt.
    assert min(results.values()) <= results[7]
    assert len(rank_dataset) > 0
