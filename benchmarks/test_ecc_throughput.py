"""Batch SECDED engine: scalar equivalence and throughput.

The (72,64) SECDED codec is the hot path of every cell-array-driven
experiment.  These benchmarks pin three properties of the batch engine:

* ``decode_batch`` classifies and corrects *exactly* like the scalar
  decoder — over 10k random codewords with injected 0/1/2-bit errors
  (including the overall parity bit) and a multi-bit tail;
* the batch pipeline is at least 20x faster than looping the scalar API
  word by word, and the bit-packed uint64-lane decode is at least 3x
  faster again than the retained byte-per-bit oracle on the *same*
  corrupted block — with both paths proven bit-identical first;
* a million-word (72M-cell) streamed cell-array write/read sweep
  completes in seconds.
"""

import time

import numpy as np
import pytest

from repro.dram.cells import CellArrayConfig, CellArraySimulator
from repro.dram.calibration import DramCalibration, RetentionCalibration
from repro.dram.ecc import ERROR_CLASS_ORDER, SecdedCode, bits_to_words
from repro.dram.geometry import DramGeometry, small_geometry

pytestmark = pytest.mark.slow

NUM_WORDS = 10_000


@pytest.fixture(scope="module")
def code():
    return SecdedCode()


@pytest.fixture(scope="module")
def corrupted_block(code):
    """10k codewords with 0/1/2-bit injected errors plus a multi-bit tail."""
    rng = np.random.default_rng(2019)
    words = rng.integers(0, 1 << 63, size=NUM_WORDS, dtype=np.uint64) * 2 + (
        rng.integers(0, 2, size=NUM_WORDS, dtype=np.uint64)
    )
    codewords = code.encode_batch(words)
    # Error multiplicity per word: ~25% clean, ~25% single, ~25% double,
    # the rest 3..5 bits; flips may land anywhere, parity bit included.
    num_errors = rng.choice([0, 1, 2, 3, 4, 5], size=NUM_WORDS,
                            p=[0.25, 0.25, 0.25, 0.1, 0.1, 0.05])
    for row, count in enumerate(num_errors):
        if count:
            positions = rng.choice(72, size=count, replace=False)
            codewords[row, positions] ^= 1
    return words, codewords


def test_batch_decode_matches_scalar_exactly(code, corrupted_block, print_table):
    words, codewords = corrupted_block
    batch = code.decode_batch(codewords)

    mismatches = 0
    for row in range(NUM_WORDS):
        scalar = code.decode(codewords[row])
        if (
            scalar.error_class is not ERROR_CLASS_ORDER[int(batch.error_codes[row])]
            or scalar.corrected_bit != int(batch.corrected_bits[row])
            or not np.array_equal(scalar.data, batch.data_bits[row])
        ):
            mismatches += 1
    assert mismatches == 0

    counts = batch.counts()
    print_table("Batch vs scalar decode over 10k corrupted codewords",
                [(cls.value, count) for cls, count in counts.items()])
    # Sanity: every class is exercised by the injected error mix.
    assert all(count > 0 for count in counts.values())


def test_batch_encode_matches_scalar_exactly(code, corrupted_block):
    words, _codewords = corrupted_block
    batch = code.encode_batch(words)
    for row in range(0, NUM_WORDS, 97):    # sampled: scalar encode is the slow path
        assert np.array_equal(batch[row], code.encode(int(words[row])))
    # Clean decode must return the original words bit for bit.
    decoded = code.decode_batch(batch)
    assert np.array_equal(decoded.data_words, words)
    assert not decoded.error_codes.any()


def test_batch_throughput_at_least_20x_scalar(code, corrupted_block, bench_report):
    words, codewords = corrupted_block

    start = time.perf_counter()
    for row in range(NUM_WORDS):
        code.decode_to_int(codewords[row])
    scalar_s = time.perf_counter() - start

    batch_s = min(
        _timed(lambda: code.decode_batch(codewords).data_words) for _ in range(3)
    )
    speedup = bench_report.record(
        "secded_decode", floor=20.0, scalar_s=scalar_s, batch_s=batch_s,
        units_label="words", work_items=NUM_WORDS,
    )
    assert speedup >= 20.0


def test_packed_decode_at_least_3x_unpacked(corrupted_block, bench_report):
    """The uint64-lane kernel vs the byte-per-bit oracle on one block.

    Bit-identity comes first — the speedup claim is only meaningful if
    the packed path returns exactly the oracle's data words, error codes
    and corrected-bit indices on the same corrupted codewords.
    """
    _words, codewords = corrupted_block
    packed = SecdedCode(packed=True)
    oracle = SecdedCode(packed=False)

    packed_result = packed.decode_batch(codewords)
    oracle_result = oracle.decode_batch(codewords)
    assert np.array_equal(packed_result.error_codes, oracle_result.error_codes)
    assert np.array_equal(packed_result.corrected_bits, oracle_result.corrected_bits)
    assert np.array_equal(packed_result.data_words, oracle_result.data_words)
    assert np.array_equal(packed_result.data_bits, oracle_result.data_bits)

    unpacked_s = min(
        _timed(lambda: oracle.decode_batch(codewords).data_words) for _ in range(5)
    )
    packed_s = min(
        _timed(lambda: packed.decode_batch(codewords).data_words) for _ in range(5)
    )
    speedup = bench_report.record(
        "secded_packed_decode", floor=3.0, scalar_s=unpacked_s, batch_s=packed_s,
        units_label="words", work_items=NUM_WORDS,
    )
    assert speedup >= 3.0


def test_cell_array_batch_sweep_is_fast(print_table):
    """End-to-end: a 10k-word write/idle/read cycle through the batch paths."""
    calibration = DramCalibration(
        retention=RetentionCalibration(log_median_retention_50c=3.0, log_sigma=1.3)
    )
    simulator = CellArraySimulator(CellArrayConfig(
        geometry=small_geometry(), trefp_s=2.283, temperature_c=70.0,
        calibration=calibration, seed=7,
    ))
    rng = np.random.default_rng(7)
    bits = rng.integers(0, 2, size=(NUM_WORDS, 64), dtype=np.uint64).astype(np.uint8)
    values = bits_to_words(bits)
    locations = [simulator.geometry.cell_from_word_index(i) for i in range(NUM_WORDS)]

    start = time.perf_counter()
    simulator.write_batch(locations, values)
    simulator.idle(600.0)
    sweep = simulator.read_batch(locations, workload="throughput")
    elapsed = time.perf_counter() - start

    errors = sum(
        count for cls, count in sweep.counts().items() if cls.value != "none"
    )
    print_table("Cell-array batch sweep (10k words, weak cells, 70 C)", [
        ("wall time", f"{elapsed:.3f} s"),
        ("throughput", f"{2 * NUM_WORDS / elapsed:,.0f} ops/s"),
        ("ECC events", errors),
    ])
    assert errors > 0                      # weak cells at 70 C must leak
    assert elapsed < 5.0                   # scalar loops took minutes here


def test_million_word_cell_array_sweep(print_table):
    """A 1,048,576-word (75.5M-cell) write/idle/read sweep, streamed.

    The byte-per-bit engine could not even represent this array (the old
    hard cap rejected geometries over 50M cells); the packed lanes plus
    block streaming make it a seconds-scale operation.
    """
    geometry = DramGeometry(
        num_dimms=1, ranks_per_dimm=1, banks_per_rank=1,
        rows_per_bank=1024, columns_per_row=1024,
    )
    n_words = geometry.total_words
    assert n_words >= 1_000_000 and n_words * 72 >= 72_000_000
    simulator = CellArraySimulator(CellArrayConfig(
        geometry=geometry, trefp_s=2.283, temperature_c=70.0,
        calibration=DramCalibration(
            retention=RetentionCalibration(log_median_retention_50c=7.0,
                                           log_sigma=1.3)
        ),
        seed=7,
    ))
    rng = np.random.default_rng(7)
    values = rng.integers(0, 2 ** 64, size=n_words, dtype=np.uint64)
    words = np.arange(n_words)

    start = time.perf_counter()
    simulator.write_batch(words, values)
    simulator.idle(600.0)
    sweep = simulator.read_batch(words, workload="million-word")
    elapsed = time.perf_counter() - start

    errors = sum(
        count for cls, count in sweep.counts().items() if cls.value != "none"
    )
    print_table("Million-word cell-array sweep (75.5M cells, 70 C)", [
        ("wall time", f"{elapsed:.3f} s"),
        ("throughput", f"{2 * n_words / elapsed:,.0f} ops/s"),
        ("ECC events", errors),
        ("measured WER", f"{simulator.measured_wer(n_words):.5f}"),
    ])
    assert errors > 0
    assert elapsed < 60.0                  # streamed packed path: seconds-scale


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
