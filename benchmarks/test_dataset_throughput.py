"""Columnar dataset assembly: per-sample equivalence and throughput floor.

The "Build data set" step of Fig. 3 joins every campaign measurement
with its workload's program features.  These benchmarks pin two
properties of the columnar builders, mirroring how the ECC and campaign
benchmarks pin their batch engines:

* ``build_wer_dataset`` / ``build_pue_dataset`` produce *bit-identical*
  ``(X, y, groups)`` matrices — and equal ``Sample`` views — to the
  per-sample reference implementations (``repro.core.reference``, the
  pre-columnar builder bodies) on the paper's default campaign;
* assembling the WER design matrix through the columnar path is at
  least 10x faster than the per-sample list scan.
"""

import time

import pytest

from repro.core.dataset import build_pue_dataset, build_wer_dataset
from repro.core.features import INPUT_SET_1, INPUT_SET_3
from repro.core.reference import (
    reference_build_pue_dataset,
    reference_build_wer_dataset,
)

pytestmark = pytest.mark.slow


def _assert_identical_matrices(columnar, reference, feature_set):
    Xc, yc, gc = columnar.matrices(feature_set)
    Xr, yr, gr = reference.matrices(feature_set)
    assert Xc.dtype == Xr.dtype and Xc.shape == Xr.shape
    assert Xc.tobytes() == Xr.tobytes()
    assert yc.tobytes() == yr.tobytes()
    assert bool((gc == gr).all())


def test_columnar_wer_dataset_matches_reference_exactly(
    full_campaign, campaign_profiles
):
    columnar = build_wer_dataset(full_campaign, campaign_profiles)
    reference = reference_build_wer_dataset(full_campaign, campaign_profiles)
    assert len(columnar) == len(reference) > 1000
    for feature_set in (INPUT_SET_1, INPUT_SET_3):
        _assert_identical_matrices(columnar, reference, feature_set)
    # Rank filtering must stay columnar and still match the list filter.
    rank = reference.ranks()[0]
    _assert_identical_matrices(
        columnar.filter_rank(rank), reference.filter_rank(rank), INPUT_SET_1
    )
    # The lazily materialized Sample view reproduces the reference samples.
    assert columnar.samples == reference.samples


def test_columnar_pue_dataset_matches_reference_exactly(
    full_campaign, campaign_profiles
):
    columnar = build_pue_dataset(full_campaign, campaign_profiles)
    reference = reference_build_pue_dataset(full_campaign, campaign_profiles)
    _assert_identical_matrices(columnar, reference, INPUT_SET_1)
    assert columnar.samples == reference.samples


def test_dataset_assembly_at_least_10x_list_scan(
    full_campaign, campaign_profiles, bench_report
):
    # Warm both paths (store/profile caches, imports).
    build_wer_dataset(full_campaign, campaign_profiles).matrices(INPUT_SET_1)
    reference_build_wer_dataset(full_campaign, campaign_profiles).matrices(INPUT_SET_1)

    # Min-of-N timing on both sides, as in the campaign benchmark: the
    # floor must hold on noisy shared CI runners.
    scalar_s = min(
        _timed(lambda: reference_build_wer_dataset(
            full_campaign, campaign_profiles).matrices(INPUT_SET_1))
        for _ in range(3)
    )
    batch_s = min(
        _timed(lambda: build_wer_dataset(
            full_campaign, campaign_profiles).matrices(INPUT_SET_1))
        for _ in range(5)
    )
    rows = len(full_campaign.wer_columns())
    speedup = bench_report.record(
        "dataset_assembly", floor=10.0, scalar_s=scalar_s, batch_s=batch_s,
        units_label="rows", work_items=rows,
    )
    assert speedup >= 10.0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
