"""Session fixtures shared by the benchmark harness.

The full characterization campaign (14 benchmarks x 4 refresh periods x
{50, 60} C plus the 70 C UE study) and the extended campaign used by the
Fig. 13 case study are run once per session and shared by every
benchmark.

The throughput benchmarks (SECDED decode, the packed-lane codec,
campaign grid, dataset assembly, telemetry overhead) report their floors
through one shared :class:`BenchReport` fixture so the scalar/batch
timings print uniformly, and the measured speedups are dumped to a JSON
file (:data:`repro.telemetry.report.BENCH_ARTIFACT_NAME` by default,
overridable via ``BENCH_REPORT_JSON``) that CI uploads as a per-PR
artifact.  The whole benchmark session runs inside a telemetry session,
and the artifact embeds the resulting :class:`RunReport` (span timings
plus environment metadata) under a ``"run_report"`` key.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import units
from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign
from repro.core.dataset import build_pue_dataset, build_wer_dataset
from repro.profiling.profiler import profile_workload
from repro.telemetry import RunReport, telemetry_session
from repro.telemetry.report import BENCH_ARTIFACT_NAME
from repro.workloads.registry import campaign_workload_names


def _print_table(title, rows):
    """Print a small aligned table to the benchmark log."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + "  ".join(str(cell) for cell in row))


@pytest.fixture(scope="session")
def print_table():
    return _print_table


class BenchReport:
    """Uniform floor reporting shared by every throughput benchmark.

    Each benchmark records one entry (scalar time, batch time, floor);
    the report prints the standard scalar/batch/speedup table and, at
    session end, writes every entry to the benchmark-artifact JSON.
    """

    def __init__(self):
        self.entries = {}

    def record(self, benchmark, *, floor, scalar_s, batch_s, units_label="runs",
               work_items=None):
        """Record one floor measurement; returns the measured speedup."""
        speedup = scalar_s / batch_s
        self.entries[benchmark] = {
            "benchmark": benchmark,
            "floor_x": floor,
            "speedup_x": round(speedup, 2),
            "scalar_s": round(scalar_s, 6),
            "batch_s": round(batch_s, 6),
        }
        rows = [
            ("scalar loop", f"{scalar_s:.4f} s",
             f"{work_items / scalar_s:,.0f} {units_label}/s" if work_items else ""),
            ("batch engine", f"{batch_s:.4f} s",
             f"{work_items / batch_s:,.0f} {units_label}/s" if work_items else ""),
            ("speedup", f"{speedup:.1f}x", f"(floor {floor:.0f}x)"),
        ]
        _print_table(f"{benchmark} throughput", rows)
        return speedup


@pytest.fixture(scope="session")
def bench_report():
    with telemetry_session() as telemetry:
        report = BenchReport()
        yield report
        run_report = RunReport.capture(telemetry)
    if report.entries:
        path = os.environ.get("BENCH_REPORT_JSON", BENCH_ARTIFACT_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "benchmarks": sorted(report.entries.values(),
                                         key=lambda e: e["benchmark"]),
                    "run_report": run_report.to_json_dict(),
                },
                handle, indent=2,
            )
            handle.write("\n")


@pytest.fixture(scope="session")
def campaign_profiles():
    return {name: profile_workload(name) for name in campaign_workload_names()}


@pytest.fixture(scope="session")
def full_campaign(campaign_profiles):
    """The paper's main campaign (Sections V.A and V.B)."""
    campaign = CharacterizationCampaign(config=CampaignConfig(), seed=7)
    return campaign.run(include_ue_study=True)


@pytest.fixture(scope="session")
def full_wer_dataset(full_campaign, campaign_profiles):
    return build_wer_dataset(full_campaign, campaign_profiles)


@pytest.fixture(scope="session")
def full_pue_dataset(full_campaign, campaign_profiles):
    return build_pue_dataset(full_campaign, campaign_profiles)


EXTENDED_WORKLOADS = tuple(campaign_workload_names()) + (
    "lulesh(O2)", "lulesh(F)", "data-pattern-random",
)


@pytest.fixture(scope="session")
def extended_campaign():
    """Campaign including lulesh and the data-pattern micro, with 70 C WER points.

    This is the training/measurement set of the Fig. 13 case study (the
    workload-aware model vs. the conventional constant-rate model).
    """
    config = CampaignConfig(
        workloads=EXTENDED_WORKLOADS,
        trefp_values_s=units.TREFP_SWEEP_S,
        temperatures_c=(50.0, 60.0, 70.0),
        ue_repetitions=0,
    )
    campaign = CharacterizationCampaign(config=config, seed=7)
    return campaign.run(include_ue_study=False)


@pytest.fixture(scope="session")
def extended_wer_dataset(extended_campaign):
    return build_wer_dataset(extended_campaign)
