"""Session fixtures shared by the benchmark harness.

The full characterization campaign (14 benchmarks x 4 refresh periods x
{50, 60} C plus the 70 C UE study) and the extended campaign used by the
Fig. 13 case study are run once per session and shared by every
benchmark.
"""

from __future__ import annotations

import pytest

from repro import units
from repro.characterization.campaign import CampaignConfig, CharacterizationCampaign
from repro.core.dataset import build_pue_dataset, build_wer_dataset
from repro.profiling.profiler import profile_workload
from repro.workloads.registry import campaign_workload_names


def _print_table(title, rows):
    """Print a small aligned table to the benchmark log."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + "  ".join(str(cell) for cell in row))


@pytest.fixture(scope="session")
def print_table():
    return _print_table


@pytest.fixture(scope="session")
def campaign_profiles():
    return {name: profile_workload(name) for name in campaign_workload_names()}


@pytest.fixture(scope="session")
def full_campaign(campaign_profiles):
    """The paper's main campaign (Sections V.A and V.B)."""
    campaign = CharacterizationCampaign(config=CampaignConfig(), seed=7)
    return campaign.run(include_ue_study=True)


@pytest.fixture(scope="session")
def full_wer_dataset(full_campaign, campaign_profiles):
    return build_wer_dataset(full_campaign, campaign_profiles)


@pytest.fixture(scope="session")
def full_pue_dataset(full_campaign, campaign_profiles):
    return build_pue_dataset(full_campaign, campaign_profiles)


EXTENDED_WORKLOADS = tuple(campaign_workload_names()) + (
    "lulesh(O2)", "lulesh(F)", "data-pattern-random",
)


@pytest.fixture(scope="session")
def extended_campaign():
    """Campaign including lulesh and the data-pattern micro, with 70 C WER points.

    This is the training/measurement set of the Fig. 13 case study (the
    workload-aware model vs. the conventional constant-rate model).
    """
    config = CampaignConfig(
        workloads=EXTENDED_WORKLOADS,
        trefp_values_s=units.TREFP_SWEEP_S,
        temperatures_c=(50.0, 60.0, 70.0),
        ue_repetitions=0,
    )
    campaign = CharacterizationCampaign(config=config, seed=7)
    return campaign.run(include_ue_study=False)


@pytest.fixture(scope="session")
def extended_wer_dataset(extended_campaign):
    return build_wer_dataset(extended_campaign)
