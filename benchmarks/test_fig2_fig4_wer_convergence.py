"""Fig. 2 and Fig. 4: WER over the 2-hour characterization runs."""

from repro.analysis.figures import convergence_check, fig2_wer_over_time, fig4_wer_over_time
from repro.workloads.registry import campaign_workload_names


def test_fig2_wer_convergence(benchmark, print_table):
    """Fig. 2: memcached vs backprop vs the random micro at 2.283 s / 70 C."""
    series = benchmark.pedantic(
        fig2_wer_over_time,
        kwargs=dict(workloads=("memcached", "backprop(par)", "data-pattern-random"),
                    trefp_s=2.283, temperature_c=70.0),
        rounds=1, iterations=1,
    )
    rows = []
    for workload, points in series.items():
        final = points[-1][1]
        rows.append((workload, f"final WER {final:.3e}",
                     f"last-10-min change {convergence_check(points) * 100:.1f}%"))
    print_table("Fig. 2: WER vs time (2.283 s TREFP, 70 C, 2-hour run)", rows)

    # memcached is the least error-prone of the three (Section II.C discussion).
    finals = {workload: points[-1][1] for workload, points in series.items()}
    assert finals["memcached"] < finals["backprop(par)"]
    assert finals["memcached"] < finals["data-pattern-random"]
    # Every curve has converged: < 3 % change in the last 10 minutes (Sec. V.A).
    assert all(convergence_check(points) < 0.03 for points in series.values())


def test_fig4_wer_timeseries_all_benchmarks(benchmark, print_table):
    """Fig. 4: WER vs time for every benchmark at 2.283 s / 50 C."""
    workloads = campaign_workload_names()
    series = benchmark.pedantic(
        fig4_wer_over_time,
        kwargs=dict(workloads=workloads, trefp_s=2.283, temperature_c=50.0),
        rounds=1, iterations=1,
    )
    rows = [(w, f"{points[-1][1]:.3e}") for w, points in
            sorted(series.items(), key=lambda kv: -kv[1][-1][1])]
    print_table("Fig. 4: final WER per benchmark (2.283 s, 50 C)", rows)

    assert set(series) == set(workloads)
    assert all(convergence_check(points) < 0.03 for points in series.values())
    finals = {w: points[-1][1] for w, points in series.items()}
    assert min(finals, key=finals.get) == "memcached"
