"""Fig. 8 (DIMM/rank variation) and Fig. 9 (uncorrectable errors at 70 C)."""

from repro import units
from repro.analysis.figures import fig8_wer_per_rank, fig9a_pue_bars, fig9b_ue_rank_distribution


def test_fig8_dimm_rank_variation(benchmark, full_campaign, print_table):
    """Fig. 8: per-DIMM/rank WER at 2.283 s / 50 C (up to ~188x spread)."""
    table = benchmark.pedantic(
        fig8_wer_per_rank, args=(full_campaign,), rounds=1, iterations=1
    )
    spreads = {}
    for workload, ranks in table.items():
        positive = {label: wer for label, wer in ranks.items() if wer > 0}
        top = max(positive, key=positive.get)
        bottom = min(positive, key=positive.get)
        spreads[workload] = positive[top] / positive[bottom]
    rows = [(w, f"spread {s:.0f}x") for w, s in sorted(spreads.items(), key=lambda kv: -kv[1])]
    print_table("Fig. 8: per-workload DIMM/rank WER spread [paper: up to 188x]", rows)

    assert max(spreads.values()) > 100.0
    # The weakest rank of the platform is DIMM2/rank0 and the strongest is
    # DIMM3/rank1 (as in the bc example the paper highlights).
    bc_ranks = table["bc"]
    assert max(bc_ranks, key=bc_ranks.get) == "DIMM2/rank0"
    assert min(bc_ranks, key=bc_ranks.get) == "DIMM3/rank1"


def test_fig9a_pue_per_benchmark(benchmark, full_campaign, print_table):
    """Fig. 9a: PUE per benchmark for TREFP in {1.45, 1.727, 2.283} s at 70 C."""
    bars = benchmark.pedantic(
        fig9a_pue_bars, args=(full_campaign,), rounds=1, iterations=1
    )
    rows = []
    for trefp in units.TREFP_UE_SWEEP_S:
        per_workload = bars[trefp]
        mean = sum(per_workload.values()) / len(per_workload)
        zeroish = sum(1 for value in per_workload.values() if value < 0.1)
        rows.append((f"TREFP={trefp:.3f}s", f"mean PUE {mean:.2f}",
                     f"benchmarks with PUE<0.1: {zeroish}"))
    print_table("Fig. 9a: PUE at 70 C [paper: mean <0.4 at 1.45 s, 2.15x more at "
                "1.727 s, 1.0 for all at 2.283 s]", rows)

    means = {trefp: sum(bars[trefp].values()) / len(bars[trefp])
             for trefp in units.TREFP_UE_SWEEP_S}
    # PUE grows with TREFP and saturates at the maximum refresh period.
    assert means[1.450] < means[1.727] < means[2.283]
    assert means[1.727] / means[1.450] > 1.4
    assert all(value > 0.9 for value in bars[2.283].values())
    # PUE varies strongly across benchmarks at 1.45 s.
    assert min(bars[1.450].values()) < 0.2
    assert max(bars[1.450].values()) > 0.6


def test_fig9b_ue_rank_distribution(benchmark, full_campaign, print_table):
    """Fig. 9b: which DIMM/rank the UEs land on."""
    distribution = benchmark.pedantic(
        fig9b_ue_rank_distribution, args=(full_campaign,), rounds=1, iterations=1
    )
    rows = sorted(distribution.items(), key=lambda kv: -kv[1])
    print_table("Fig. 9b: probability a UE lands on each DIMM/rank "
                "[paper: DIMM2/rank0 0.67, DIMM0/rank1 0.24, DIMM3/rank1 0]",
                [(label, f"{p:.2f}") for label, p in rows])

    assert abs(sum(distribution.values()) - 1.0) < 1e-9
    # Two ranks dominate and one rank never produces a UE.
    assert rows[0][0] == "DIMM2/rank0"
    assert rows[0][1] > 0.4
    assert "DIMM3/rank1" not in distribution
