"""Vectorized ML core: oracle equivalence and throughput floors.

The flattened-tree forest and the ``argpartition`` neighbour search are
the model-evaluation hot path of the accuracy study (Section VI): every
leave-one-workload-out fold refits and re-predicts a model per feature
set.  These benchmarks pin the vectorized estimators against the
per-row oracles in ``repro.ml.reference`` the same way the ECC and
dataset benchmarks pin their batch engines:

* a leave-one-group-out KNN cross-validation over a campaign-shaped
  design matrix (14 workload groups, ``INPUT_SET_1``-sized feature
  rows) is at least 5x faster than the oracle estimator and produces
  *bit-identical* out-of-fold predictions;
* batched forest prediction over the flattened ensemble is at least 5x
  faster than the per-tree/per-row node walk, also bit-identical.
"""

import time

import numpy as np
import pytest

from repro.core.features import INPUT_SET_1
from repro.ml.cross_validation import cross_val_predict_groups
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.reference import (
    ReferenceKNeighborsRegressor,
    reference_forest_predict,
)

pytestmark = pytest.mark.slow

#: Leave-one-group-out CV shape: one group per campaign workload, with
#: enough rows per group that the per-row oracle's Python loop (not the
#: shared distance kernel) dominates its runtime.
N_GROUPS = 14
ROWS_PER_GROUP = 384


def _campaign_shaped_regression(seed=7):
    """Synthetic (X, y, groups) shaped like the WER design matrix."""
    rng = np.random.default_rng(seed)
    n_features = INPUT_SET_1.num_inputs
    X = rng.normal(size=(N_GROUPS * ROWS_PER_GROUP, n_features))
    y = rng.normal(size=X.shape[0])
    groups = np.repeat(np.arange(N_GROUPS), ROWS_PER_GROUP)
    return X, y, groups


def test_knn_cv_at_least_5x_oracle(bench_report):
    X, y, groups = _campaign_shaped_regression()
    vectorized = KNeighborsRegressor(n_neighbors=5, weights="distance")
    oracle = ReferenceKNeighborsRegressor(n_neighbors=5, weights="distance")

    # Warm both paths (imports, BLAS thread pools) on a two-group slice.
    warm = groups < 2
    cross_val_predict_groups(vectorized, X[warm], y[warm], groups[warm])
    cross_val_predict_groups(oracle, X[warm], y[warm], groups[warm])

    pred_vec = cross_val_predict_groups(vectorized, X, y, groups)
    pred_ref = cross_val_predict_groups(oracle, X, y, groups)
    # Same neighbour sets, same weights, same reductions: bit-identical.
    assert np.array_equal(pred_vec, pred_ref)

    scalar_s = min(
        _timed(lambda: cross_val_predict_groups(oracle, X, y, groups))
        for _ in range(2)
    )
    batch_s = min(
        _timed(lambda: cross_val_predict_groups(vectorized, X, y, groups))
        for _ in range(5)
    )
    speedup = bench_report.record(
        "ml_knn_cv", floor=5.0, scalar_s=scalar_s, batch_s=batch_s,
        units_label="rows", work_items=X.shape[0],
    )
    assert speedup >= 5.0


def test_forest_predict_at_least_5x_node_walk(bench_report):
    X, y, _groups = _campaign_shaped_regression(seed=11)
    forest = RandomForestRegressor(
        n_estimators=20, max_depth=8, random_state=3
    ).fit(X[:1500], y[:1500])
    Xq = X[1500:]

    pred_vec = forest.predict(Xq)
    pred_ref = reference_forest_predict(forest, Xq)
    assert np.array_equal(pred_vec, pred_ref)

    scalar_s = min(
        _timed(lambda: reference_forest_predict(forest, Xq)) for _ in range(3)
    )
    batch_s = min(_timed(lambda: forest.predict(Xq)) for _ in range(5))
    speedup = bench_report.record(
        "ml_forest_predict", floor=5.0, scalar_s=scalar_s, batch_s=batch_s,
        units_label="rows", work_items=Xq.shape[0],
    )
    assert speedup >= 5.0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
