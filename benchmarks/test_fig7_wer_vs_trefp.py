"""Fig. 7: WER across benchmarks, refresh periods and temperatures."""

from repro import units
from repro.analysis.figures import exponential_growth_factor, fig7_wer_bars, fig7f_mean_wer_curve


def test_fig7_wer_bars_per_temperature(benchmark, full_campaign, print_table):
    """Fig. 7a-d: WER per benchmark for every TREFP at 50 C and 60 C."""
    def build():
        return {
            temperature: fig7_wer_bars(full_campaign, units.TREFP_SWEEP_S, temperature)
            for temperature in (50.0, 60.0)
        }

    bars = benchmark.pedantic(build, rounds=1, iterations=1)
    for temperature, by_trefp in bars.items():
        rows = []
        for trefp, per_workload in by_trefp.items():
            top = max(per_workload, key=per_workload.get)
            bottom = min(per_workload, key=per_workload.get)
            rows.append((f"TREFP={trefp:.3f}s",
                         f"max {top}={per_workload[top]:.2e}",
                         f"min {bottom}={per_workload[bottom]:.2e}",
                         f"spread {per_workload[top] / per_workload[bottom]:.1f}x"))
        print_table(f"Fig. 7: WER per benchmark at {temperature:.0f} C", rows)

    # Headline claim: WER varies across workloads by several-fold (8x in the
    # paper, measured at the most aggressive point of the sweep).
    spreads = [
        max(per.values()) / min(per.values())
        for by_trefp in bars.values()
        for per in by_trefp.values()
    ]
    assert max(spreads) > 5.0
    # memcached incurs the lowest WER at the operating point of Fig. 7b.
    per_workload = bars[50.0][2.283]
    assert min(per_workload, key=per_workload.get) == "memcached"
    # backprop (serial) exceeds backprop(par) by roughly 30 % (Section V.A).
    assert per_workload["backprop"] > per_workload["backprop(par)"]


def test_fig7f_exponential_growth(benchmark, full_campaign, print_table):
    """Fig. 7f: benchmark-averaged WER grows exponentially with TREFP."""
    curves = benchmark.pedantic(
        fig7f_mean_wer_curve, args=(full_campaign,), rounds=1, iterations=1
    )
    rows = []
    for temperature, curve in curves.items():
        growth = exponential_growth_factor(curve)
        rows.append((f"{temperature:.0f} C",
                     " ".join(f"{trefp:.3f}s:{wer:.2e}" for trefp, wer in curve),
                     f"exp growth {growth:.2f}/s"))
    print_table("Fig. 7f: mean WER vs TREFP", rows)

    for curve in curves.values():
        wers = [wer for _trefp, wer in curve]
        assert all(b > a for a, b in zip(wers, wers[1:]))
        assert exponential_growth_factor(curve) > 1.0
    # 60 C is roughly an order of magnitude worse than 50 C at every TREFP.
    assert curves[60.0][-1][1] > 5 * curves[50.0][-1][1]
