"""Section VI.C claim: the trained model predicts DRAM errors within 300 ms."""

from repro.core.predictor import WorkloadAwarePredictor
from repro.dram.operating import OperatingPoint
from repro.profiling.profiler import profile_workload


def test_prediction_latency_under_300ms(benchmark, full_campaign, campaign_profiles,
                                        print_table):
    predictor = WorkloadAwarePredictor().fit(full_campaign, campaign_profiles)
    profile = profile_workload("pagerank")
    op = OperatingPoint.relaxed(1.727, 60.0)

    result = benchmark(lambda: predictor.predict(profile, op))

    print_table("Prediction latency (paper: < 300 ms, < 1 s including profiling lookup)",
                [("pagerank @ 1.727 s / 60 C",
                  f"memory WER {result.memory_wer:.3e}",
                  f"PUE {result.pue:.2f}",
                  f"latency {result.latency_s * 1000:.1f} ms")])

    assert result.latency_s < 0.3
    assert result.memory_wer > 0
    assert 0.0 <= result.pue <= 1.0
