"""Telemetry overhead: instrumented hot paths stay within 1.05x.

Two hot paths are timed with telemetry fully enabled vs the default
disabled registry, on identical work (fresh simulators with the same
seed; the same experiment grid):

* the streamed cell-array write/read sweep, whose per-burst accounting
  (corrected/uncorrectable/scrub counts) is the costliest instrumentation
  in the library;
* the statistical campaign grid sweep, the inner loop of every campaign.

Both must remain bit-identical and within ``OVERHEAD_CEILING`` of the
uninstrumented run (min-of-N timing on both sides).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.characterization.experiment import CharacterizationExperiment
from repro.dram.cells import CellArrayConfig, CellArraySimulator
from repro.dram.geometry import DramGeometry
from repro.dram.operating import OperatingPoint
from repro.profiling.profiler import profile_workload
from repro.telemetry import Telemetry, set_telemetry

pytestmark = pytest.mark.slow

OVERHEAD_CEILING = 1.05
NUM_WORDS = 65_536
SWEEP_READS = 4


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _cell_sweep():
    """One write burst + several read bursts over a fresh simulator."""
    geometry = DramGeometry(
        num_dimms=2, ranks_per_dimm=2, banks_per_rank=2,
        rows_per_bank=256, columns_per_row=32, word_bytes=8,
    )
    config = CellArrayConfig(
        geometry=geometry, trefp_s=2.283, temperature_c=70.0, seed=5
    )
    simulator = CellArraySimulator(config)
    locations = [
        simulator.geometry.cell_from_word_index(i) for i in range(NUM_WORDS)
    ]
    rng = np.random.default_rng(5)
    data = rng.integers(0, 1 << 62, size=NUM_WORDS, dtype=np.uint64)
    simulator.write_batch(locations, data)
    outputs = []
    for _ in range(SWEEP_READS):
        result = simulator.read_batch(locations, workload="bench")
        outputs.append(
            (result.decode.data_words.copy(), result.decode.error_codes.copy())
        )
    return outputs


def _grid_sweep():
    experiment = CharacterizationExperiment(seed=7)
    ops = [
        OperatingPoint.relaxed(trefp, temperature)
        for trefp in (1.173, 2.283)
        for temperature in (50.0, 70.0)
    ]
    profile = profile_workload("memcached")
    grid = experiment.run_grid_columns(
        "memcached", ops, repetitions=4, profile=profile
    )
    return grid.wer_block().rows


def _measure(workload_fn, repeats):
    """(min seconds, last result) for each of telemetry off/on."""
    timings = {}
    results = {}
    for mode, enabled in (("off", False), ("on", True)):
        previous = set_telemetry(Telemetry(enabled=enabled))
        try:
            workload_fn()    # warm imports/caches outside the timed region
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                results[mode] = workload_fn()
                best = min(best, time.perf_counter() - start)
            timings[mode] = best
        finally:
            set_telemetry(previous)
    return timings, results


@pytest.mark.parametrize(
    "name, workload_fn, repeats",
    [
        ("telemetry_overhead_cells", _cell_sweep, 3),
        ("telemetry_overhead_grid", _grid_sweep, 5),
    ],
)
def test_overhead_within_ceiling(name, workload_fn, repeats, bench_report):
    timings, results = _measure(workload_fn, repeats)

    # Instrumentation must never perturb the computation.
    off, on = results["off"], results["on"]
    if isinstance(off, list):
        assert len(off) == len(on)
        for (off_words, off_codes), (on_words, on_codes) in zip(off, on):
            assert np.array_equal(off_words, on_words)
            assert np.array_equal(off_codes, on_codes)
    else:
        assert np.array_equal(off, on)

    ratio = timings["on"] / timings["off"]
    # record() reports scalar/batch; here scalar=instrumented and
    # batch=baseline, so "speedup" is the overhead ratio itself.
    bench_report.record(
        name, floor=1.0 / OVERHEAD_CEILING,
        scalar_s=timings["on"], batch_s=timings["off"],
    )
    assert ratio <= OVERHEAD_CEILING, (
        f"telemetry overhead {ratio:.3f}x exceeds {OVERHEAD_CEILING}x ceiling"
    )
