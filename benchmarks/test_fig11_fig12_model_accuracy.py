"""Fig. 11 and Fig. 12: accuracy of the SVM / KNN / RDF error models.

Leave-one-workload-out accuracy of the WER models (per DIMM/rank and per
application) for the three input sets of Table III, plus the PUE model
accuracy.  The KNN evaluation covers all eight ranks; the slower SVM and
RDF evaluations use a three-rank subset (the per-rank models are
independent, so the subset is representative).
"""

import pytest

from repro.core.evaluation import AccuracyEvaluator, best_configuration

FEATURE_SETS = ("set1", "set2", "set3")


@pytest.fixture(scope="module")
def evaluator():
    return AccuracyEvaluator()


def _report_rows(study):
    rows = []
    for family, by_set in study.items():
        for feature_set, report in by_set.items():
            rows.append((family.upper(), feature_set,
                         f"avg rank error {report.average_rank_error:.1f}%",
                         f"max app error {report.max_workload_error:.0f}%"))
    return rows


def test_fig11_knn_wer_accuracy(benchmark, full_wer_dataset, evaluator, print_table):
    """Fig. 11b/e: KNN accuracy over all 8 DIMM/ranks and 3 input sets."""
    study = benchmark.pedantic(
        evaluator.wer_study,
        kwargs=dict(dataset=full_wer_dataset, families=("knn",), feature_sets=FEATURE_SETS),
        rounds=1, iterations=1,
    )
    print_table("Fig. 11 (KNN) [paper: 10.1% / 10.2% / 12.3%]", _report_rows(study))

    by_set = study["knn"]
    # Input sets 1 and 2 (the strongly correlated features) beat input set 3
    # (all 249 features) — the overfitting effect of Section VI.B.
    assert by_set["set1"].average_rank_error < by_set["set3"].average_rank_error
    assert by_set["set2"].average_rank_error < by_set["set3"].average_rank_error
    # Every rank and every application is covered.
    assert len(by_set["set1"].error_by_rank) == 8
    assert len(by_set["set1"].error_by_workload) == 14


def test_fig11_svm_rdf_wer_accuracy(benchmark, full_wer_dataset, evaluator, print_table):
    """Fig. 11a/c/d/f: SVM and RDF accuracy (3-rank subset for tractability)."""
    ranks = full_wer_dataset.ranks()[:3]

    def run():
        return evaluator.wer_study(
            full_wer_dataset, families=("svm", "rdf"),
            feature_sets=FEATURE_SETS, ranks=ranks,
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Fig. 11 (SVM, RDF) [paper SVM: 16.3/17.0/29.3%, RDF: 21.4/~/12.9%]",
                _report_rows(study))

    svm = study["svm"]
    # SVM degrades sharply when trained on all 249 features (paper: 29.3 %).
    assert svm["set3"].average_rank_error > svm["set1"].average_rank_error
    assert svm["set3"].average_rank_error > svm["set2"].average_rank_error


def test_fig11_knn_is_the_most_accurate_model(benchmark, full_wer_dataset, evaluator,
                                              print_table):
    """Section VI.B headline: KNN with input set 1 gives the best WER accuracy."""
    ranks = full_wer_dataset.ranks()[:3]

    def run():
        return evaluator.wer_study(
            full_wer_dataset, families=("knn", "svm", "rdf"),
            feature_sets=("set1",), ranks=ranks,
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Model comparison on input set 1", _report_rows(study))

    best = best_configuration(study)
    assert best.family == "knn"


def test_fig12_pue_model_accuracy(benchmark, full_pue_dataset, evaluator, print_table):
    """Fig. 12: PUE estimation error per model family and input set."""
    study = benchmark.pedantic(
        evaluator.pue_study,
        kwargs=dict(dataset=full_pue_dataset, families=("svm", "knn", "rdf"),
                    feature_sets=FEATURE_SETS),
        rounds=1, iterations=1,
    )
    rows = [
        (family.upper(), feature_set, f"avg error {report.average_error:.1f}%")
        for family, by_set in study.items()
        for feature_set, report in by_set.items()
    ]
    print_table("Fig. 12: PUE estimation error "
                "[paper: SVM best with set1 (12.3%), KNN/RDF best with set2 (4.1%/5.5%)]",
                rows)

    # Input-set preferences per family match the paper: SVM prefers set 1,
    # KNN and RDF prefer set 2; set 3 is never the best choice.
    svm, knn, rdf = study["svm"], study["knn"], study["rdf"]
    assert min(svm, key=lambda s: svm[s].average_error) == "set1"
    assert min(knn, key=lambda s: knn[s].average_error) == "set2"
    assert min(rdf, key=lambda s: rdf[s].average_error) == "set2"
