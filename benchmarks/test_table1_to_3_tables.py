"""Tables I-III: ECC error classes, DRAM reuse times, model input sets."""

from repro.analysis.tables import table1_error_classes, table2_reuse_times, table3_input_sets


def test_table1_ecc_classes(benchmark, print_table):
    rows = benchmark(table1_error_classes)
    print_table("Table I: ECC SECDED error classes",
                [(r["num_corrupted_bits"], r["type"], r["abbreviation"]) for r in rows])
    assert [r["abbreviation"] for r in rows] == ["CE", "UE", "SDC"]


def test_table2_reuse_time(benchmark, print_table):
    table = benchmark.pedantic(table2_reuse_times, rounds=1, iterations=1)
    print_table(
        "Table II: average DRAM reuse time (s) [paper: nw 10.93, srad 2.82, backprop 1.61, "
        "kmeans 0.17, fmm 8.88, memcached 0.09]",
        sorted(((name, f"{value:.3f}") for name, value in table.items()),
               key=lambda row: -float(row[1])),
    )
    # Shape checks mirroring Table II.
    assert min(table, key=table.get) == "memcached"
    assert table["nw"] == max(table[name] for name in table)
    assert table["backprop"] > table["backprop(par)"]
    assert table["srad"] > table["srad(par)"]
    assert table["nw"] > table["nw(par)"]


def test_table3_input_sets(benchmark, print_table):
    rows = benchmark(table3_input_sets)
    print_table("Table III: model input sets",
                [(r["input_set"], r["num_inputs"], r["parameters"]) for r in rows])
    assert [int(r["num_inputs"]) for r in rows] == [7, 5, 252]
