"""Serving layer: batched grid floors and facade throughput.

The ISSUE-10 serving stack is only worth its API surface if the batched
path actually beats per-point prediction, so these benchmarks pin — the
same way the ECC, dataset and ML benchmarks pin their batch engines —

* ``WorkloadAwarePredictor.predict_grid`` against the per-point oracle
  (:func:`repro.core.reference.reference_predict_grid`): at least 10x
  faster over a campaign-scale operating grid, agreeing to 1e-9
  relative tolerance (BLAS batch shape may differ in the last ulps);
* :class:`repro.serving.PredictionService` throughput: a warm service
  answers a request sweep at least 10x faster than fresh scalar
  ``predict`` calls (the cache and request coalescing at work), with an
  absolute predictions-per-second floor.

Both floors land in the benchmark artifact (``BENCH_10.json``).
"""

import time

import numpy as np
import pytest

from repro.core.predictor import WorkloadAwarePredictor
from repro.core.reference import reference_predict_grid
from repro.dram.operating import OperatingPoint
from repro.serving import PredictionService, PredictRequest
from repro.workloads.registry import campaign_workload_names

pytestmark = pytest.mark.slow

TREFPS = (0.618, 1.173, 1.450, 1.727, 2.283)
TEMPERATURES = (50.0, 60.0, 70.0)

#: Absolute facade floor: a warm in-process service must answer at least
#: this many predictions per second (cache hits dominate a steady state).
SERVICE_PREDICTIONS_PER_S_FLOOR = 2_000.0


def test_predict_grid_at_least_10x_per_point(bench_report, full_campaign,
                                             campaign_profiles):
    predictor = WorkloadAwarePredictor().fit(full_campaign, campaign_profiles)
    workloads = list(campaign_workload_names())

    # Warm both paths (profile cache, BLAS thread pools) on a tiny grid.
    predictor.predict_grid(workloads[:2], TREFPS[:1], TEMPERATURES[:1])
    reference_predict_grid(predictor, workloads[:2], TREFPS[:1],
                           TEMPERATURES[:1], (1.428,))

    start = time.perf_counter()
    grid = predictor.predict_grid(workloads, TREFPS, TEMPERATURES)
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    ref_wer, ref_pue = reference_predict_grid(
        predictor, workloads, TREFPS, TEMPERATURES, grid.vdd_v
    )
    scalar_s = time.perf_counter() - start

    np.testing.assert_allclose(grid.wer, ref_wer, rtol=1e-9)
    assert grid.pue is not None and ref_pue is not None
    np.testing.assert_allclose(grid.pue, ref_pue, rtol=1e-9)

    speedup = bench_report.record(
        "predict_grid", floor=10.0, scalar_s=scalar_s, batch_s=batch_s,
        units_label="predictions", work_items=grid.num_predictions,
    )
    assert speedup >= 10.0


def test_service_throughput_floor(bench_report, full_campaign,
                                  campaign_profiles):
    predictor = WorkloadAwarePredictor().fit(full_campaign, campaign_profiles)
    requests = [
        PredictRequest.at(name, OperatingPoint.relaxed(trefp, temp))
        for name in campaign_workload_names()
        for trefp in TREFPS
        for temp in TEMPERATURES
    ]
    # Profiles are resolved per call on the scalar path; warm the registry
    # cache so both sides measure prediction, not profiling.
    profiles = {r.workload: campaign_profiles[r.workload] for r in requests}

    # Scalar baseline: one predict() per request (no cache, no batching).
    start = time.perf_counter()
    for request in requests:
        predictor.predict(profiles[request.workload], request.operating_point())
    scalar_s = time.perf_counter() - start

    repeats = 4
    with PredictionService(predictor, batch_window_s=0.001) as service:
        service.predict_many(requests)          # warm: populate the cache
        start = time.perf_counter()
        for _ in range(repeats):
            service.predict_many(requests)
        batch_s = time.perf_counter() - start
        stats = service.stats()

    served = repeats * len(requests)
    predictions_per_s = served / batch_s
    speedup = bench_report.record(
        "prediction_service", floor=10.0,
        scalar_s=scalar_s * repeats, batch_s=batch_s,
        units_label="predictions", work_items=served,
    )
    assert stats.cache_hits >= served            # the steady state is all hits
    assert predictions_per_s >= SERVICE_PREDICTIONS_PER_S_FLOOR
    assert speedup >= 10.0
