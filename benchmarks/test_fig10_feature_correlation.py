"""Fig. 10: Spearman correlation of the 249 program features with WER and PUE."""

from repro.core.correlation import run_correlation_study


def test_fig10_feature_correlation(benchmark, full_wer_dataset, full_pue_dataset, print_table):
    study = benchmark.pedantic(
        run_correlation_study, args=(full_wer_dataset, full_pue_dataset),
        rounds=1, iterations=1,
    )

    summary = study.named_feature_summary()
    print_table(
        "Fig. 10: Spearman correlation (rs) with WER / PUE "
        "[paper: access rate 0.57/0.43, wait cycles 0.40, HDP 0.39, Treuse 0.23]",
        [(name, f"rs_WER={rs_wer:+.2f}", f"rs_PUE={rs_pue:+.2f}")
         for name, (rs_wer, rs_pue) in summary.items()],
    )
    top = study.top_wer_features(10)
    print_table("Top-10 |rs(WER)| features",
                [(p.feature, f"{p.rs_wer:+.2f}") for p in top])

    # The memory access rate is strongly and positively correlated with both
    # metrics; the correlation with PUE is weaker than with WER (Section VI.A).
    rs_wer, rs_pue = summary["memory_accesses_per_cycle"]
    assert rs_wer > 0.4
    assert 0.0 < rs_pue < rs_wer
    # Wait cycles and Treuse are also positively correlated with WER.
    assert summary["wait_cycles"][0] > 0.3
    assert summary["treuse"][0] > 0.1
    # The access-rate-related features dominate the top of the ranking.
    top_names = {p.feature for p in top}
    assert any("cmds_per_cycle" in name or "accesses_per_cycle" in name
               for name in top_names)
    # Every coefficient is a valid correlation.
    assert all(-1.0 <= p.rs_wer <= 1.0 and -1.0 <= p.rs_pue <= 1.0 for p in study.points)
