"""Setuptools shim.

The offline environment has no ``wheel`` package, which PEP-660 editable
installs require; keeping a ``setup.py`` allows
``pip install -e . --no-build-isolation`` (legacy develop mode) and
``python setup.py develop`` to work without network access.
"""

from setuptools import setup

setup()
