"""CLI: ``python -m tools.repro_lint src tests benchmarks``.

Exit codes: 0 clean, 1 violations found, 2 parse/usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from tools.repro_lint import __version__, lint_paths
from tools.repro_lint.report import render_json, text_report
from tools.repro_lint.rules import RULES


def _list_rules() -> str:
    lines = []
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="AST-based determinism & contract checks for this repo.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format printed to stdout (default: text)",
    )
    parser.add_argument(
        "--json-output", metavar="FILE",
        help="additionally write the JSON report to FILE",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument("--version", action="version", version=f"repro-lint {__version__}")
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: src tests benchmarks)", file=sys.stderr)
        return 2

    try:
        result = lint_paths(options.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if options.json_output:
        with open(options.json_output, "w", encoding="utf-8") as handle:
            handle.write(render_json(result, options.paths) + "\n")
    if options.format == "json":
        print(render_json(result, options.paths))
    else:
        print(text_report(result))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
