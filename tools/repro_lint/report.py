"""Stable text and JSON renderings of a :class:`LintResult`.

The JSON schema is versioned (``repro.lint_report/v1``) and its key order,
sort order and field names are pinned by ``tests/test_repro_lint.py`` —
CI uploads the report as an artifact, so downstream tooling may parse it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from tools.repro_lint.engine import LintResult

REPORT_SCHEMA = "repro.lint_report/v1"


def text_report(result: LintResult) -> str:
    """One finding per line (``path:line:col: REPxxx message``) + a summary."""
    lines: List[str] = []
    for error in result.errors:
        lines.append(f"{error.path}:{error.line}: PARSE-ERROR {error.message}")
    for violation in result.violations:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col}: "
            f"{violation.rule_id} {violation.message}"
        )
    noun = "violation" if len(result.violations) == 1 else "violations"
    lines.append(
        f"repro-lint: {len(result.violations)} {noun} "
        f"({result.suppressed} suppressed) in {result.files_checked} files"
    )
    return "\n".join(lines)


def json_report(result: LintResult, paths: Sequence[str] = ()) -> Dict[str, Any]:
    """The stable ``repro.lint_report/v1`` document as a plain dict."""
    from tools.repro_lint import __version__
    from tools.repro_lint.rules import RULES

    counts: Dict[str, int] = {rule_id: 0 for rule_id in sorted(RULES)}
    for violation in result.violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    return {
        "schema": REPORT_SCHEMA,
        "tool": {"name": "repro-lint", "version": __version__},
        "paths": list(paths),
        "rules": [
            {"id": rule.id, "title": rule.title} for rule in
            sorted(RULES.values(), key=lambda r: r.id)
        ],
        "summary": {
            "files_checked": result.files_checked,
            "violations": len(result.violations),
            "suppressed": result.suppressed,
            "errors": len(result.errors),
            "counts": counts,
            "exit_code": result.exit_code,
        },
        "violations": [
            {
                "rule": v.rule_id,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in result.violations
        ],
        "errors": [
            {"path": e.path, "line": e.line, "message": e.message}
            for e in result.errors
        ],
    }


def render_json(result: LintResult, paths: Sequence[str] = ()) -> str:
    return json.dumps(json_report(result, paths), indent=2, sort_keys=False)
