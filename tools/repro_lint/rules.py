"""Rule registry and the six REPxxx determinism/contract checks.

Each rule is a :class:`Rule` instance registered in :data:`RULES`.  A rule
owns a path scope (which files it applies to, expressed over posix-style
path parts so absolute, relative and fixture-virtual paths all match) and
a ``check`` function that walks a parsed module and yields
:class:`~tools.repro_lint.engine.Violation`s.

The engine decorates every AST node with a ``_repro_parent`` attribute
before calling rules, so checks can climb to enclosing ``if`` statements,
function bodies and class bodies without each rule re-walking the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from tools.repro_lint.engine import Violation

RuleCheck = Callable[[ast.Module, str], Iterator[Violation]]
PathScope = Callable[[Sequence[str]], bool]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    title: str
    rationale: str
    scope: PathScope = field(repr=False)
    check: RuleCheck = field(repr=False)

    def applies_to(self, path_parts: Sequence[str]) -> bool:
        return self.scope(path_parts)


RULES: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return rule


# --------------------------------------------------------------------------
# Path scopes.  Paths arrive as tuples of posix parts; contiguous-subsequence
# matching makes "/root/repo/src/repro/x.py", "src/repro/x.py" and a
# fixture's virtual path all resolve the same way.
# --------------------------------------------------------------------------
def _contains_run(parts: Sequence[str], run: Tuple[str, ...]) -> bool:
    n = len(run)
    return any(tuple(parts[i : i + n]) == run for i in range(len(parts) - n + 1))


def _in_src_repro(parts: Sequence[str]) -> bool:
    return _contains_run(parts, ("src", "repro"))


def _in_telemetry(parts: Sequence[str]) -> bool:
    return _contains_run(parts, ("src", "repro", "telemetry"))


def _in_src(parts: Sequence[str]) -> bool:
    return "src" in parts


def _everywhere(parts: Sequence[str]) -> bool:
    return True


def _src_repro_outside_telemetry(parts: Sequence[str]) -> bool:
    return _in_src_repro(parts) and not _in_telemetry(parts)


# --------------------------------------------------------------------------
# Shared AST helpers.
# --------------------------------------------------------------------------
def _parents(node: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_parent", None)


def _enclosing_function(node: ast.AST) -> ast.AST | None:
    for parent in _parents(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return parent
    return None


def _dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for nested Name/Attribute chains, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# --------------------------------------------------------------------------
# REP001 — sampling must flow through seeded Generators / keyed streams.
# --------------------------------------------------------------------------
#: Allowed constructors on ``np.random``: these build explicit generator
#: objects (seeded by the caller or deliberately fresh); everything else on
#: the module is legacy global-state sampling.
_NP_RANDOM_ALLOWED = {"Generator", "default_rng", "PCG64", "SeedSequence", "BitGenerator"}
_NP_ALIASES = {"np", "numpy"}


def _check_rep001(tree: ast.Module, path: str) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = node.module if isinstance(node, ast.ImportFrom) else None
            names = [alias.name for alias in node.names]
            if module == "random" or (module is None and "random" in names):
                yield Violation(
                    "REP001", path, node.lineno, node.col_offset,
                    "stdlib `random` draws from hidden global state; use a "
                    "seeded np.random.Generator or a crc32-keyed stream",
                )
            continue
        if not isinstance(node, ast.Attribute):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in _NP_ALIASES
        ):
            continue
        if node.attr in _NP_RANDOM_ALLOWED:
            continue
        yield Violation(
            "REP001", path, node.lineno, node.col_offset,
            f"np.random.{node.attr} uses the legacy global RNG; all sampling "
            "must flow through seeded Generators or crc32-keyed streams",
        )


register(Rule(
    id="REP001",
    title="no global-state RNG in library code",
    rationale=(
        "Bit-identical WER/PUE numbers require every random draw to come from "
        "an explicit, seeded np.random.Generator (or the crc32-keyed per-cell "
        "streams).  Legacy np.random.* functions and the stdlib random module "
        "share hidden global state that import order and thread timing mutate."
    ),
    scope=_in_src_repro,
    check=_check_rep001,
))


# --------------------------------------------------------------------------
# REP002 — monotonic clock only outside telemetry/.
# --------------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
    "date.today", "datetime.date.today",
}
_WALL_CLOCK_IMPORTS = {"time", "time_ns"}


def _check_rep002(tree: ast.Module, path: str) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_IMPORTS:
                    yield Violation(
                        "REP002", path, node.lineno, node.col_offset,
                        f"importing time.{alias.name} pulls the wall clock into "
                        "library code; use time.monotonic/perf_counter",
                    )
            continue
        if isinstance(node, ast.Call) and _dotted_name(node.func) in _WALL_CLOCK_CALLS:
            yield Violation(
                "REP002", path, node.lineno, node.col_offset,
                f"{_dotted_name(node.func)}() reads the wall clock; library "
                "code must use the monotonic clock (telemetry/ owns the one "
                "wall-clock read for run metadata)",
            )


register(Rule(
    id="REP002",
    title="no wall clock outside telemetry/",
    rationale=(
        "Wall-clock reads (time.time, datetime.now) make results depend on "
        "when a run happens, breaking replay and cross-run comparison.  Timed "
        "scopes use the monotonic clock; the single wall-clock timestamp in a "
        "run lives in telemetry/'s RunReport metadata."
    ),
    scope=_src_repro_outside_telemetry,
    check=_check_rep002,
))


# --------------------------------------------------------------------------
# REP003 — telemetry metric calls on hot paths must be enabled-gated.
# --------------------------------------------------------------------------
_TELEMETRY_MUTATORS = {"incr", "gauge", "observe", "observe_array"}


def _looks_like_telemetry(receiver: str) -> bool:
    return "telemetry" in receiver.lower() or receiver in ("tel", "tel()")


def _is_enabled_gated(node: ast.AST, receiver: str) -> bool:
    needle = f"{receiver}.enabled"
    for parent in _parents(node):
        if isinstance(parent, ast.If) and needle in ast.unparse(parent.test):
            return True
    return False


def _check_rep003(tree: ast.Module, path: str) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _TELEMETRY_MUTATORS
        ):
            continue
        receiver = ast.unparse(node.func.value)
        if not _looks_like_telemetry(receiver):
            continue
        if _is_enabled_gated(node, receiver):
            continue
        yield Violation(
            "REP003", path, node.lineno, node.col_offset,
            f"{receiver}.{node.func.attr}(...) is not inside an "
            f"`if {receiver}.enabled:` block; gate metric mutators so "
            "disabled-mode hot paths pay one attribute check, not a call",
        )


register(Rule(
    id="REP003",
    title="telemetry metric calls must be enabled-gated",
    rationale=(
        "The telemetry no-op contract (<=1.05x instrumented ceiling) holds "
        "because disabled-mode hot paths never pay call/argument-building "
        "overhead: metric mutators (incr/gauge/observe/observe_array) sit "
        "behind `if telemetry.enabled:`.  span() self-gates and is exempt."
    ),
    scope=_src_repro_outside_telemetry,
    check=_check_rep003,
))


# --------------------------------------------------------------------------
# REP004 — no float ==/!= comparisons in src.
# --------------------------------------------------------------------------
def _is_float_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_operand(node.operand)
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


def _check_rep004(tree: ast.Module, path: str) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_operand(left) or _is_float_operand(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield Violation(
                    "REP004", path, node.lineno, node.col_offset,
                    f"float {symbol} comparison; bit-identity is asserted via "
                    "np.array_equal in tests — for scalars prefer an ordered "
                    "guard (<= 0.0) or suppress where exactness is the point",
                )


register(Rule(
    id="REP004",
    title="no float ==/!= comparisons",
    rationale=(
        "Scalar float equality is how silent drift hides: a guard like "
        "`x == 0.0` stops firing after an innocent re-ordering changes the "
        "last ulp.  Equality pins belong in tests via np.array_equal.  "
        "Intentional exact sentinels (elementwise masks on values stored "
        "without arithmetic) carry a `# repro-lint: disable=REP004` with a "
        "justifying comment."
    ),
    scope=_in_src,
    check=_check_rep004,
))


# --------------------------------------------------------------------------
# REP005 — no mutable default arguments, no bare except.
# --------------------------------------------------------------------------
_MUTABLE_CTORS = {"list", "dict", "set"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CTORS
    )


def _check_rep005(tree: ast.Module, path: str) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = [*node.args.defaults,
                        *(d for d in node.args.kw_defaults if d is not None)]
            for default in defaults:
                if _is_mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Violation(
                        "REP005", path, default.lineno, default.col_offset,
                        f"mutable default argument in {name}(); defaults are "
                        "evaluated once and shared across calls — use None "
                        "and construct inside the body",
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Violation(
                "REP005", path, node.lineno, node.col_offset,
                "bare `except:` swallows KeyboardInterrupt/SystemExit; catch "
                "a concrete exception type",
            )


register(Rule(
    id="REP005",
    title="no mutable defaults, no bare except",
    rationale=(
        "A mutable default is one shared object mutated across calls — state "
        "leaking between campaigns is exactly the nondeterminism this repo "
        "exists to rule out.  Bare except hides the same class of bug by "
        "eating the error that would have exposed it."
    ),
    scope=_everywhere,
    check=_check_rep005,
))


# --------------------------------------------------------------------------
# REP006 — public functions in src/repro must be fully type-annotated.
# --------------------------------------------------------------------------
def _is_public_name(name: str) -> bool:
    if name == "__init__":
        return True
    if name.startswith("__") and name.endswith("__"):
        return False
    return not name.startswith("_")


def _in_public_context(node: ast.AST) -> bool:
    """True when no enclosing function/private class hides the def."""
    for parent in _parents(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        if isinstance(parent, ast.ClassDef) and parent.name.startswith("_"):
            return False
    return True


def _check_rep006(tree: ast.Module, path: str) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_public_name(node.name) or not _in_public_context(node):
            continue
        args = node.args
        every = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg is not None:
            every.append(args.vararg)
        if args.kwarg is not None:
            every.append(args.kwarg)
        missing = [
            a.arg for a in every
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if missing:
            yield Violation(
                "REP006", path, node.lineno, node.col_offset,
                f"public function {node.name}() has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if node.returns is None and node.name != "__init__":
            yield Violation(
                "REP006", path, node.lineno, node.col_offset,
                f"public function {node.name}() has no return annotation",
            )


register(Rule(
    id="REP006",
    title="public API must be fully type-annotated",
    rationale=(
        "The staged mypy gate can only ratchet toward strict if the public "
        "surface is annotated; unannotated defs are skipped by mypy entirely, "
        "so a missing annotation silently exempts a function from every other "
        "check."
    ),
    scope=_in_src_repro,
    check=_check_rep006,
))
