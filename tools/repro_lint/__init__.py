"""repro-lint: AST-based determinism & contract checks for this repository.

The reproduction's core claim is that every WER/PUE number is bit-identical
across scalar oracles, packed engines, block sizes and worker counts.  The
invariants that make that true are conventions, not language features — all
sampling flows through seeded ``Generator``s or crc32-keyed streams, library
code never reads the wall clock, telemetry on hot paths is enabled-gated,
and bit-identity is asserted with ``np.array_equal`` rather than float
``==``.  This package machine-checks those conventions so they survive
future refactors.

Run it as::

    python -m tools.repro_lint src tests benchmarks

Suppress a finding on one line with a trailing comment::

    data_range[data_range == 0.0] = 1.0  # repro-lint: disable=REP004

See ``tools/repro_lint/README.md`` for the rule catalogue.
"""

from tools.repro_lint.engine import (
    LintError,
    LintResult,
    Violation,
    lint_paths,
    lint_source,
)
from tools.repro_lint.report import json_report, text_report
from tools.repro_lint.rules import RULES, Rule

__version__ = "0.1.0"

__all__ = [
    "LintError",
    "LintResult",
    "RULES",
    "Rule",
    "Violation",
    "json_report",
    "lint_paths",
    "lint_source",
    "text_report",
    "__version__",
]
