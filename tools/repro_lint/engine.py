"""Linting engine: file walking, parent decoration, suppressions, results.

The engine is deliberately independent of the rule set: it parses each
file once, decorates every node with ``_repro_parent``, asks each
registered rule whose scope matches the file to check the module, then
filters out violations whose line carries a matching
``# repro-lint: disable=REPxxx`` comment.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Sequence, Tuple

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: rule id, file, 1-based line, 0-based column, message."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class LintError:
    """A file the engine could not parse (reported, exit code 2)."""

    path: str
    line: int
    message: str


@dataclass
class LintResult:
    """Aggregated outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def extend(self, other: "LintResult") -> None:
        self.violations.extend(other.violations)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed


def _suppressions(source: str) -> Dict[int, set]:
    """Map line number -> set of rule ids disabled on that line.

    Comments are found with the tokenize module, so a ``disable=`` string
    inside a docstring or literal does not suppress anything.
    """
    table: Dict[int, set] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            table.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass
    return table


def _decorate_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def _path_parts(path: str) -> Tuple[str, ...]:
    return PurePosixPath(Path(path).as_posix()).parts


def lint_source(source: str, path: str) -> LintResult:
    """Lint one module's source, scoping rules by its (possibly virtual) path."""
    from tools.repro_lint.rules import RULES

    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(LintError(path, exc.lineno or 0, exc.msg or "syntax error"))
        return result
    _decorate_parents(tree)
    suppressed = _suppressions(source)
    parts = _path_parts(path)
    found: List[Violation] = []
    for rule in RULES.values():
        if rule.applies_to(parts):
            found.extend(rule.check(tree, path))
    for violation in sorted(found):
        if violation.rule_id in suppressed.get(violation.line, ()):
            result.suppressed += 1
        else:
            result.violations.append(violation)
    return result


# Directories skipped during directory walks.  ``lint_fixtures`` holds
# deliberately-violating corpus files exercised by the linter's own tests;
# they are still lintable when named as explicit file arguments.
_SKIPPED_DIRS = {"__pycache__", "lint_fixtures"}


def _iter_python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py")
                if not _SKIPPED_DIRS.intersection(p.parts)
            )
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_paths(paths: Sequence[str]) -> LintResult:
    """Lint every ``*.py`` file under the given files/directories."""
    result = LintResult()
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            result.errors.append(LintError(str(file_path), 0, str(exc)))
            continue
        result.extend(lint_source(source, str(file_path)))
    result.violations.sort()
    result.errors.sort(key=lambda e: (e.path, e.line))
    return result
